"""Ablation — analog programming vs bit-sliced multi-level cells.

The paper assumes analog conductance programming; practical MLC ReRAM
offers few stable levels.  This bench quantifies the accuracy of direct
low-level programming vs bit-sliced storage (ISAAC-style shift-add) on
the single-spiking engine, plus the tile-count cost.
"""

import dataclasses

import numpy as np
import pytest

from repro.analysis.tables import render_table
from repro.core.mvm import MVMMode
from repro.mapping.backends import ReSiPEBackend
from repro.mapping.bit_slicing import BitSlicingBackend
from repro.reram.device import DeviceSpec


def _measure():
    rng = np.random.default_rng(0)
    w = rng.random((32, 16))
    x = rng.random((32, 32))
    reference = x @ w

    rows = []
    for levels, bits_per_slice in ((4, 2), (16, 4)):
        spec = dataclasses.replace(DeviceSpec.paper_linear_range(), levels=levels)
        direct = ReSiPEBackend(mode=MVMMode.LINEAR, spec=spec).program(w)
        err_direct = float(np.abs(direct.matmul(x) - reference).mean()
                           / reference.mean())
        sliced_backend = BitSlicingBackend(
            total_bits=8, bits_per_slice=bits_per_slice,
            inner=ReSiPEBackend(mode=MVMMode.LINEAR, spec=spec),
        )
        sliced = sliced_backend.program(w)
        err_sliced = float(np.abs(sliced.matmul(x) - reference).mean()
                           / reference.mean())
        rows.append([
            f"{levels}-level cell",
            err_direct,
            err_sliced,
            sliced_backend.slices_per_weight,
        ])
    return rows


@pytest.mark.benchmark(group="ablation")
def bench_ablation_bit_slicing(benchmark, save_result):
    rows = benchmark(_measure)
    save_result(
        "ablation_bit_slicing",
        render_table(
            ["device", "direct rel err", "8b-sliced rel err", "slices/weight"],
            rows,
            title="Ablation — direct low-level programming vs bit slicing",
        ),
    )
    for row in rows:
        assert row[2] < row[1]  # slicing always helps at equal levels
