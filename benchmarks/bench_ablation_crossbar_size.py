"""Ablation — crossbar size vs linearity headroom and MVM fidelity.

Bigger arrays amortise periphery but raise the worst-case column
conductance (ΣG grows with rows), eating into the Σ G ≤ 1.6 mS regime.
This sweep shows why the paper fixes 32×32.
"""

import dataclasses

import numpy as np
import pytest

from repro.analysis.tables import render_table
from repro.config import CircuitParameters
from repro.core.engine import ReSiPEEngine
from repro.core.power import ReSiPEPowerModel


def _measure(sizes):
    rng = np.random.default_rng(0)
    rows = []
    for n in sizes:
        params = dataclasses.replace(CircuitParameters.calibrated(), rows=n, cols=n)
        engine = ReSiPEEngine.from_normalised_weights(rng.random((n, n)), params)
        x = rng.random((16, n))
        ref = x @ engine.normalised_weights
        y = engine.mvm_values(x)
        err = float(np.abs(y - ref).mean() / ref.mean())
        worst_g = float(engine.array.column_total_conductance().max())
        power = ReSiPEPowerModel(params)
        rows.append(
            [
                f"{n}x{n}",
                worst_g * 1e3,
                params.saturation_depth(worst_g),
                err,
                power.power_efficiency() / 1e12,
            ]
        )
    return rows


@pytest.mark.benchmark(group="ablation")
def bench_ablation_crossbar_size(benchmark, save_result):
    rows = benchmark(_measure, (8, 16, 32, 64, 128))
    save_result(
        "ablation_crossbar_size",
        render_table(
            ["array", "worst col G (mS)", "sat depth", "mean MVM rel err",
             "PE (TOPS/W)"],
            rows,
            title="Ablation — crossbar size vs linearity headroom",
        ),
    )
    errors = [r[3] for r in rows]
    # Saturation error grows monotonically with array size.
    assert errors == sorted(errors)
