"""Ablation — ideal crossbar vs wire-parasitic (IR-drop) model.

The vectorised engine assumes ideal interconnect; this bench solves the
full parasitic network with MNA and quantifies the current error at
realistic 65 nm wire resistances, across array sizes.
"""

import numpy as np
import pytest

from repro.analysis.tables import render_table
from repro.reram.crossbar import CrossbarArray
from repro.reram.nonideal import IRDropSolver, WireParasitics


def _measure(sizes, r_wire):
    rng = np.random.default_rng(0)
    rows = []
    for n in sizes:
        xb = CrossbarArray(n, n)
        xb.program_normalised(rng.random((n, n)))
        v = rng.random(n)
        solver = IRDropSolver(xb, WireParasitics(r_wire, r_wire))
        rel, worst = solver.error_vs_ideal(v)
        rows.append([f"{n}x{n}", r_wire, float(rel.mean()), worst])
    return rows


@pytest.mark.benchmark(group="ablation", min_rounds=1, max_time=1)
def bench_ablation_ir_drop(benchmark, save_result):
    rows = benchmark.pedantic(
        _measure, args=((8, 16, 32), 2.5), rounds=1, iterations=1
    )
    save_result(
        "ablation_ir_drop",
        render_table(
            ["array", "r_wire (Ohm/seg)", "mean rel err", "worst rel err"],
            rows,
            title="Ablation — IR-drop error vs ideal crossbar (MNA)",
        ),
    )
    worst_errors = [r[3] for r in rows]
    # IR drop worsens with array size but stays small at 65 nm wires.
    assert worst_errors == sorted(worst_errors)
    assert worst_errors[-1] < 0.05


def _measure_engine_level(r_wires):
    """Single-spike MVM with parasitic-aware Thevenin vs ideal columns."""
    from repro.config import CircuitParameters
    from repro.core.mvm import MVMMode, SingleSpikeMVM

    rng = np.random.default_rng(0)
    xb = CrossbarArray(32, 32)
    xb.program_normalised(rng.random((32, 32)))
    params = CircuitParameters.calibrated()
    plain = SingleSpikeMVM(xb, params, MVMMode.EXACT)
    times = rng.uniform(10e-9, 80e-9, (16, 32))
    reference = plain.output_times(times)

    rows = []
    for r_wire in r_wires:
        thevenin = IRDropSolver(
            xb, WireParasitics(r_wire, r_wire)
        ).column_thevenin()
        aware = SingleSpikeMVM(
            xb, params, MVMMode.EXACT, parasitic_thevenin=thevenin
        )
        out = aware.output_times(times)
        rel = np.abs(out - reference) / np.maximum(reference, 1e-15)
        rows.append([r_wire, float(rel.mean()), float(rel.max())])
    return rows


@pytest.mark.benchmark(group="ablation", min_rounds=1, max_time=1)
def bench_ablation_ir_drop_engine(benchmark, save_result):
    """IR drop propagated through the full single-spike timing chain."""
    rows = benchmark.pedantic(
        _measure_engine_level, args=((1.0, 2.5, 10.0, 25.0),),
        rounds=1, iterations=1,
    )
    save_result(
        "ablation_ir_drop_engine",
        render_table(
            ["r_wire (Ohm/seg)", "mean t_out rel err", "worst t_out rel err"],
            rows,
            title="Ablation — IR drop through the single-spike MVM (32x32)",
        ),
    )
    worst = [r[2] for r in rows]
    assert worst == sorted(worst)  # error grows with wire resistance
    assert worst[0] < 0.02         # negligible at 1 Ohm/segment
