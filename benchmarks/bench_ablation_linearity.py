"""Ablation — paper-literal vs calibrated operating point.

Quantifies the DESIGN.md §1 parameter-consistency note: at the literal
published values (C_cog = 100 fF, τ_gd = 10 ns) the column saturates and
the ramp curves, collapsing the MVM toward a weighted mean; the
calibrated point (C_cog = 3.2 pF, τ_gd = 800 ns) realises the linear
regime the paper's Eq. 5/6 algebra assumes.
"""

import numpy as np
import pytest

from repro.analysis.tables import render_table
from repro.config import CircuitParameters
from repro.core.engine import ReSiPEEngine
from repro.core.power import ReSiPEPowerModel


def _mvm_error(params) -> float:
    rng = np.random.default_rng(0)
    engine = ReSiPEEngine.from_normalised_weights(rng.random((32, 16)), params)
    x = rng.random((32, 32))
    ref = x @ engine.normalised_weights
    y = engine.mvm_values(x)
    return float(np.abs(y - ref).mean() / ref.mean())


def _measure():
    rows = []
    for label, params in (
        ("paper-literal", CircuitParameters.paper()),
        ("calibrated", CircuitParameters.calibrated()),
    ):
        power = ReSiPEPowerModel(params)
        rows.append(
            [
                label,
                params.c_cog * 1e15,
                params.tau_gd * 1e9,
                params.saturation_depth(1.6e-3),
                _mvm_error(params),
                power.cog_power_share(),
                power.power() * 1e6,
            ]
        )
    return rows


@pytest.mark.benchmark(group="ablation")
def bench_ablation_linearity(benchmark, save_result):
    rows = benchmark(_measure)
    save_result(
        "ablation_linearity",
        render_table(
            [
                "operating point",
                "C_cog (fF)",
                "tau_gd (ns)",
                "depth @1.6mS",
                "mean MVM rel err",
                "COG power share",
                "power (uW)",
            ],
            rows,
            title="Ablation — paper-literal vs calibrated operating point",
        ),
    )
    paper_err = rows[0][4]
    calibrated_err = rows[1][4]
    assert calibrated_err < paper_err  # the calibration is why Fig. 7 works
    # The calibrated point also reproduces the 98.1 % COG share claim.
    assert rows[1][5] > 0.97
