"""Ablation — mapping redundancy vs process-variation robustness.

The paper's conclusion points at "elaborated circuit designs ... to
achieve better ... robustness".  One mapping-level answer is
redundancy: program each tile R times and average the outputs, buying a
√R reduction in variation error for R× area/energy.  This bench sweeps
R for a LeNet under σ = 20 % variation.
"""

import numpy as np
import pytest

from repro.analysis.tables import render_table
from repro.core.mvm import MVMMode
from repro.experiments.networks import get_benchmark_networks
from repro.mapping import PIMExecutor, ReSiPEBackend, compile_network


def _measure(redundancies, sigma=0.20, trials=2):
    net = get_benchmark_networks(keys=["cnn-1"], n_samples=800)[0]
    x = net.test.images[:100]
    y = net.test.labels[:100]
    rows = []
    for r in redundancies:
        backend = ReSiPEBackend(mode=MVMMode.EXACT, redundancy=r)
        mapped = compile_network(net.model, backend)
        executor = PIMExecutor(mapped, net.train.images[:48])
        clean = executor.accuracy(x, y)
        noisy = float(np.mean([
            executor.perturbed(np.random.default_rng(seed), sigma).accuracy(x, y)
            for seed in range(trials)
        ]))
        rows.append([f"R={r}", clean, noisy, clean - noisy])
    return rows


@pytest.mark.benchmark(group="ablation", min_rounds=1, max_time=1)
def bench_ablation_redundancy(benchmark, save_result):
    rows = benchmark.pedantic(_measure, args=((1, 2, 4),), rounds=1, iterations=1)
    save_result(
        "ablation_redundancy",
        render_table(
            ["redundancy", "acc (clean)", f"acc (σ=20%)", "drop"],
            rows,
            title="Ablation — tile redundancy vs variation robustness (CNN-1)",
        ),
    )
    drops = [row[3] for row in rows]
    # Averaging R copies must not hurt; it should help at the high end.
    assert drops[-1] <= drops[0] + 0.02
