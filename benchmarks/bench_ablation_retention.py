"""Ablation — classification accuracy over retention time.

Extends Fig. 7's frozen-in-time variation study along the time axis:
programmed conductances relax log-linearly toward HRS, and accuracy
decays accordingly.  Sweeps retention from minutes to ~3 years on a
mapped LeNet.
"""

import numpy as np
import pytest

from repro.analysis.tables import render_table
from repro.core.mvm import MVMMode
from repro.experiments.networks import get_benchmark_networks
from repro.mapping import PIMExecutor, ReSiPEBackend, compile_network
from repro.reram.retention import RetentionModel

_TIMES = (60.0, 3600.0, 86_400.0, 2.6e6, 3.2e7, 1e8)
_LABELS = ("1 minute", "1 hour", "1 day", "1 month", "1 year", "~3 years")


def _measure():
    net = get_benchmark_networks(keys=["cnn-1"], n_samples=800)[0]
    mapped = compile_network(net.model, ReSiPEBackend(mode=MVMMode.EXACT))
    executor = PIMExecutor(mapped, net.train.images[:48])
    x, y = net.test.images[:100], net.test.labels[:100]
    retention = RetentionModel(nu=0.02, nu_sigma=0.3)

    fresh = executor.accuracy(x, y)
    rows = [["fresh", fresh]]
    for label, elapsed in zip(_LABELS, _TIMES):
        aged = executor.aged(retention, elapsed, np.random.default_rng(0))
        rows.append([label, aged.accuracy(x, y)])
    return rows


@pytest.mark.benchmark(group="ablation", min_rounds=1, max_time=1)
def bench_ablation_retention(benchmark, save_result):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    save_result(
        "ablation_retention",
        render_table(
            ["shelf time", "accuracy"],
            rows,
            title="Ablation — accuracy over retention time (CNN-1, nu=2%/decade)",
        ),
    )
    accuracies = [r[1] for r in rows]
    # Drift only ever degrades, and short shelf times are harmless.
    assert accuracies[1] >= accuracies[0] - 0.02
    assert min(accuracies) == pytest.approx(accuracies[-1], abs=0.05)
