"""Ablation — variation-aware training vs plain training.

EXPERIMENTS.md documents that the channel-reduced CNN substitutes lose
more accuracy at σ = 20 % than the paper's full-width nets.  This bench
shows the standard recovery: train with injected multiplicative weight
noise (DL-RSIM-style) and re-measure the Fig. 7 degradation on the
mapped hardware.
"""

import numpy as np
import pytest

from repro.analysis.tables import render_table
from repro.core.mvm import MVMMode
from repro.datasets import make_cifar_like, train_test_split
from repro.experiments.networks import NETWORK_SPECS
from repro.mapping import PIMExecutor, ReSiPEBackend, compile_network
from repro.nn import Adam, Trainer
from repro.nn.robust import VariationAwareTrainer


def _hardware_accuracy(model, train_images, x, y, sigma, trials=3):
    mapped = compile_network(model, ReSiPEBackend(mode=MVMMode.EXACT))
    executor = PIMExecutor(mapped, train_images[:48])
    if sigma == 0:
        return executor.accuracy(x, y)
    return float(np.mean([
        executor.perturbed(np.random.default_rng(seed), sigma).accuracy(x, y)
        for seed in range(trials)
    ]))


def _measure():
    data = make_cifar_like(1000, seed=0)
    train, test = train_test_split(data, rng=np.random.default_rng(1))
    x, y = test.images[:120], test.labels[:120]
    spec = NETWORK_SPECS["cnn-2"]

    rows = []
    for label, trainer_cls, kwargs in (
        ("plain training", Trainer, {}),
        ("variation-aware (σ_train=15%)", VariationAwareTrainer,
         {"weight_noise_sigma": 0.15}),
    ):
        model = spec.build()
        trainer = trainer_cls(
            model, Adam(model.parameters(), lr=spec.lr),
            batch_size=spec.batch_size, rng=np.random.default_rng(2), **kwargs
        )
        trainer.fit(train.images, train.labels, epochs=spec.epochs)
        clean = _hardware_accuracy(model, train.images, x, y, 0.0)
        noisy = _hardware_accuracy(model, train.images, x, y, 0.20)
        rows.append([label, clean, noisy, clean - noisy])
    return rows


@pytest.mark.benchmark(group="ablation", min_rounds=1, max_time=1)
def bench_ablation_robust_training(benchmark, save_result):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    save_result(
        "ablation_robust_training",
        render_table(
            ["training", "acc (σ=0)", "acc (σ=20%)", "drop"],
            rows,
            title="Ablation — variation-aware training (CNN-2 on ReSiPE)",
        ),
    )
    plain_drop = rows[0][3]
    robust_drop = rows[1][3]
    assert robust_drop <= plain_drop + 0.02
