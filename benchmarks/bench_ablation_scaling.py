"""Ablation — technology-scaling projection.

Quantifies the paper's closing remark that smaller MIM capacitors at
future nodes cut COG (and hence total) energy further.
"""

import pytest

from repro.experiments.scaling import render_scaling, run_scaling


@pytest.mark.benchmark(group="ablation")
def bench_ablation_scaling(benchmark, save_result):
    points = benchmark(run_scaling)
    save_result("ablation_scaling", render_scaling(points))
    energies = [p.energy_per_mvm for p in points]
    # Energy per MVM falls monotonically with the node.
    assert energies == sorted(energies, reverse=True)
    # And superlinearly: 65 -> 16 nm is a ~4x node step but > 6x energy cut.
    assert energies[0] / energies[-1] > 6.0
    # Efficiency improves at every step.
    pes = [p.power_efficiency for p in points]
    assert pes == sorted(pes)
