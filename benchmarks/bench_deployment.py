"""Extension — chip-level deployment of the six benchmark networks.

The "Table III the paper didn't print": tiles, silicon area, energy
per inference and frame rate for each Section IV-C network on ReSiPE
hardware at the paper-literal operating point.
"""

import pytest

from repro.analysis.tables import render_table
from repro.core.mvm import MVMMode
from repro.experiments.networks import get_benchmark_networks
from repro.mapping import ReSiPEBackend, compile_network, plan_deployment

_INPUT_HW = {"mlp-1": None, "mlp-2": None, "cnn-1": (28, 28),
             "cnn-2": (16, 16), "cnn-3": (16, 16), "cnn-4": (16, 16)}


def _measure(keys):
    nets = get_benchmark_networks(keys=list(keys), n_samples=600)
    rows = []
    for net in nets:
        mapped = compile_network(
            net.model, ReSiPEBackend(mode=MVMMode.LINEAR)
        )
        report = plan_deployment(mapped, input_hw=_INPUT_HW[net.spec.key])
        rows.append([
            net.spec.display,
            report.total_tiles,
            report.area * 1e6,
            report.energy_per_inference * 1e9,
            report.latency_per_inference * 1e6,
            report.throughput,
        ])
    return rows


@pytest.mark.benchmark(group="deployment", min_rounds=1, max_time=1)
def bench_network_deployment(benchmark, save_result):
    keys = ("mlp-1", "mlp-2", "cnn-1", "cnn-2")
    rows = benchmark.pedantic(_measure, args=(keys,), rounds=1, iterations=1)
    save_result(
        "network_deployment",
        render_table(
            ["network", "tiles", "area (mm^2)", "E/inf (nJ)",
             "latency (us)", "inferences/s"],
            rows,
            title="Chip-level deployment (paper-literal engine)",
        ),
    )
    # Sanity: deeper/wider nets consume more tiles than the perceptron.
    tiles = [r[1] for r in rows]
    assert tiles[0] < max(tiles)
    # Everything fits in single-digit mm^2 and sub-ms latency.
    assert all(r[2] < 10 for r in rows)
    assert all(r[4] < 1000 for r in rows)
