"""Fig. 1 — two sequential layers chained without conversion circuitry.

Regenerates the paper's Fig. 1 signal relation as a circuit-level
timeline: layer 1's output spike, produced in its S2, drives layer 2
verbatim because that slice is layer 2's S1.
"""

import pytest

from repro.experiments.fig1_signal_relation import render_fig1, run_fig1


@pytest.mark.benchmark(group="fig1")
def bench_fig1_signal_relation(benchmark, save_result):
    result = benchmark(run_fig1)
    save_result("fig1_signal_relation", render_fig1(result))
    # The transient chain matches the closed-form chain to picoseconds.
    assert result.chain_error < 20e-12
    # And the hand-off really is inside the shared slice.
    assert 0 < result.layer1_output < result.params.slice_length
