"""Fig. 2 — the simplified single-spiking MAC circuit.

The paper's Fig. 2 is a schematic; its faithful machine-readable form
here is the transient-engine netlist the MAC demonstrator builds: the
shared ramp (C_gd, M_gd), per-input S/H stages, the ReRAM branches into
C_cog gated by the RST phases, and the comparator + pulse shaper of the
output stage.
"""

import pytest

from repro.config import CircuitParameters
from repro.core.mac import SingleSpikeMAC


@pytest.mark.benchmark(group="fig2")
def bench_fig2_schematic(benchmark, save_result):
    mac = SingleSpikeMAC(CircuitParameters.paper(), [1 / 50e3, 1 / 200e3])
    text = benchmark(mac.netlist_text, [40e-9, 70e-9])
    save_result("fig2_schematic", text)
    # Every Fig. 2 element must be present.
    for element in ("C(ramp)", "C(cog)", "S(mgd)", "S(rst1)",
                    "SH ramp -> vin0", "CMP +ramp -cog", "PULSE comp_out"):
        assert element in text
