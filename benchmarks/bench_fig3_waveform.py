"""Fig. 3 — transient waveforms of the single-spiking MAC.

Regenerates the two-slice MAC transient (S1 sampling, computation
stage, S2 comparison) on the event-driven engine and checks the output
spike against the closed form.
"""

import pytest

from repro.experiments.fig3_waveform import render_fig3, run_fig3


@pytest.mark.benchmark(group="fig3")
def bench_fig3_waveform(benchmark, save_result):
    result = benchmark(run_fig3)
    save_result("fig3_waveform", render_fig3(result))
    assert result.t_out_measured is not None
    assert result.timing_error < 10e-12


@pytest.mark.benchmark(group="fig3")
def bench_fig3_wide_stimulus(benchmark, save_result):
    """Same circuit, different operating corner (early + late spikes)."""
    result = benchmark(
        run_fig3, spike_times=(10e-9, 80e-9), resistances=(50e3, 1e6)
    )
    save_result("fig3_waveform_corner", render_fig3(result))
    assert result.timing_error < 10e-12
