"""Fig. 5 — t_out vs input strength characterisation.

100 random (t_in, G) samples on a 32-cell column, ΣG ∈ 0.32–3.2 mS,
t_in ∈ 10–80 ns, plus the Curve 1/2/3 fits.  Checks the paper's
qualitative claims: near-linear Curve 1 inside ΣG ≤ 1.6 mS, saturating
droop at 2.5/3.2 mS.
"""

import numpy as np
import pytest

from repro.analysis.plots import Series, ascii_plot
from repro.experiments.fig5_characterization import render_fig5, run_fig5


@pytest.mark.benchmark(group="fig5")
def bench_fig5_characterization(benchmark, save_result):
    result = benchmark(run_fig5, seed=0)
    grid = np.linspace(
        result.input_strength.min(), result.input_strength.max(), 48
    )
    plot = ascii_plot(
        [
            Series(result.input_strength[result.linear_mask],
                   result.t_out[result.linear_mask], "SG<=1.6mS", "o"),
            Series(result.input_strength[~result.linear_mask],
                   result.t_out[~result.linear_mask], "SG>1.6mS", "x"),
            Series(grid, result.curve1.predict(grid), "Curve 1", "-"),
        ],
        title="Fig. 5 — t_out vs input strength",
        x_label="sum(t_in G)", x_unit="s*S", y_unit="s",
    )
    save_result("fig5_characterization", render_fig5(result) + "\n\n" + plot)
    assert result.curve1.r2 > 0.95
    assert result.curve2.slope < result.curve1.slope
    assert result.curve3.slope < result.curve2.slope


@pytest.mark.benchmark(group="fig5")
def bench_fig5_series_table(benchmark, save_result):
    """The raw (input-strength, t_out) series behind the scatter, as a
    reproducible table."""
    from repro.analysis.tables import render_table

    result = benchmark(run_fig5, seed=1, samples=100)
    rows = [
        [f"{s:.3e}", f"{g * 1e3:.2f}", f"{t * 1e9:.3f}"]
        for s, g, t in zip(
            result.input_strength[:20], result.total_g[:20], result.t_out[:20]
        )
    ]
    save_result(
        "fig5_series",
        render_table(
            ["input strength (s*S)", "total G (mS)", "t_out (ns)"],
            rows,
            title="Fig. 5 scatter (first 20 samples)",
        ),
    )
