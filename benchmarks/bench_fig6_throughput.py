"""Fig. 6 — latency / area / throughput trade-off.

Regenerates the aggregate-throughput-under-area-budget series for all
four designs and checks the paper's conclusion: under the same area
budget ReSiPE provides the highest throughput.
"""

import numpy as np
import pytest

from repro.analysis.plots import Series, ascii_plot
from repro.experiments.fig6_throughput import render_fig6, run_fig6


@pytest.mark.benchmark(group="fig6")
def bench_fig6_throughput(benchmark, save_result):
    result = benchmark(run_fig6)
    budgets = np.asarray(result.budgets) * 1e6  # mm^2
    plot = ascii_plot(
        [
            Series(np.log10(budgets), np.log10(np.maximum(tp / 1e9, 0.1)),
                   name.split(" ")[0])
            for name, tp in result.throughput.items()
        ],
        title="Fig. 6 — log10(GOPS) vs log10(area budget / mm^2)",
        x_label="log10(mm^2)",
    )
    save_result("fig6_throughput", render_fig6(result) + "\n\n" + plot)
    assert result.winner_at(-1) == "ReSiPE (this work)"
    assert result.advantage_over("level-based [14,17]") > 1.0
    assert result.advantage_over("PWM-based [15]") > 10.0


@pytest.mark.benchmark(group="fig6")
def bench_fig6_fine_sweep(benchmark, save_result):
    """Denser budget sweep resolving the small-budget crossover where
    only the compact designs fit at all."""
    budgets = [b * 1e-6 for b in
               (0.0075, 0.01, 0.025, 0.05, 0.075, 0.1, 0.25, 0.5)]
    result = benchmark(run_fig6, budgets=budgets)
    save_result("fig6_fine_sweep", render_fig6(result))
    # At the smallest budgets the big mixed-signal designs fit zero engines.
    assert result.engines["level-based [14,17]"][0] == 0
    assert result.engines["ReSiPE (this work)"][0] >= 1
