"""Fig. 7 — classification accuracy under process variation.

Trains the six benchmark networks (cached after the first run), maps
them onto ReSiPE crossbars with the exact circuit equations, and sweeps
device-variation σ.  Checks the paper's claims:

* σ=0 (non-linearity only) costs < 2.5 % accuracy;
* σ=20 % costs 1–15 %, with deeper nets degrading more on average.

``REPRO_BENCH_SCALE=full`` runs all six networks at the paper's five
sigmas; the default small scale covers four networks and three sigmas.
"""

import numpy as np
import pytest

from conftest import bench_scale as _bench_scale
from repro.experiments.fig7_accuracy import Fig7Config, render_fig7, run_fig7


def _config() -> Fig7Config:
    if _bench_scale() == "full":
        return Fig7Config(
            sigmas=(0.0, 0.05, 0.10, 0.15, 0.20),
            trials=3,
            networks=None,  # all six
            n_samples=1500,
            eval_samples=200,
        )
    return Fig7Config(
        sigmas=(0.0, 0.10, 0.20),
        trials=2,
        networks=("mlp-1", "mlp-2", "cnn-1", "cnn-2"),
        n_samples=1000,
        eval_samples=150,
    )


@pytest.mark.benchmark(group="fig7", min_rounds=1, max_time=1)
def bench_fig7_accuracy(benchmark, save_result):
    config = _config()
    result = benchmark.pedantic(run_fig7, args=(config,), rounds=1, iterations=1)
    from repro.analysis.plots import Series, ascii_plot

    sigmas = np.asarray(config.sigmas)
    plot = ascii_plot(
        [
            Series(sigmas, np.array([row.by_sigma[s][0] for s in config.sigmas]),
                   row.display.split(" ")[0])
            for row in result.rows
        ],
        title="Fig. 7 — accuracy vs variation sigma",
        x_label="sigma", y_label="acc",
    )
    save_result("fig7_accuracy", render_fig7(result) + "\n\n" + plot)

    sigma_max = config.sigmas[-1]
    drops = []
    for row in result.rows:
        # Paper: sigma=0 drop (non-linearity alone) below 2.5 %.
        assert row.drop(0.0) < 0.06, row.display
        drops.append(row.drop(sigma_max))
    # Paper: 20 % variation costs 1-15 % accuracy on the full-width
    # nets; our channel-reduced CNN substitutes have less redundancy and
    # degrade harder at the deep end (documented in EXPERIMENTS.md).
    assert max(drops) < 0.85
    # Deeper nets degrade at least as much on average (trend check).
    assert np.mean(drops[len(drops) // 2:]) >= np.mean(drops[: len(drops) // 2]) - 0.05
