"""Monte-Carlo engine throughput: serial vs stacked vs parallel.

Times a Fig. 7-style 16-trial variation sweep three ways and writes the
numbers to ``BENCH_mc.json`` at the repository root:

* **serial** — one forward pass per trial (``trial_batch=1``), the
  pre-vectorization behaviour;
* **stacked** — all trials through the ``(T, rows, cols)`` broadcast
  kernels in one pass (``trial_batch=trials``);
* **parallel** — the ``repro fig7 --workers 4 --trial-batch 8``
  configuration end to end, asserted byte-identical to the serial run;
* **backends** — the stacked evaluation re-timed per compute backend
  (``--backends``), reporting each engine's x-factor against the numpy
  baseline.  JIT backends get one untimed warmup call so compilation
  never pollutes the medians; missing engines are recorded as
  ``available: false`` instead of failing the run.

Two phases are reported separately because they scale differently:

* ``evaluate`` — the stacked-kernel inner loop (accuracy of T
  pre-drawn realizations), where vectorization shines;
* ``sweep`` — clone drawing + evaluation, i.e. the full per-sigma
  column including the per-trial RNG work that must stay serial for
  bit-reproducibility.

Run directly (CI smoke job)::

    PYTHONPATH=src python benchmarks/bench_perf_mc.py
"""

import argparse
import json
import os
import statistics
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _median_time(fn, repeats, warmup=0):
    """Median wall-clock seconds of ``fn()`` over ``repeats`` runs.

    ``warmup`` extra calls run first and are excluded from the samples
    (JIT compilation must never pollute a median).
    """
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def _fig7_rows(result):
    """Comparable projection of a Fig7Result (plain floats only)."""
    return [
        (row.display, row.software_accuracy, sorted(row.by_sigma.items()))
        for row in result.rows
    ]


def run_backend_sweep(executor, x_eval, y_eval, networks, backends,
                      repeats):
    """Time the stacked evaluation per compute backend.

    Returns ``{name: entry}`` where an entry is either
    ``{"available": false}`` (engine not importable — recorded, not
    fatal) or timings plus ``x_vs_numpy``, the x-factor against the
    numpy baseline measured in the same process.  One warmup call per
    backend is excluded from the medians, so JIT compilation cost never
    skews an x-factor.
    """
    import hashlib

    import numpy as np

    from repro.kernels import available_backends, get_backend

    availability = available_backends()
    trials = len(networks)

    def _hash(a):
        return hashlib.sha256(np.ascontiguousarray(a).tobytes()).hexdigest()

    # numpy always runs first: it is the x-factor baseline.
    ordered = ["numpy"] + [b for b in backends if b != "numpy"]
    sweep = {}
    baseline_s = None
    baseline_hash = None
    for name in ordered:
        if not availability.get(name, False):
            sweep[name] = {"available": False}
            continue
        backend = get_backend(name)
        out = executor.predict_trials(x_eval, networks, backend=backend)
        median_s = _median_time(
            lambda: executor.accuracy_trials(
                x_eval, y_eval, networks, backend=backend
            ),
            repeats,
            warmup=1,
        )
        entry = {
            "available": True,
            "stacked_s": median_s,
            "trials_per_sec": trials / median_s,
            "predictions_sha256": _hash(out),
        }
        if name == "numpy":
            baseline_s = median_s
            baseline_hash = entry["predictions_sha256"]
        if baseline_s is not None:
            entry["x_vs_numpy"] = baseline_s / median_s
        if baseline_hash is not None:
            entry["matches_numpy"] = (
                entry["predictions_sha256"] == baseline_hash
            )
        sweep[name] = entry
    return sweep


def run_benchmark(network="mlp-1", sigma=0.10, trials=16, n_samples=600,
                  eval_samples=50, seed=0, workers=4, trial_batch=8,
                  repeats=7, backends=("numpy", "numba", "cupy")):
    from repro.experiments.fig7_accuracy import (
        Fig7Config,
        _prepare_network,
        _sigma_column,
        run_fig7,
    )
    from repro.experiments.networks import get_benchmark_networks
    from repro.runtime import trial_rng

    config = Fig7Config(
        networks=(network,), sigmas=(sigma,), trials=trials,
        n_samples=n_samples, eval_samples=eval_samples, seed=seed,
    )
    net = get_benchmark_networks(
        keys=[network], n_samples=n_samples, seed=seed
    )[0]
    executor, x_eval, y_eval = _prepare_network(net, config)

    # Phase 1 — evaluate: accuracy of T pre-drawn realizations.  The
    # same clones feed both paths, so this isolates the stacked kernels.
    clones = [
        executor.perturbed(
            trial_rng(seed, f"{net.spec.key}|{sigma:.4f}|{t}"), sigma
        )
        for t in range(trials)
    ]
    networks = [c.network for c in clones]
    serial_eval = _median_time(
        lambda: [c.accuracy(x_eval, y_eval) for c in clones], repeats
    )
    stacked_eval = _median_time(
        lambda: executor.accuracy_trials(x_eval, y_eval, networks), repeats
    )

    # Phase 2 — sweep: clone drawing + evaluation (one sigma column).
    def sweep(batch):
        _sigma_column(net, executor, config, sigma, x_eval, y_eval, batch)

    serial_sweep = _median_time(lambda: sweep(1), repeats)
    stacked_sweep = _median_time(lambda: sweep(trials), repeats)

    # Per-backend stacked evaluation (x-factors against numpy).
    backend_sweep = run_backend_sweep(
        executor, x_eval, y_eval, networks, backends, repeats
    )

    # Phase 3 — the documented CLI configuration, end to end, checked
    # byte-identical to the serial run.
    serial_result = run_fig7(config)
    parallel_wall = [None]

    def parallel():
        start = time.perf_counter()
        result = run_fig7(config, workers=workers, trial_batch=trial_batch)
        parallel_wall[0] = time.perf_counter() - start
        return result

    matches = _fig7_rows(parallel()) == _fig7_rows(serial_result)
    serial_wall = _median_time(lambda: run_fig7(config), 3)

    evaluate_speedup = serial_eval / stacked_eval
    return {
        "config": {
            "network": network,
            "sigma": sigma,
            "trials": trials,
            "n_samples": n_samples,
            "eval_samples": eval_samples,
            "seed": seed,
            "mode": config.mode.value,
            "repeats": repeats,
        },
        "evaluate": {
            "serial_s": serial_eval,
            "stacked_s": stacked_eval,
            "serial_trials_per_sec": trials / serial_eval,
            "stacked_trials_per_sec": trials / stacked_eval,
            "speedup": evaluate_speedup,
        },
        "sweep": {
            "serial_s": serial_sweep,
            "stacked_s": stacked_sweep,
            "serial_trials_per_sec": trials / serial_sweep,
            "stacked_trials_per_sec": trials / stacked_sweep,
            "speedup": serial_sweep / stacked_sweep,
        },
        "backends": backend_sweep,
        "parallel": {
            "workers": workers,
            "trial_batch": trial_batch,
            "wall_s": parallel_wall[0],
            "serial_wall_s": serial_wall,
            "speedup": serial_wall / parallel_wall[0],
            "matches_serial": matches,
        },
        # Headline numbers: the stacked-kernel evaluation of the
        # 16-trial sweep, the throughput it sustains, and the worker
        # count the equivalence was verified at.
        "speedup": evaluate_speedup,
        "trials_per_sec": trials / stacked_eval,
        "worker_count": workers,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--network", default="mlp-1")
    parser.add_argument("--sigma", type=float, default=0.10)
    parser.add_argument("--trials", type=int, default=16)
    parser.add_argument("--samples", type=int, default=600)
    parser.add_argument("--eval-samples", type=int, default=50)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--trial-batch", type=int, default=8)
    parser.add_argument("--repeats", type=int, default=7)
    parser.add_argument(
        "--backends", default="numpy,numba,cupy",
        help="comma-separated compute backends to sweep (numpy is "
             "always included as the x-factor baseline; missing "
             "engines are recorded as available: false)",
    )
    parser.add_argument("--output", default=os.path.join(
        REPO_ROOT, "BENCH_mc.json"
    ))
    args = parser.parse_args(argv)

    backends = tuple(
        name.strip() for name in args.backends.split(",") if name.strip()
    )
    report = run_benchmark(
        network=args.network, sigma=args.sigma, trials=args.trials,
        n_samples=args.samples, eval_samples=args.eval_samples,
        seed=args.seed, workers=args.workers, trial_batch=args.trial_batch,
        repeats=args.repeats, backends=backends,
    )
    out_dir = os.path.dirname(os.path.abspath(args.output))
    os.makedirs(out_dir, exist_ok=True)
    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")

    print(f"[bench_perf_mc] {args.trials}-trial sweep on {args.network} "
          f"(sigma={args.sigma:g}, {args.eval_samples} eval samples)")
    for phase in ("evaluate", "sweep"):
        p = report[phase]
        print(f"  {phase:<9} serial {p['serial_s'] * 1e3:7.1f} ms   "
              f"stacked {p['stacked_s'] * 1e3:7.1f} ms   "
              f"x{p['speedup']:.2f}")
    for name, entry in report["backends"].items():
        if not entry["available"]:
            print(f"  backend   {name:<7} unavailable")
            continue
        factor = entry.get("x_vs_numpy")
        suffix = f"   x{factor:.2f} vs numpy" if factor is not None else ""
        print(f"  backend   {name:<7} stacked "
              f"{entry['stacked_s'] * 1e3:7.1f} ms{suffix}")
    par = report["parallel"]
    print(f"  parallel  workers={par['workers']} "
          f"trial_batch={par['trial_batch']}  wall {par['wall_s']:.2f}s  "
          f"matches_serial={par['matches_serial']}")
    print(f"  -> {args.output}")
    if not par["matches_serial"]:
        print("[bench_perf_mc] FAIL: parallel run diverged from serial")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
