"""Serving throughput/latency: cross-request batching on vs off.

Starts a `repro serve` daemon in-process (registry loaded once from the
artifact store), sweeps offered concurrency with the closed-loop load
generator of :mod:`repro.serving.client`, and writes
``benchmarks/results/BENCH_serving.json``:

* per concurrency level: p50/p99/mean latency, throughput, and the
  server-reported mean coalesced batch size — once with micro-batching
  (``max_batch``, ``window``) and once unbatched (``max_batch=1``);
* a byte-identity hard gate: predictions of concurrent single-row
  requests must equal serial ``PIMExecutor.predict`` on the same rows
  (non-zero exit on divergence, like ``bench_perf_mc.py``);
* headline ``speedup``: batched/unbatched throughput at the highest
  concurrency level;
* a ``deadline`` section: the daemon is deliberately overloaded
  (small ``max_batch``, high concurrency) while every request carries
  a ``deadline_ms`` budget — admission control must shed the
  over-budget tail with 503 + ``Retry-After`` while the p99 of the
  *admitted* requests stays within the deadline, and a retrying load
  run shows the recovered goodput.

Run directly (CI smoke job)::

    PYTHONPATH=src python benchmarks/bench_serving.py --fast
"""

import argparse
import json
import os
import time
from concurrent.futures import ThreadPoolExecutor

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def _serve_rows(host, port, model, rows):
    """Predictions of per-row concurrent requests, in row order."""
    from repro.serving.client import predict

    def one(row):
        status, doc = predict(host, port, model, row)
        if status != 200:
            raise RuntimeError(f"predict failed: {status} {doc}")
        return doc["predictions"][0]

    with ThreadPoolExecutor(max_workers=min(16, len(rows))) as pool:
        return list(pool.map(one, rows))


def deadline_mode(model, rows, n_samples=600, seed=0,
                  concurrency=32, requests_per_worker=8, max_batch=4,
                  queue_depth=256, floor_ms=30.0,
                  ensemble_trials=64, ensemble_sigma=0.05):
    """Deadline-aware admission control under deliberate overload.

    A small ``max_batch`` against high closed-loop concurrency forces
    queue waits beyond the budget, so the EWMA-based admission control
    must shed.  The deadline is derived from the daemon's own warmed
    service-time budget (``4 x`` the tail budget of a coalesced batch,
    floored), so the section is meaningful on fast and slow machines
    alike.  Crucially the warm-up load runs at the *same* concurrency
    as the measurement: batch service under full client contention is
    several times the lightly-loaded figure, and calibrating on serial
    or low-concurrency traffic would under-predict it and let the
    first overload waves through late.

    The served model carries a variation ensemble
    (``ensemble_trials``), which multiplies per-batch compute: queue
    waits then dominate the single-process measurement noise (client
    threads share the GIL with the daemon), so "admitted p99 within
    deadline" exercises the controller rather than scheduler jitter.
    """
    import numpy as np

    from repro.serving import BackgroundServer, ModelRegistry, ServingConfig
    from repro.serving.client import RetryPolicy, predict, request, run_load

    registry = ModelRegistry.from_benchmarks(
        [model], n_samples=n_samples, seed=seed,
        ensemble_sigma=ensemble_sigma, ensemble_trials=ensemble_trials,
    )
    config = ServingConfig(
        models=(model,), port=0, n_samples=n_samples, seed=seed,
        max_batch=max_batch, batch_window_s=0.0, queue_depth=queue_depth,
        ensemble_sigma=ensemble_sigma, ensemble_trials=ensemble_trials,
    )
    with BackgroundServer(registry, config) as server:
        # Serial baseline: the single-request round trip, for the report.
        samples = []
        for k in range(6):
            t0 = time.perf_counter()
            status, _ = predict(server.host, server.port, model,
                                rows[k % len(rows)])
            if status != 200:
                raise RuntimeError(f"calibration predict failed: {status}")
            samples.append((time.perf_counter() - t0) * 1e3)
        baseline_ms = float(np.mean(samples[1:]))  # drop cold first call

        # Warm the admission EWMA under the exact overload the
        # measurement applies (no deadline: every request completes,
        # and the estimator converges on contended batch service),
        # then read the tail budget back from the daemon's metrics.
        warmup = run_load(
            server.host, server.port, model, rows,
            concurrency=concurrency,
            requests_per_worker=requests_per_worker,
        )
        _, warm_metrics = request(server.host, server.port, "GET", "/metrics")
        budget_ms = float(
            warm_metrics["models"][model]["service_budget_ms"]
        )
        deadline_ms = max(floor_ms, 4.0 * budget_ms)

        # A budget no admission controller can accept — pins the shed
        # taxonomy: 503 with both the JSON float and the Retry-After
        # header.
        probe_status, probe_doc = predict(
            server.host, server.port, model, rows[0], deadline_ms=0.05
        )

        no_retry = run_load(
            server.host, server.port, model, rows,
            concurrency=concurrency,
            requests_per_worker=requests_per_worker,
            deadline_ms=deadline_ms,
        )
        # Twice the requests: with retries most of them are eventually
        # admitted, and the p99 of the admitted set should be a real
        # percentile, not the single worst scheduler stall.  The
        # backoff schedule has to reach the per-client admission period
        # (service rate / concurrency, here roughly hundreds of ms) —
        # clients retrying faster than the queue drains just re-shed.
        with_retry = run_load(
            server.host, server.port, model, rows,
            concurrency=concurrency,
            requests_per_worker=2 * requests_per_worker,
            deadline_ms=deadline_ms,
            retry=RetryPolicy(max_attempts=6, base_backoff_s=0.02,
                              max_backoff_s=0.5, jitter=0.5, seed=seed),
        )
        _, metrics = request(server.host, server.port, "GET", "/metrics")

    return {
        "deadline_ms": deadline_ms,
        "baseline_latency_ms": baseline_ms,
        "warm_service_budget_ms": budget_ms,
        "warmup": warmup.to_dict(),
        "concurrency": concurrency,
        "requests_per_worker": requests_per_worker,
        "max_batch": max_batch,
        "ensemble_trials": ensemble_trials,
        "probe": {
            "status": probe_status,
            "retry_after_s": probe_doc.get("retry_after_s"),
            "retry_after_header_s": probe_doc.get("retry_after_hint_s"),
        },
        "no_retry": no_retry.to_dict(),
        "with_retry": with_retry.to_dict(),
        "shed_total": (metrics["totals"]["shed_deadline"]
                       + metrics["totals"]["shed_expired"]),
        # The deadline claim is about the window admission control
        # governs — parse-to-answer on the server — and is evaluated on
        # the retrying run: those clients honor Retry-After, so their
        # arrivals are the cooperating traffic the controller is
        # designed for.  The no-retry run hammers the daemon with
        # instant re-fires after every shed (its answers arrive in
        # microseconds), which floods the event loop and documents the
        # *failure mode* retrying exists to avoid; both are recorded.
        "admitted_p99_ms": with_retry.server_latency_p99_ms,
        "admitted_client_p99_ms": with_retry.latency_p99_ms,
        "p99_within_deadline": (
            with_retry.server_latency_p99_ms <= deadline_ms
        ),
        "retry_after_seen": (
            probe_status == 503
            and probe_doc.get("retry_after_hint_s") is not None
        ),
    }


def run_benchmark(model="mlp-1", n_samples=600, seed=0, eval_rows=48,
                  concurrencies=(1, 4, 16), requests_per_worker=8,
                  max_batch=32, window_ms=2.0, queue_depth=256,
                  ensemble_sigma=0.0, ensemble_trials=0,
                  deadline_concurrency=32, deadline_requests=8,
                  deadline_max_batch=4, deadline_floor_ms=30.0):
    import numpy as np

    from repro.datasets import make_mnist_like
    from repro.serving import BackgroundServer, ModelRegistry, ServingConfig
    from repro.serving.client import run_load
    from repro.units import MILLI

    registry = ModelRegistry.from_benchmarks(
        [model], n_samples=n_samples, seed=seed,
        ensemble_sigma=ensemble_sigma, ensemble_trials=ensemble_trials,
    )
    entry = registry.get(model)
    data = make_mnist_like(max(eval_rows, 16), seed=seed + 7).flattened()
    rows = [data.images[i : i + 1] for i in range(eval_rows)]

    def sweep(batching):
        config = ServingConfig(
            models=(model,), port=0, n_samples=n_samples, seed=seed,
            max_batch=max_batch if batching else 1,
            batch_window_s=window_ms * MILLI if batching else 0.0,
            queue_depth=queue_depth,
            ensemble_sigma=ensemble_sigma, ensemble_trials=ensemble_trials,
        )
        out = {}
        with BackgroundServer(registry, config) as server:
            for concurrency in concurrencies:
                report = run_load(
                    server.host, server.port, model, rows,
                    concurrency=concurrency,
                    requests_per_worker=requests_per_worker,
                )
                out[str(concurrency)] = report.to_dict()
        return out

    batched = sweep(batching=True)
    unbatched = sweep(batching=False)

    # Byte-identity gate: concurrent serving == serial executor.predict.
    config = ServingConfig(
        models=(model,), port=0, n_samples=n_samples, seed=seed,
        max_batch=max_batch, batch_window_s=window_ms * MILLI,
        queue_depth=queue_depth,
        ensemble_sigma=ensemble_sigma, ensemble_trials=ensemble_trials,
    )
    with BackgroundServer(registry, config) as server:
        served = _serve_rows(server.host, server.port, model, rows)
    serial = entry.predict(np.concatenate(rows, axis=0))
    matches = served == [int(p) for p in serial]

    deadline = deadline_mode(
        model, rows, n_samples=n_samples, seed=seed,
        concurrency=deadline_concurrency,
        requests_per_worker=deadline_requests,
        max_batch=deadline_max_batch, queue_depth=queue_depth,
        floor_ms=deadline_floor_ms,
    )

    top = str(max(concurrencies))
    speedup = (batched[top]["throughput_rps"]
               / unbatched[top]["throughput_rps"])
    return {
        "config": {
            "model": model,
            "n_samples": n_samples,
            "seed": seed,
            "eval_rows": eval_rows,
            "concurrencies": list(concurrencies),
            "requests_per_worker": requests_per_worker,
            "max_batch": max_batch,
            "window_ms": window_ms,
            "queue_depth": queue_depth,
            "ensemble_sigma": ensemble_sigma,
            "ensemble_trials": ensemble_trials,
        },
        "batched": batched,
        "unbatched": unbatched,
        "deadline": deadline,
        "matches_serial": matches,
        # Headline: batching gain at the highest offered concurrency.
        "speedup": speedup,
        "throughput_rps": batched[top]["throughput_rps"],
        "latency_p99_ms": batched[top]["latency_p99_ms"],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--model", default="mlp-1")
    parser.add_argument("--samples", type=int, default=600)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--eval-rows", type=int, default=48)
    parser.add_argument("--concurrency", nargs="+", type=int,
                        default=[1, 4, 16])
    parser.add_argument("--requests-per-worker", type=int, default=8)
    parser.add_argument("--max-batch", type=int, default=32)
    parser.add_argument("--window-ms", type=float, default=2.0)
    parser.add_argument("--queue-depth", type=int, default=256)
    parser.add_argument("--ensemble-sigma", type=float, default=0.0)
    parser.add_argument("--ensemble-trials", type=int, default=0)
    parser.add_argument("--deadline-concurrency", type=int, default=32)
    parser.add_argument("--deadline-requests", type=int, default=8)
    parser.add_argument("--deadline-max-batch", type=int, default=4)
    parser.add_argument("--deadline-floor-ms", type=float, default=30.0)
    parser.add_argument("--fast", action="store_true",
                        help="small CI preset (300 samples, fewer requests)")
    parser.add_argument("--output", default=os.path.join(
        RESULTS_DIR, "BENCH_serving.json"
    ))
    args = parser.parse_args(argv)
    if args.fast:
        args.samples = 300
        args.requests_per_worker = 6
        args.eval_rows = 32
        args.deadline_requests = 6

    report = run_benchmark(
        model=args.model, n_samples=args.samples, seed=args.seed,
        eval_rows=args.eval_rows, concurrencies=tuple(args.concurrency),
        requests_per_worker=args.requests_per_worker,
        max_batch=args.max_batch, window_ms=args.window_ms,
        queue_depth=args.queue_depth,
        ensemble_sigma=args.ensemble_sigma,
        ensemble_trials=args.ensemble_trials,
        deadline_concurrency=args.deadline_concurrency,
        deadline_requests=args.deadline_requests,
        deadline_max_batch=args.deadline_max_batch,
        deadline_floor_ms=args.deadline_floor_ms,
    )
    os.makedirs(os.path.dirname(args.output), exist_ok=True)
    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")

    print(f"[bench_serving] {args.model} — batched (max_batch="
          f"{args.max_batch}, window {args.window_ms:g} ms) vs unbatched")
    for c in args.concurrency:
        b, u = report["batched"][str(c)], report["unbatched"][str(c)]
        print(f"  c={c:<3d} batched {b['throughput_rps']:7.1f} rps "
              f"p50 {b['latency_p50_ms']:6.1f} ms "
              f"p99 {b['latency_p99_ms']:6.1f} ms "
              f"(mean batch {b['mean_batch_requests']:.1f})   "
              f"unbatched {u['throughput_rps']:7.1f} rps "
              f"p99 {u['latency_p99_ms']:6.1f} ms")
    print(f"  batching speedup at c={max(args.concurrency)}: "
          f"x{report['speedup']:.2f}   "
          f"matches_serial={report['matches_serial']}")
    dl = report["deadline"]
    print(f"  deadline mode: budget {dl['deadline_ms']:.1f} ms at "
          f"c={dl['concurrency']} (max_batch {dl['max_batch']}) — "
          f"no-retry admitted {dl['no_retry']['requests']}, "
          f"shed {dl['no_retry']['shed']}, "
          f"probe 503+Retry-After={dl['retry_after_seen']}")
    print(f"  deadline mode with retry: {dl['with_retry']['requests']} ok, "
          f"{dl['with_retry']['retries']} retries, "
          f"{dl['with_retry']['shed']} still shed, admitted p99 "
          f"{dl['admitted_p99_ms']:.1f} ms, within="
          f"{dl['p99_within_deadline']}")
    print(f"  -> {args.output}")
    if not report["matches_serial"]:
        print("[bench_serving] FAIL: served predictions diverged from "
              "serial PIMExecutor.predict")
        return 1
    if not dl["retry_after_seen"]:
        print("[bench_serving] FAIL: deadline shed did not answer "
              "503 + Retry-After")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
