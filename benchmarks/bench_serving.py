"""Serving throughput/latency: cross-request batching on vs off.

Starts a `repro serve` daemon in-process (registry loaded once from the
artifact store), sweeps offered concurrency with the closed-loop load
generator of :mod:`repro.serving.client`, and writes
``benchmarks/results/BENCH_serving.json``:

* per concurrency level: p50/p99/mean latency, throughput, and the
  server-reported mean coalesced batch size — once with micro-batching
  (``max_batch``, ``window``) and once unbatched (``max_batch=1``);
* a byte-identity hard gate: predictions of concurrent single-row
  requests must equal serial ``PIMExecutor.predict`` on the same rows
  (non-zero exit on divergence, like ``bench_perf_mc.py``);
* headline ``speedup``: batched/unbatched throughput at the highest
  concurrency level.

Run directly (CI smoke job)::

    PYTHONPATH=src python benchmarks/bench_serving.py --fast
"""

import argparse
import json
import os
from concurrent.futures import ThreadPoolExecutor

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def _serve_rows(host, port, model, rows):
    """Predictions of per-row concurrent requests, in row order."""
    from repro.serving.client import predict

    def one(row):
        status, doc = predict(host, port, model, row)
        if status != 200:
            raise RuntimeError(f"predict failed: {status} {doc}")
        return doc["predictions"][0]

    with ThreadPoolExecutor(max_workers=min(16, len(rows))) as pool:
        return list(pool.map(one, rows))


def run_benchmark(model="mlp-1", n_samples=600, seed=0, eval_rows=48,
                  concurrencies=(1, 4, 16), requests_per_worker=8,
                  max_batch=32, window_ms=2.0, queue_depth=256,
                  ensemble_sigma=0.0, ensemble_trials=0):
    import numpy as np

    from repro.datasets import make_mnist_like
    from repro.serving import BackgroundServer, ModelRegistry, ServingConfig
    from repro.serving.client import run_load
    from repro.units import MILLI

    registry = ModelRegistry.from_benchmarks(
        [model], n_samples=n_samples, seed=seed,
        ensemble_sigma=ensemble_sigma, ensemble_trials=ensemble_trials,
    )
    entry = registry.get(model)
    data = make_mnist_like(max(eval_rows, 16), seed=seed + 7).flattened()
    rows = [data.images[i : i + 1] for i in range(eval_rows)]

    def sweep(batching):
        config = ServingConfig(
            models=(model,), port=0, n_samples=n_samples, seed=seed,
            max_batch=max_batch if batching else 1,
            batch_window_s=window_ms * MILLI if batching else 0.0,
            queue_depth=queue_depth,
            ensemble_sigma=ensemble_sigma, ensemble_trials=ensemble_trials,
        )
        out = {}
        with BackgroundServer(registry, config) as server:
            for concurrency in concurrencies:
                report = run_load(
                    server.host, server.port, model, rows,
                    concurrency=concurrency,
                    requests_per_worker=requests_per_worker,
                )
                out[str(concurrency)] = report.to_dict()
        return out

    batched = sweep(batching=True)
    unbatched = sweep(batching=False)

    # Byte-identity gate: concurrent serving == serial executor.predict.
    config = ServingConfig(
        models=(model,), port=0, n_samples=n_samples, seed=seed,
        max_batch=max_batch, batch_window_s=window_ms * MILLI,
        queue_depth=queue_depth,
        ensemble_sigma=ensemble_sigma, ensemble_trials=ensemble_trials,
    )
    with BackgroundServer(registry, config) as server:
        served = _serve_rows(server.host, server.port, model, rows)
    serial = entry.predict(np.concatenate(rows, axis=0))
    matches = served == [int(p) for p in serial]

    top = str(max(concurrencies))
    speedup = (batched[top]["throughput_rps"]
               / unbatched[top]["throughput_rps"])
    return {
        "config": {
            "model": model,
            "n_samples": n_samples,
            "seed": seed,
            "eval_rows": eval_rows,
            "concurrencies": list(concurrencies),
            "requests_per_worker": requests_per_worker,
            "max_batch": max_batch,
            "window_ms": window_ms,
            "queue_depth": queue_depth,
            "ensemble_sigma": ensemble_sigma,
            "ensemble_trials": ensemble_trials,
        },
        "batched": batched,
        "unbatched": unbatched,
        "matches_serial": matches,
        # Headline: batching gain at the highest offered concurrency.
        "speedup": speedup,
        "throughput_rps": batched[top]["throughput_rps"],
        "latency_p99_ms": batched[top]["latency_p99_ms"],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--model", default="mlp-1")
    parser.add_argument("--samples", type=int, default=600)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--eval-rows", type=int, default=48)
    parser.add_argument("--concurrency", nargs="+", type=int,
                        default=[1, 4, 16])
    parser.add_argument("--requests-per-worker", type=int, default=8)
    parser.add_argument("--max-batch", type=int, default=32)
    parser.add_argument("--window-ms", type=float, default=2.0)
    parser.add_argument("--queue-depth", type=int, default=256)
    parser.add_argument("--ensemble-sigma", type=float, default=0.0)
    parser.add_argument("--ensemble-trials", type=int, default=0)
    parser.add_argument("--fast", action="store_true",
                        help="small CI preset (300 samples, fewer requests)")
    parser.add_argument("--output", default=os.path.join(
        RESULTS_DIR, "BENCH_serving.json"
    ))
    args = parser.parse_args(argv)
    if args.fast:
        args.samples = 300
        args.requests_per_worker = 6
        args.eval_rows = 32

    report = run_benchmark(
        model=args.model, n_samples=args.samples, seed=args.seed,
        eval_rows=args.eval_rows, concurrencies=tuple(args.concurrency),
        requests_per_worker=args.requests_per_worker,
        max_batch=args.max_batch, window_ms=args.window_ms,
        queue_depth=args.queue_depth,
        ensemble_sigma=args.ensemble_sigma,
        ensemble_trials=args.ensemble_trials,
    )
    os.makedirs(os.path.dirname(args.output), exist_ok=True)
    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")

    print(f"[bench_serving] {args.model} — batched (max_batch="
          f"{args.max_batch}, window {args.window_ms:g} ms) vs unbatched")
    for c in args.concurrency:
        b, u = report["batched"][str(c)], report["unbatched"][str(c)]
        print(f"  c={c:<3d} batched {b['throughput_rps']:7.1f} rps "
              f"p50 {b['latency_p50_ms']:6.1f} ms "
              f"p99 {b['latency_p99_ms']:6.1f} ms "
              f"(mean batch {b['mean_batch_requests']:.1f})   "
              f"unbatched {u['throughput_rps']:7.1f} rps "
              f"p99 {u['latency_p99_ms']:6.1f} ms")
    print(f"  batching speedup at c={max(args.concurrency)}: "
          f"x{report['speedup']:.2f}   "
          f"matches_serial={report['matches_serial']}")
    print(f"  -> {args.output}")
    if not report["matches_serial"]:
        print("[bench_serving] FAIL: served predictions diverged from "
              "serial PIMExecutor.predict")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
