"""Table I — the data-format taxonomy."""

import pytest

from repro.experiments.table1_taxonomy import render_table1


@pytest.mark.benchmark(group="table1")
def bench_table1_taxonomy(benchmark, save_result):
    text = benchmark(render_table1)
    save_result("table1_taxonomy", text)
    assert "This work" in text
