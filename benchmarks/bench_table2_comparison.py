"""Table II — power / power-efficiency / latency / area comparison.

Regenerates the four-design comparison from the shared 65 nm component
library and checks the headline ratios against the paper's:

* 1.97× PE vs level-based (measured ≈ 1.98×)
* 49.76× PE vs PWM (measured ≈ 48×)
* 67.1 % power reduction vs rate coding (measured ≈ 67 %)
* 85.3 % / 14.2 % area savings vs level / rate (measured ≈ 85 % / 14 %)
* 50 % / 68.8 % latency reductions (exact by construction)

Known deviation: PE vs rate coding measures ≈ 3.0× against the paper's
2.41× — under our equal-throughput accounting this ratio is pinned to
the power ratio (see EXPERIMENTS.md).
"""

import pytest

from repro.experiments.table2_comparison import (
    PAPER_HEADLINES,
    render_table2,
    run_table2,
)


@pytest.mark.benchmark(group="table2")
def bench_table2_comparison(benchmark, save_result):
    result = benchmark(run_table2)
    save_result("table2_comparison", render_table2(result))
    for key in ("pe_vs_level", "power_reduction_vs_rate",
                "area_reduction_vs_level", "area_reduction_vs_rate"):
        assert result.ratio_vs_paper(key) == pytest.approx(1.0, abs=0.1), key
    assert result.ratios["pe_vs_pwm"] > 40
    assert result.cog_power_share > 0.8


@pytest.mark.benchmark(group="table2")
def bench_table2_array_size_scaling(benchmark, save_result):
    """Extension: the same comparison at 64x64 — the ReSiPE advantage
    persists across array sizes."""
    from repro.analysis.tables import render_table

    result = benchmark(run_table2, rows=64, cols=64)
    rows = [[k, result.ratios[k], PAPER_HEADLINES[k]] for k in sorted(PAPER_HEADLINES)]
    save_result(
        "table2_64x64",
        render_table(["headline", "measured @64x64", "paper @32x32"], rows),
    )
    assert result.ratios["pe_vs_level"] > 1.0
    assert result.ratios["pe_vs_rate"] > 1.0
