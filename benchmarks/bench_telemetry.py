"""Telemetry overhead: the enabled-path budget and the disabled floor.

The observability layer makes two performance promises:

* **disabled** (no active session) every instrumentation point —
  ``telemetry.span``, ``telemetry.count``, ``context.trace_scope`` —
  collapses to a dictionary/context-var check costing well under a
  microsecond, so production hot loops pay nothing for being
  instrumented;
* **enabled** (``--telemetry``) each recorded span stays within a
  fixed per-span budget, so tracing a serving request (~6 spans) adds
  microseconds, not milliseconds, to a path whose compute is measured
  in milliseconds.

This bench times both paths with bare ``time.perf_counter`` loops
(benchmarks sit outside the TEL001 clock discipline), plus a macro
check — the served single-request latency with and without an active
session — and writes ``benchmarks/results/BENCH_telemetry.json``.
The micro budgets are hard gates (non-zero exit on overrun, like
``bench_serving.py``'s byte-identity gate); the macro ratio is
reported for trending but not gated, because single-request serving
latency on a loaded CI box is dominated by scheduler noise.

Run directly (CI observability job)::

    PYTHONPATH=src python benchmarks/bench_telemetry.py --fast
"""

import argparse
import json
import os
import time

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def _per_call_us(fn, calls):
    """Best-of-3 mean microseconds per call of ``fn(calls)``."""
    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        fn(calls)
        best = min(best, time.perf_counter() - start)
    return best / calls * 1e6


def measure_instrumentation(calls):
    """Per-call microseconds of each instrumentation point, with the
    telemetry session disabled and enabled."""
    from repro.telemetry import context
    from repro.telemetry import session as telemetry

    def span_loop(n):
        for i in range(n):
            with telemetry.span("bench.step", index=i):
                pass

    def count_loop(n):
        for _ in range(n):
            telemetry.count("bench.events")

    def scope_loop(n):
        for _ in range(n):
            with context.trace_scope():
                pass

    def log_loop(n):
        # Filtered-out level: the cost of a log call that goes nowhere.
        from repro.telemetry.logging import get_logger

        log = get_logger("bench")
        for i in range(n):
            log.debug("step %d", i)

    points = {"span": span_loop, "count": count_loop,
              "trace_scope": scope_loop, "log_filtered": log_loop}

    assert telemetry.active() is None
    disabled = {name: _per_call_us(fn, calls)
                for name, fn in points.items()}
    with telemetry.capture() as session:
        enabled = {name: _per_call_us(fn, calls)
                   for name, fn in points.items()}
        spans_recorded = len(session.tracer.spans)
    return {"disabled_us": disabled, "enabled_us": enabled,
            "spans_recorded": spans_recorded}


def measure_serving(model="mlp-1", n_samples=300, seed=0, requests=24):
    """Mean served single-request latency, telemetry off vs on.

    Reported for trending only — on a busy box the difference is noise
    next to the per-span micro numbers, which is itself the point: the
    enabled path must be invisible at serving granularity.
    """
    import numpy as np

    from repro.datasets import make_mnist_like
    from repro.serving import BackgroundServer, ModelRegistry, ServingConfig
    from repro.serving.client import predict
    from repro.telemetry import session as telemetry

    registry = ModelRegistry.from_benchmarks(
        [model], n_samples=n_samples, seed=seed
    )
    data = make_mnist_like(16, seed=seed + 7).flattened()
    rows = [data.images[i : i + 1] for i in range(8)]
    config = ServingConfig(
        models=(model,), port=0, n_samples=n_samples, seed=seed,
        batch_window_s=0.0,
    )

    def mean_latency_ms(server):
        samples = []
        for k in range(requests):
            t0 = time.perf_counter()
            status, _ = predict(server.host, server.port, model,
                                rows[k % len(rows)])
            if status != 200:
                raise RuntimeError(f"predict failed: {status}")
            samples.append((time.perf_counter() - t0) * 1e3)
        return float(np.mean(samples[2:]))  # drop cold first calls

    with BackgroundServer(registry, config) as server:
        off_ms = mean_latency_ms(server)
        with telemetry.capture() as session:
            on_ms = mean_latency_ms(server)
            spans = len(session.tracer.spans)
    return {
        "requests": requests,
        "latency_off_ms": off_ms,
        "latency_on_ms": on_ms,
        "overhead_ratio": on_ms / off_ms if off_ms > 0 else None,
        "spans_recorded": spans,
    }


def run_benchmark(calls=20000, enabled_budget_us=150.0,
                  disabled_budget_us=25.0, serving_requests=24,
                  n_samples=300, seed=0):
    micro = measure_instrumentation(calls)
    serving = measure_serving(
        n_samples=n_samples, seed=seed, requests=serving_requests
    )
    worst_enabled = max(micro["enabled_us"].values())
    worst_disabled = max(micro["disabled_us"].values())
    return {
        "config": {
            "calls": calls,
            "enabled_budget_us": enabled_budget_us,
            "disabled_budget_us": disabled_budget_us,
            "serving_requests": serving_requests,
            "n_samples": n_samples,
            "seed": seed,
        },
        "micro": micro,
        "serving": serving,
        "worst_enabled_us": worst_enabled,
        "worst_disabled_us": worst_disabled,
        "enabled_within_budget": worst_enabled <= enabled_budget_us,
        "disabled_within_budget": worst_disabled <= disabled_budget_us,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--calls", type=int, default=20000,
                        help="loop length per instrumentation point")
    parser.add_argument("--enabled-budget-us", type=float, default=150.0,
                        help="per-call budget with a session active")
    parser.add_argument("--disabled-budget-us", type=float, default=25.0,
                        help="per-call budget with telemetry off")
    parser.add_argument("--serving-requests", type=int, default=24)
    parser.add_argument("--samples", type=int, default=300)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--fast", action="store_true",
                        help="small CI preset (fewer loop iterations)")
    parser.add_argument("--output", default=os.path.join(
        RESULTS_DIR, "BENCH_telemetry.json"
    ))
    args = parser.parse_args(argv)
    if args.fast:
        args.calls = 5000
        args.serving_requests = 12

    report = run_benchmark(
        calls=args.calls,
        enabled_budget_us=args.enabled_budget_us,
        disabled_budget_us=args.disabled_budget_us,
        serving_requests=args.serving_requests,
        n_samples=args.samples, seed=args.seed,
    )
    os.makedirs(os.path.dirname(args.output), exist_ok=True)
    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")

    print("[bench_telemetry] per-call microseconds "
          f"(n={report['config']['calls']})")
    for name in sorted(report["micro"]["disabled_us"]):
        off = report["micro"]["disabled_us"][name]
        on = report["micro"]["enabled_us"][name]
        print(f"  {name:<12s} disabled {off:8.3f} us   "
              f"enabled {on:8.3f} us")
    serving = report["serving"]
    print(f"  serving: {serving['latency_off_ms']:.2f} ms off, "
          f"{serving['latency_on_ms']:.2f} ms on "
          f"(x{serving['overhead_ratio']:.2f}, "
          f"{serving['spans_recorded']} span(s) recorded)")
    print(f"  budgets: enabled worst {report['worst_enabled_us']:.1f} us "
          f"<= {report['config']['enabled_budget_us']:g} us: "
          f"{report['enabled_within_budget']}   "
          f"disabled worst {report['worst_disabled_us']:.1f} us "
          f"<= {report['config']['disabled_budget_us']:g} us: "
          f"{report['disabled_within_budget']}")
    print(f"  -> {args.output}")
    if not report["enabled_within_budget"]:
        print("[bench_telemetry] FAIL: enabled-path instrumentation "
              "exceeded its per-call budget")
        return 1
    if not report["disabled_within_budget"]:
        print("[bench_telemetry] FAIL: disabled-path instrumentation is "
              "no longer near-free")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
