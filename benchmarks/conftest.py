"""Shared benchmark utilities.

Every bench renders the regenerated paper table/figure content and
persists it under ``benchmarks/results/`` so the artefacts survive
output capture; the pytest-benchmark timing table covers the runtime
cost of regenerating each artefact.

Set ``REPRO_BENCH_SCALE=full`` for the full paper protocol (all six
networks, five sigmas); the default ``small`` keeps the suite in
laptop-minutes while exercising the identical code paths.
"""

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def bench_scale() -> str:
    """Benchmark scale: ``small`` (default) or ``full``."""
    scale = os.environ.get("REPRO_BENCH_SCALE", "small")
    if scale not in ("small", "full"):
        raise ValueError(f"REPRO_BENCH_SCALE must be small|full, got {scale!r}")
    return scale


@pytest.fixture
def save_result():
    """Persist one rendered artefact and echo it to stdout."""

    def _save(name: str, text: str) -> None:
        os.makedirs(RESULTS_DIR, exist_ok=True)
        path = os.path.join(RESULTS_DIR, f"{name}.txt")
        with open(path, "w") as fh:
            fh.write(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _save
