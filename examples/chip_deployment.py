"""From trained network to chip-level deployment report.

The system-architect view the paper's evaluation stops short of:

1. train LeNet (the paper's CNN-1) on synthetic MNIST;
2. compile it onto ReSiPE tiles and plan the chip: tile count, silicon
   area, energy per inference, frame rate under the two-slice pipeline;
3. project the same chip to future technology nodes;
4. estimate the readout's effective resolution from timing noise, and
   how long the chip stays accurate on the shelf (retention drift).

Run:  python examples/chip_deployment.py
"""

import numpy as np

from repro.config import CircuitParameters
from repro.core.mvm import MVMMode
from repro.core.timing_noise import analyse_timing_noise
from repro.circuits.noise import ktc_noise_voltage, minimum_capacitance_for_bits
from repro.experiments.networks import get_benchmark_networks
from repro.experiments.scaling import render_scaling, run_scaling
from repro.mapping import (
    PIMExecutor,
    ReSiPEBackend,
    compile_network,
    plan_deployment,
)
from repro.reram.retention import RetentionModel
from repro.units import si_format


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Train CNN-1 (cached after the first run).
    # ------------------------------------------------------------------
    print("training CNN-1 (LeNet) on synthetic MNIST ...")
    net = get_benchmark_networks(keys=["cnn-1"], n_samples=1000)[0]
    print(f"software accuracy: {net.software_accuracy:.3f}")

    # ------------------------------------------------------------------
    # 2. Plan the chip.
    # ------------------------------------------------------------------
    mapped = compile_network(net.model, ReSiPEBackend(mode=MVMMode.EXACT))
    report = plan_deployment(mapped, input_hw=(28, 28))
    print()
    print(report.render())

    # ------------------------------------------------------------------
    # 3. Technology projection.
    # ------------------------------------------------------------------
    print()
    print(render_scaling(run_scaling()))

    # ------------------------------------------------------------------
    # 4. Noise floor and shelf life.
    # ------------------------------------------------------------------
    params = CircuitParameters.calibrated()
    noise = analyse_timing_noise(params)
    print("\nreadout noise analysis:")
    print(f"  kT/C on C_cog ({si_format(params.c_cog, 'F')}): "
          f"{si_format(ktc_noise_voltage(params.c_cog), 'V')} rms")
    print(f"  timing noise, early/late crossing: "
          f"{si_format(noise.sigma_t_early, 's')} / "
          f"{si_format(noise.sigma_t_late, 's')}")
    print(f"  effective readout resolution: {noise.effective_bits:.1f} bits")
    print(f"  kT/C-limited minimum C_cog for 8-bit operation: "
          f"{si_format(minimum_capacitance_for_bits(params.v_s, 8), 'F')}")

    executor = PIMExecutor(mapped, net.train.images[:48])
    retention = RetentionModel(nu=0.02, nu_sigma=0.3)
    x, y = net.test.images[:150], net.test.labels[:150]
    print("\nshelf life (retention drift, nu = 2 %/decade):")
    for label, elapsed in (("1 day", 86_400.0), ("1 year", 3.15e7)):
        aged = executor.aged(retention, elapsed, np.random.default_rng(0))
        print(f"  after {label:>7}: accuracy {aged.accuracy(x, y):.3f}")


if __name__ == "__main__":
    main()
