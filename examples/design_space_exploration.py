"""Design-space exploration across PIM data formats.

Uses the comparison framework behind Table II and Fig. 6 to answer
the questions a deployment architect would ask:

* how do the four data formats compare on one array (Table II)?
* which design wins under a fixed area budget (Fig. 6)?
* how does the ReSiPE operating point trade linearity against area
  (the paper-literal vs calibrated ablation)?

Run:  python examples/design_space_exploration.py
"""

import numpy as np

from repro.analysis.tables import render_table
from repro.config import CircuitParameters
from repro.core.engine import ReSiPEEngine
from repro.core.power import ReSiPEPowerModel
from repro.experiments.fig6_throughput import run_fig6
from repro.experiments.table2_comparison import render_table2, run_table2


def main() -> None:
    # ------------------------------------------------------------------
    # Table II: the four designs on a 32x32 array.
    # ------------------------------------------------------------------
    print(render_table2(run_table2()))

    # ------------------------------------------------------------------
    # Fig. 6: who wins under an area budget?
    # ------------------------------------------------------------------
    print("\narea-budget exploration (aggregate GOPS):")
    result = run_fig6(budgets=[b * 1e-6 for b in (0.01, 0.05, 0.2, 1.0)])
    rows = []
    for i, budget in enumerate(result.budgets):
        rows.append(
            [f"{budget * 1e6:.2f} mm^2"]
            + [f"{result.throughput[name][i] / 1e9:.1f}"
               for name in result.throughput]
        )
    print(render_table(["budget"] + list(result.throughput), rows))
    print(f"winner at every budget >= 1 engine: {result.winner_at(-1)}")

    # ------------------------------------------------------------------
    # Operating-point trade-off.
    # ------------------------------------------------------------------
    print("\noperating-point trade-off (paper-literal vs calibrated):")
    rng = np.random.default_rng(0)
    weights = rng.random((32, 16))
    x = rng.random((64, 32))
    rows = []
    for label, params in (
        ("paper-literal", CircuitParameters.paper()),
        ("calibrated", CircuitParameters.calibrated()),
    ):
        engine = ReSiPEEngine.from_normalised_weights(weights, params)
        ref = x @ engine.normalised_weights
        err = float(np.abs(engine.mvm_values(x) - ref).mean() / ref.mean())
        power = ReSiPEPowerModel(params)
        rows.append([
            label,
            f"{params.c_cog * 1e15:.0f} fF",
            f"{err:.1%}",
            f"{power.power() * 1e6:.0f} uW",
            f"{power.area() * 1e12:.0f} um^2",
            f"{power.cog_power_share():.1%}",
        ])
    print(render_table(
        ["point", "C_cog", "MVM err", "power", "area", "COG share"], rows
    ))
    print("\nreading: the literal point is compact but saturates; the "
          "calibrated point is linear but pays a 16x larger COG capacitor "
          "bank (DESIGN.md section 1).")


if __name__ == "__main__":
    main()
