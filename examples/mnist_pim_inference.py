"""Train a classifier in software, deploy it on ReSiPE hardware.

The paper's Section IV-C workflow on the synthetic-MNIST substitute:

1. train a 2-layer perceptron (the paper's MLP-2) in pure numpy;
2. compile it onto 32x32 ReSiPE crossbars (differential weights, bias
   folding, tiling) with the exact circuit equations;
3. measure the hardware accuracy and the degradation under device
   variation sigma = 5/10/20 % — a miniature Fig. 7.

Run:  python examples/mnist_pim_inference.py
"""

import numpy as np

from repro.core.mvm import MVMMode
from repro.datasets import make_mnist_like, train_test_split
from repro.mapping import PIMExecutor, ReSiPEBackend, compile_network
from repro.nn import Adam, Dense, ReLU, Sequential, Trainer, evaluate_accuracy


def main() -> None:
    # ------------------------------------------------------------------
    # Software training.
    # ------------------------------------------------------------------
    print("generating synthetic MNIST and training MLP-2 ...")
    data = make_mnist_like(2000, seed=0)
    train, test = train_test_split(data.flattened())
    model = Sequential([Dense(784, 128), ReLU(), Dense(128, 10)], name="MLP-2")
    trainer = Trainer(model, Adam(model.parameters(), lr=2e-3), batch_size=64)
    trainer.fit(train.images, train.labels, epochs=10,
                x_val=test.images, labels_val=test.labels, verbose=True)
    software = evaluate_accuracy(model, test.images, test.labels)

    # ------------------------------------------------------------------
    # Hardware deployment.
    # ------------------------------------------------------------------
    print("\ncompiling onto ReSiPE crossbars ...")
    backend = ReSiPEBackend(mode=MVMMode.EXACT)
    mapped = compile_network(model, backend)
    print(f"crossbar tiles used: {mapped.total_tiles()} "
          f"(32x32 each, differential pairs)")
    executor = PIMExecutor(mapped, train.images[:64])
    hardware = executor.accuracy(test.images, test.labels)

    print(f"\nsoftware accuracy          : {software:.3f}")
    print(f"ReSiPE accuracy (sigma=0)  : {hardware:.3f}   "
          f"(non-linearity drop {software - hardware:+.3f})")

    # ------------------------------------------------------------------
    # Device variation (mini Fig. 7).
    # ------------------------------------------------------------------
    print("\ndevice variation sweep (3 Monte-Carlo trials each):")
    for sigma in (0.05, 0.10, 0.20):
        accs = [
            executor.perturbed(np.random.default_rng(seed), sigma).accuracy(
                test.images, test.labels
            )
            for seed in range(3)
        ]
        print(f"  sigma = {sigma:4.0%}: accuracy {np.mean(accs):.3f} "
              f"(min {min(accs):.3f}, drop {software - np.mean(accs):+.3f})")


if __name__ == "__main__":
    main()
