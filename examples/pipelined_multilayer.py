"""Multi-layer pipelining with the two-slice protocol.

The paper's Fig. 1 observation — layer n's output slice *is* layer
n+1's input slice — turns a stack of ReSiPE engines into a pipeline
with a two-slice initiation interval.  This example:

1. schedules a 4-layer network over a batch, pipelined and serial;
2. prints the slice-level timeline;
3. chains two circuit-level MACs to show the S2 -> S1 hand-off at the
   waveform level.

Run:  python examples/pipelined_multilayer.py
"""

from repro.config import CircuitParameters
from repro.core.mac import SingleSpikeMAC
from repro.core.pipeline import schedule_pipeline
from repro.units import si_format


def timeline(schedule, max_slots: int = 14) -> str:
    """ASCII slice-occupancy chart: rows = engines, cols = slices."""
    rows = []
    for layer in range(schedule.num_layers):
        cells = []
        for slot in range(min(schedule.total_slices, max_slots)):
            task = next(
                (t for t in schedule.tasks if t.layer == layer and t.slot == slot),
                None,
            )
            cells.append("...." if task is None else f"s{task.sample}{task.stage}")
        rows.append(f"  engine {layer}: " + " ".join(f"{c:>4}" for c in cells))
    return "\n".join(rows)


def main() -> None:
    params = CircuitParameters.calibrated()
    layers, samples = 4, 4

    # ------------------------------------------------------------------
    # Scheduling.
    # ------------------------------------------------------------------
    pipe = schedule_pipeline(layers, samples, params.slice_length)
    serial = schedule_pipeline(layers, samples, params.slice_length,
                               pipelined=False)
    print(f"{layers}-layer network, {samples} samples, "
          f"slice = {si_format(params.slice_length, 's')}\n")
    print("pipelined timeline (sample/stage per slice):")
    print(timeline(pipe))
    print(f"\n  latency/sample     : {pipe.sample_latency_slices} slices "
          f"({si_format(pipe.sample_latency, 's')})")
    print(f"  initiation interval: {pipe.initiation_interval_slices} slices")
    print(f"  makespan           : {si_format(pipe.makespan, 's')} "
          f"(serial: {si_format(serial.makespan, 's')}, "
          f"{serial.makespan / pipe.makespan:.2f}x slower)")
    print(f"  throughput         : {pipe.throughput / 1e6:.1f} Msamples/s")

    # ------------------------------------------------------------------
    # The S2 -> S1 hand-off at circuit level.
    # ------------------------------------------------------------------
    print("\ncircuit-level hand-off (two chained 2-input MACs):")
    mac1 = SingleSpikeMAC(params, [2e-5, 1e-5])
    stage1 = mac1.run([25e-9, 60e-9])
    print(f"  layer 1 output spike @ S2 + {si_format(stage1.t_out, 's')}")

    # The output spike time *is* the next layer's input spike time.
    mac2 = SingleSpikeMAC(params, [1.5e-5, 0.5e-5])
    stage2 = mac2.run([stage1.t_out, stage1.t_out])
    print(f"  layer 2 output spike @ S2 + {si_format(stage2.t_out, 's')}")
    print("  (no conversion circuitry between the layers: the identical "
          "format of input and output is the hand-off)")


if __name__ == "__main__":
    main()
