"""Quickstart: the single-spiking data format in five minutes.

Demonstrates the core ReSiPE ideas end to end:

1. encode values as single-spike arrival times;
2. run a circuit-level two-input MAC (the paper's Fig. 2/3 circuit)
   on the exact transient engine;
3. run a full 32x32 crossbar MVM in the timing domain and compare it
   with the ideal matrix product;
4. inspect the engine's power/latency/area budget.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import CircuitParameters, ReSiPEEngine, SingleSpikeCodec, SingleSpikeMAC
from repro.core.power import ReSiPEPowerModel
from repro.units import si_format


def main() -> None:
    params = CircuitParameters.calibrated()
    print("=== operating point ===")
    print(params.describe())

    # ------------------------------------------------------------------
    # 1. The data format: a value is the arrival time of one spike.
    # ------------------------------------------------------------------
    codec = SingleSpikeCodec(t_max=params.t_in_max,
                             slice_length=params.slice_length)
    print("\n=== single-spiking codec ===")
    for value in (0.0, 0.25, 1.0):
        spike = codec.encode(value)
        when = "no spike" if spike.time is None else si_format(spike.time, "s")
        print(f"value {value:4.2f}  ->  spike @ {when}")

    # ------------------------------------------------------------------
    # 2. Circuit-level MAC (Fig. 2): two inputs, two ReRAM cells.
    # ------------------------------------------------------------------
    print("\n=== circuit-level MAC (transient engine) ===")
    conductances = [1 / 100e3, 1 / 400e3]  # 100 kOhm and 400 kOhm cells
    mac = SingleSpikeMAC(params, conductances)
    stimulus = [30e-9, 65e-9]
    waves = mac.run(stimulus)
    predicted = mac.predicted_t_out(stimulus)
    print(f"input spikes at {si_format(stimulus[0], 's')}, "
          f"{si_format(stimulus[1], 's')}")
    print(f"output spike (transient) : {si_format(waves.t_out, 's')}")
    print(f"output spike (closed form): {si_format(predicted, 's')}")

    # ------------------------------------------------------------------
    # 3. Full crossbar MVM in the timing domain.
    # ------------------------------------------------------------------
    print("\n=== 32x32 single-spike MVM ===")
    rng = np.random.default_rng(0)
    weights = rng.random((32, 32))
    engine = ReSiPEEngine.from_normalised_weights(weights, params)
    x = rng.random(32)
    y_hw = engine.mvm_values(x)
    y_ref = x @ engine.normalised_weights
    err = np.abs(y_hw - y_ref).max() / y_ref.max()
    print(f"max relative MVM error vs ideal: {err:.2%} "
          "(exact circuit equations, no variation)")

    # ------------------------------------------------------------------
    # 4. What does it cost?
    # ------------------------------------------------------------------
    print("\n=== engine budget ===")
    power = ReSiPEPowerModel(params)
    print(power.budget().render())
    print(f"throughput       : {power.throughput() / 1e9:.2f} GOPS")
    print(f"power efficiency : {power.power_efficiency() / 1e12:.1f} TOPS/W")
    print(f"COG power share  : {power.cog_power_share():.1%}")


if __name__ == "__main__":
    main()
