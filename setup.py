"""Setuptools shim.

Kept so that ``pip install -e .`` works in offline environments without
the ``wheel`` package (legacy ``setup.py develop`` path); all metadata
lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
