"""ReSiPE reproduction — a ReRAM-based single-spiking PIM engine.

Full-system reproduction of *ReSiPE: ReRAM-based Single-Spiking
Processing-In-Memory Engine* (Li, Yan, Li — DAC 2020): the
single-spiking data format and MVM circuits, the ReRAM crossbar
substrate, the compared level/PWM/rate-coding baselines, a pure-numpy
neural-network stack, the network-to-crossbar mapping compiler, and
harnesses regenerating every table and figure of the paper's
evaluation.  See DESIGN.md for the system inventory and EXPERIMENTS.md
for paper-vs-measured results.

Quick start::

    import numpy as np
    from repro import CircuitParameters, ReSiPEEngine

    params = CircuitParameters.calibrated()
    weights = np.random.default_rng(0).random((32, 16))
    engine = ReSiPEEngine.from_normalised_weights(weights, params)
    y = engine.mvm_values(np.random.default_rng(1).random(32))
"""

from .config import CircuitParameters, default_parameters
from .core import (
    ColumnOutputGenerator,
    GlobalDecoder,
    MVMMode,
    ReSiPEEngine,
    ReSiPEPowerModel,
    SingleSpikeCodec,
    SingleSpikeMAC,
    SingleSpikeMVM,
)
from .errors import (
    ArtifactError,
    CircuitError,
    ConfigurationError,
    DeviceError,
    EncodingError,
    MappingError,
    ReproError,
    ShapeError,
    TrainingError,
)
from .reram import CrossbarArray, DeviceSpec, VariationModel

__version__ = "1.0.0"

__all__ = [
    "CircuitParameters",
    "default_parameters",
    "SingleSpikeCodec",
    "GlobalDecoder",
    "ColumnOutputGenerator",
    "SingleSpikeMAC",
    "SingleSpikeMVM",
    "MVMMode",
    "ReSiPEEngine",
    "ReSiPEPowerModel",
    "CrossbarArray",
    "DeviceSpec",
    "VariationModel",
    "ReproError",
    "ArtifactError",
    "ConfigurationError",
    "CircuitError",
    "DeviceError",
    "EncodingError",
    "MappingError",
    "ShapeError",
    "TrainingError",
    "__version__",
]
