"""Analysis and reporting utilities.

* :mod:`repro.analysis.fitting` — polynomial/linear fits for the Fig. 5
  characterisation curves.
* :mod:`repro.analysis.metrics` — error and accuracy metrics.
* :mod:`repro.analysis.sweep` — generic parameter-sweep harness.
* :mod:`repro.analysis.tables` — ASCII table rendering for benchmark
  output.
"""

from .fitting import LinearFit, fit_linear, fit_polynomial, r_squared
from .metrics import (
    accuracy_score,
    mean_relative_error,
    max_relative_error,
    rmse,
)
from .sweep import SweepResult, sweep
from .tables import render_table

__all__ = [
    "LinearFit",
    "fit_linear",
    "fit_polynomial",
    "r_squared",
    "accuracy_score",
    "mean_relative_error",
    "max_relative_error",
    "rmse",
    "SweepResult",
    "sweep",
    "render_table",
]
