"""Dataflow engine behind the deep lint rules.

Layered, zero-dependency (stdlib ``ast`` only):

* :mod:`.cfg` — per-function statement-level control-flow graphs with
  explicit branch/loop/exception/finally edges and path queries;
* :mod:`.symbols` — project-wide import-resolving symbol table with
  best-effort instance-attribute typing;
* :mod:`.callgraph` — call resolution (imports, ``self`` methods,
  typed receivers, unique-name fallback) and async-reachability;
* :mod:`.reaching` — intraprocedural reaching definitions.

See ``docs/static_analysis.md`` for the architecture notes and the
modelling contract (what the exception edges do and do not promise).
"""

from .callgraph import CallGraph, CallSite, build_call_graph
from .cfg import CFG, CFGNode, build_cfg
from .reaching import ReachingDefinitions, definitions_in
from .symbols import (
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    ProjectSymbols,
    module_name_for_path,
    resolve_dotted,
)

__all__ = [
    "CFG",
    "CFGNode",
    "build_cfg",
    "CallGraph",
    "CallSite",
    "build_call_graph",
    "ReachingDefinitions",
    "definitions_in",
    "ClassInfo",
    "FunctionInfo",
    "ModuleInfo",
    "ProjectSymbols",
    "module_name_for_path",
    "resolve_dotted",
]
