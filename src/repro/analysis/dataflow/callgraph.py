"""Project call graph over the :mod:`symbols` table.

For every project function we record two things:

* **internal edges** — calls resolved to another project function's
  qualified name.  Resolution strategies, in order: imported dotted
  names (``batcher.MicroBatcher`` constructors are *not* calls we
  track — only function/method targets), same-module bare names,
  ``self.method()`` within the defining class, attribute calls on
  receivers whose type the symbol table inferred
  (``self._breaker.record_failure()``), and finally a *unique-name*
  fallback: an attribute call ``x.frobnicate()`` resolves iff exactly
  one project function is named ``frobnicate``.  Ambiguous names do
  not resolve — the graph under-approximates and downstream rules
  stay quiet rather than guess.
* **external calls** — dotted names of calls that resolve through the
  import map but target nothing in the project
  (``time.sleep``, ``subprocess.run``).  Async-safety rules match
  these against their blocking-call tables.

Callables *passed as arguments* never create edges.  In particular
``loop.run_in_executor(None, fn, ...)`` and ``asyncio.to_thread(fn)``
hand ``fn`` to a worker thread, which is exactly how blocking work is
*supposed* to leave the event loop — treating the argument as a call
edge would make every correct executor offload an ASYNC001 finding.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Dict, List, Optional, Set, Tuple

from .symbols import (
    ClassInfo,
    FunctionInfo,
    ProjectSymbols,
    resolve_dotted,
)

__all__ = ["CallSite", "CallGraph", "build_call_graph"]


@dataclasses.dataclass
class CallSite:
    """One resolved call expression inside a function body."""

    call: ast.Call
    lineno: int
    #: qualified name of a project function, when resolved internally
    target: Optional[str] = None
    #: dotted external name, when resolved through imports only
    external: Optional[str] = None
    #: ``obj.method(...)`` receiver info for receiver-typed checks:
    #: (receiver dotted type or None, method name) — None for Name calls
    method: Optional[Tuple[Optional[str], str]] = None


class CallGraph:
    """Qualname → outgoing :class:`CallSite` list."""

    def __init__(self, symbols: ProjectSymbols) -> None:
        self.symbols = symbols
        self.sites: Dict[str, List[CallSite]] = {}
        #: qualname → {local name: dotted type} (tracked constructors,
        #: including ``with Ctor() as name`` bindings)
        self.local_types: Dict[str, Dict[str, str]] = {}

    def edges_from(self, qualname: str) -> List[str]:
        return [s.target for s in self.sites.get(qualname, [])
                if s.target is not None]

    def reachable_from(self, roots: List[str]) -> Set[str]:
        """Every project function reachable from ``roots`` (inclusive)."""
        seen: Set[str] = set()
        frontier = [q for q in roots if q in self.symbols.functions]
        while frontier:
            qual = frontier.pop()
            if qual in seen:
                continue
            seen.add(qual)
            frontier.extend(self.edges_from(qual))
        return seen


#: callable-consuming APIs whose *arguments* must not become edges —
#: they run the callable off the event loop (see module docstring)
_EXECUTOR_APIS = frozenset({
    "run_in_executor", "to_thread", "submit", "map", "call_soon",
    "call_soon_threadsafe", "call_later",
})


class _FunctionScanner(ast.NodeVisitor):
    """Collects the call sites of one function body."""

    def __init__(
        self,
        fn: FunctionInfo,
        symbols: ProjectSymbols,
        imports: Dict[str, str],
        cls: Optional[ClassInfo],
    ) -> None:
        self.fn = fn
        self.symbols = symbols
        self.imports = imports
        self.cls = cls
        self.module = symbols.modules.get(fn.module)
        self.sites: List[CallSite] = []
        #: local variable → dotted type, from tracked constructors
        self.local_types: Dict[str, str] = {}

    # -- nested scopes do not belong to this function -------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass

    def visit_Assign(self, node: ast.Assign) -> None:
        self._record_local_type(node.targets, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._record_local_type([node.target], node.value)
        self.generic_visit(node)

    def visit_With(self, node: ast.With) -> None:
        self._with_types(node)
        self.generic_visit(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._with_types(node)
        self.generic_visit(node)

    def _with_types(self, node: ast.AST) -> None:
        for item in node.items:  # type: ignore[attr-defined]
            if item.optional_vars is not None:
                self._record_local_type([item.optional_vars],
                                        item.context_expr)

    def _record_local_type(
        self, targets: List[ast.expr], value: ast.expr
    ) -> None:
        if not isinstance(value, ast.Call):
            return
        dotted = resolve_dotted(value.func, self.imports)
        if dotted is None and isinstance(value.func, ast.Name):
            local = f"{self.fn.module}.{value.func.id}"
            if local in self.symbols.classes:
                dotted = local
        if dotted is None:
            return
        for target in targets:
            if isinstance(target, ast.Name):
                self.local_types[target.id] = dotted

    # -- call resolution ------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        site = self._resolve(node)
        if site is not None:
            self.sites.append(site)
        # Walk into argument expressions *except* when this call is an
        # executor API: its callable arguments are offloaded work.
        self.visit(node.func)
        if not self._is_executor_call(node):
            for arg in node.args:
                self.visit(arg)
            for kw in node.keywords:
                self.visit(kw.value)

    @staticmethod
    def _is_executor_call(node: ast.Call) -> bool:
        func = node.func
        return (isinstance(func, ast.Attribute)
                and func.attr in _EXECUTOR_APIS)

    def _resolve(self, node: ast.Call) -> Optional[CallSite]:
        func = node.func
        if isinstance(func, ast.Name):
            return self._resolve_name(node, func.id)
        if isinstance(func, ast.Attribute):
            return self._resolve_attribute(node, func)
        return None

    def _resolve_name(self, node: ast.Call, name: str) -> Optional[CallSite]:
        # imported function: `from time import sleep; sleep(1)`
        dotted = self.imports.get(name)
        if dotted is not None:
            target = dotted if dotted in self.symbols.functions else None
            external = None if target else dotted
            return CallSite(call=node, lineno=node.lineno, target=target,
                            external=external)
        # same-module function
        qual = f"{self.fn.module}.{name}"
        if qual in self.symbols.functions:
            return CallSite(call=node, lineno=node.lineno, target=qual)
        return None

    def _resolve_attribute(
        self, node: ast.Call, func: ast.Attribute
    ) -> Optional[CallSite]:
        # fully dotted through imports: time.sleep(...), repro.x.y(...)
        dotted = resolve_dotted(func, self.imports)
        if dotted is not None:
            if dotted in self.symbols.functions:
                return CallSite(call=node, lineno=node.lineno, target=dotted)
            return CallSite(call=node, lineno=node.lineno, external=dotted)

        method = func.attr
        receiver_type = self._receiver_type(func.value)

        # self.method() in the defining class
        if (isinstance(func.value, ast.Name) and func.value.id == "self"
                and self.cls is not None):
            owned = self.cls.methods.get(method)
            if owned is not None:
                return CallSite(call=node, lineno=node.lineno,
                                target=owned.qualname,
                                method=(self.cls.qualname, method))

        # typed receiver pointing at a project class
        if receiver_type is not None:
            cls = self.symbols.classes.get(receiver_type)
            if cls is not None and method in cls.methods:
                return CallSite(call=node, lineno=node.lineno,
                                target=cls.methods[method].qualname,
                                method=(receiver_type, method))
            # typed but external receiver (threading.Lock().acquire())
            return CallSite(call=node, lineno=node.lineno,
                            method=(receiver_type, method))

        # unique-name fallback on an untyped receiver
        unique = self.symbols.unique_function(method)
        if unique is not None and unique.class_name is not None:
            return CallSite(call=node, lineno=node.lineno,
                            target=unique.qualname, method=(None, method))
        return CallSite(call=node, lineno=node.lineno, method=(None, method))

    def _receiver_type(self, value: ast.expr) -> Optional[str]:
        if isinstance(value, ast.Name):
            return self.local_types.get(value.id)
        if (isinstance(value, ast.Attribute)
                and isinstance(value.value, ast.Name)
                and value.value.id == "self" and self.cls is not None):
            return self.cls.attr_types.get(value.attr)
        return None


def build_call_graph(symbols: ProjectSymbols) -> CallGraph:
    graph = CallGraph(symbols)
    for fn in symbols.functions.values():
        module = symbols.modules.get(fn.module)
        imports = module.imports if module is not None else {}
        scanner = _FunctionScanner(fn, symbols, imports,
                                   symbols.class_of(fn))
        for stmt in fn.node.body:  # type: ignore[attr-defined]
            scanner.visit(stmt)
        graph.sites[fn.qualname] = scanner.sites
        graph.local_types[fn.qualname] = scanner.local_types
    return graph
