"""Per-function control-flow graphs over stdlib :mod:`ast`.

One :class:`CFG` has a node per *statement* (plus synthetic ``entry``,
``exit`` and ``raise-exit`` nodes) and labelled edges:

``next``
    Ordinary fall-through between consecutive statements.
``true`` / ``false``
    The two arms of an ``if``/``while`` test (``false`` doubles as the
    loop-exhausted edge of ``for``).
``loop`` / ``break`` / ``continue``
    Back edge to a loop head and the two explicit loop exits.
``exc``
    An exception edge: from a ``raise``, an ``assert``, or any
    statement containing an ``await`` (the points where foreign code
    runs on the event loop), to the innermost matching ``except``
    entries — or to ``raise-exit`` when the exception escapes the
    function.  With ``raise_policy="calls"`` every statement containing
    a call also gets exception edges (maximal, for pessimistic
    analyses).
``return``
    From a ``return`` statement to ``exit`` (possibly via duplicated
    ``finally`` bodies).

``try``/``finally`` is modelled by *duplication*: every distinct way of
leaving a ``try`` (fall-through, return, break, continue, raise)
traverses its own copy of the ``finally`` body, so a ``return`` in both
the ``try`` arm and the ``finally`` arm produces two independent paths
to ``exit`` — exactly the shape waiter-resolution analysis needs.

Modelling choices (documented contract of every rule built on top):

* Plain calls are assumed total under the default policy — only
  ``raise``, ``assert`` and ``await`` introduce exception edges.
* ``except Exception`` / ``except BaseException`` / bare ``except``
  stop exception propagation; narrower handlers also receive an edge
  but propagation continues past them.
* ``asyncio.CancelledError`` is not modelled separately: cancellation
  is the canceller's contract (see ``MicroBatcher.abort``), not the
  cancellee's.
* ``with`` blocks are assumed not to suppress exceptions.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple, Union

__all__ = ["CFG", "CFGNode", "build_cfg"]

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: handler annotations that stop exception propagation
_CATCH_ALL = frozenset({"Exception", "BaseException"})


@dataclasses.dataclass
class CFGNode:
    """One CFG vertex.

    Attributes
    ----------
    index:
        Dense id, also the key in :attr:`CFG.succs`.
    kind:
        ``"entry"``/``"exit"``/``"raise-exit"`` for the synthetic
        nodes, ``"stmt"`` for real statements, ``"except"`` for a
        handler entry.
    stmt:
        The underlying AST statement (``None`` for synthetic nodes).
        ``finally`` duplication shares one AST node between copies.
    label:
        Human-readable ``<type>@<line>`` tag used by golden tests.
    """

    index: int
    kind: str
    stmt: Optional[ast.AST]
    label: str


class CFG:
    """Control-flow graph of one function body."""

    def __init__(self, func: FunctionNode) -> None:
        self.func = func
        self.nodes: List[CFGNode] = []
        self.succs: Dict[int, List[Tuple[int, str]]] = {}
        self.entry = self._add("entry", None, "entry")
        self.exit = self._add("exit", None, "exit")
        self.raise_exit = self._add("raise-exit", None, "raise-exit")

    # ------------------------------------------------------------------
    def _add(self, kind: str, stmt: Optional[ast.AST], label: str) -> int:
        index = len(self.nodes)
        self.nodes.append(CFGNode(index=index, kind=kind, stmt=stmt,
                                  label=label))
        self.succs[index] = []
        return index

    def add_edge(self, src: int, dst: int, kind: str) -> None:
        if (dst, kind) not in self.succs[src]:
            self.succs[src].append((dst, kind))

    # -- queries -------------------------------------------------------
    def node(self, index: int) -> CFGNode:
        return self.nodes[index]

    def statement_nodes(self) -> Iterator[CFGNode]:
        for node in self.nodes:
            if node.stmt is not None:
                yield node

    def edges(self) -> List[Tuple[str, str, str]]:
        """Sorted ``(src_label, edge_kind, dst_label)`` triples
        (deduplicated — ``finally`` copies share labels)."""
        out = {
            (self.nodes[a].label, kind, self.nodes[b].label)
            for a, succ in self.succs.items()
            for (b, kind) in succ
        }
        return sorted(out)

    def reachable(self, start: Optional[int] = None,
                  avoid: Optional[Set[int]] = None) -> Set[int]:
        """Nodes reachable from ``start`` along any edge, never
        entering a node in ``avoid`` (the path-query primitive: an
        exit reachable while avoiding every resolution node is a
        leaked path)."""
        start = self.entry if start is None else start
        avoid = avoid or set()
        seen: Set[int] = set()
        stack = [start]
        while stack:
            current = stack.pop()
            if current in seen or current in avoid:
                continue
            seen.add(current)
            stack.extend(dst for dst, _ in self.succs[current])
        return seen

    def predecessors(self) -> Dict[int, List[Tuple[int, str]]]:
        preds: Dict[int, List[Tuple[int, str]]] = {
            n.index: [] for n in self.nodes
        }
        for src, succ in self.succs.items():
            for dst, kind in succ:
                preds[dst].append((src, kind))
        return preds


# ----------------------------------------------------------------------
@dataclasses.dataclass
class _Frame:
    """One enclosing construct a jump may have to traverse.

    ``kind`` is ``"loop"`` (break/continue target), ``"try"`` (handler
    entries for raise routing) or ``"finally"`` (body to duplicate on
    every distinct exit).
    """

    kind: str
    continue_target: int = -1
    break_sources: List[Tuple[int, str]] = dataclasses.field(
        default_factory=list)
    handler_entries: List[int] = dataclasses.field(default_factory=list)
    catch_all: bool = False
    final_body: Sequence[ast.stmt] = ()


def _is_catch_all(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    names: List[ast.expr] = (
        list(handler.type.elts) if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    for expr in names:
        if isinstance(expr, ast.Name) and expr.id in _CATCH_ALL:
            return True
        if isinstance(expr, ast.Attribute) and expr.attr in _CATCH_ALL:
            return True
    return False


def _contains(node: ast.AST, kinds: tuple) -> bool:
    """Does the expression/statement contain a sub-node of the given
    AST types, without descending into nested function or class
    definitions (their bodies run at call time, not here)?"""
    stack = [node]
    while stack:
        child = stack.pop()
        if isinstance(child, kinds):
            return True
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                              ast.Lambda, ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(child))
    return False


class _Builder:
    """Recursive-descent CFG construction (see module docstring)."""

    def __init__(self, func: FunctionNode, raise_policy: str) -> None:
        self.cfg = CFG(func)
        self.raise_policy = raise_policy

    def build(self) -> CFG:
        head, tails = self._seq(self.cfg.func.body, [])
        if head is not None:
            self.cfg.add_edge(self.cfg.entry, head, "next")
        else:  # pragma: no cover - empty bodies are not valid python
            self.cfg.add_edge(self.cfg.entry, self.cfg.exit, "next")
        self._connect(tails, self.cfg.exit)
        return self.cfg

    # ------------------------------------------------------------------
    def _stmt_node(self, stmt: ast.stmt, kind: str = "stmt") -> int:
        label = f"{type(stmt).__name__.lower()}@{stmt.lineno}"
        return self.cfg._add(kind, stmt, label)

    def _connect(self, tails: Sequence[Tuple[int, str]], dst: int) -> None:
        for src, kind in tails:
            self.cfg.add_edge(src, dst, kind)

    def _can_raise(self, stmt: ast.stmt) -> bool:
        if _contains(stmt, (ast.Await,)):
            return True
        if self.raise_policy == "calls" and _contains(stmt, (ast.Call,)):
            return True
        return False

    # ------------------------------------------------------------------
    def _route(
        self,
        sources: List[Tuple[int, str]],
        frames: List[_Frame],
        jump: str,
    ) -> None:
        """Route a non-local jump (``return``/``raise``/``break``/
        ``continue``) outward through the frame stack, duplicating
        every traversed ``finally`` body."""
        for i in range(len(frames) - 1, -1, -1):
            if not sources:
                return  # e.g. a finally copy that itself returns
            frame = frames[i]
            if frame.kind == "finally":
                head, tails = self._seq(list(frame.final_body), frames[:i])
                if head is not None:
                    self._connect(sources, head)
                    sources = [(src, jump) for src, _ in tails]
            elif frame.kind == "try" and jump == "exc":
                for src, kind in sources:
                    for entry in frame.handler_entries:
                        self.cfg.add_edge(src, entry, kind)
                if frame.catch_all:
                    return
            elif frame.kind == "loop" and jump in ("break", "continue"):
                if jump == "break":
                    frame.break_sources.extend(sources)
                else:
                    self._connect(sources, frame.continue_target)
                return
        if jump == "return":
            self._connect(sources, self.cfg.exit)
        elif jump == "exc":
            self._connect(sources, self.cfg.raise_exit)
        # an unrouted break/continue is a SyntaxError upstream

    # ------------------------------------------------------------------
    def _seq(
        self, stmts: Sequence[ast.stmt], frames: List[_Frame]
    ) -> Tuple[Optional[int], List[Tuple[int, str]]]:
        """Build a statement list; returns ``(head, open_tails)``."""
        head: Optional[int] = None
        tails: List[Tuple[int, str]] = []
        for stmt in stmts:
            sub_head, sub_tails = self._one(stmt, frames)
            if sub_head is None:
                continue
            if head is None:
                head = sub_head
            else:
                self._connect(tails, sub_head)
            tails = sub_tails
        return head, tails

    def _one(
        self, stmt: ast.stmt, frames: List[_Frame]
    ) -> Tuple[Optional[int], List[Tuple[int, str]]]:
        if isinstance(stmt, ast.Return):
            node = self._stmt_node(stmt)
            if self._can_raise(stmt):
                self._route([(node, "exc")], frames, "exc")
            self._route([(node, "return")], frames, "return")
            return node, []
        if isinstance(stmt, ast.Raise):
            node = self._stmt_node(stmt)
            self._route([(node, "exc")], frames, "exc")
            return node, []
        if isinstance(stmt, ast.Assert):
            node = self._stmt_node(stmt)
            self._route([(node, "exc")], frames, "exc")
            return node, [(node, "next")]
        if isinstance(stmt, ast.Break):
            node = self._stmt_node(stmt)
            self._route([(node, "break")], frames, "break")
            return node, []
        if isinstance(stmt, ast.Continue):
            node = self._stmt_node(stmt)
            self._route([(node, "continue")], frames, "continue")
            return node, []
        if isinstance(stmt, ast.If):
            return self._if(stmt, frames)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._loop(stmt, frames)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, frames)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, frames)
        # simple statement (incl. nested def/class: one opaque node)
        node = self._stmt_node(stmt)
        if self._can_raise(stmt):
            self._route([(node, "exc")], frames, "exc")
        return node, [(node, "next")]

    def _if(self, stmt: ast.If, frames: List[_Frame]):
        test = self._stmt_node(stmt)
        if self._can_raise(stmt.test):
            self._route([(test, "exc")], frames, "exc")
        body_head, body_tails = self._seq(stmt.body, frames)
        tails = list(body_tails)
        if body_head is not None:
            self.cfg.add_edge(test, body_head, "true")
        else:  # pragma: no cover - empty bodies are not valid python
            tails.append((test, "true"))
        if stmt.orelse:
            else_head, else_tails = self._seq(stmt.orelse, frames)
            if else_head is not None:
                self.cfg.add_edge(test, else_head, "false")
                tails.extend(else_tails)
            else:  # pragma: no cover
                tails.append((test, "false"))
        else:
            tails.append((test, "false"))
        return test, tails

    def _loop(self, stmt, frames: List[_Frame]):
        loop = self._stmt_node(stmt)
        header = stmt.test if isinstance(stmt, ast.While) else stmt.iter
        if isinstance(stmt, ast.AsyncFor) or self._can_raise(header):
            # awaited test / async-iterator protocol may raise
            self._route([(loop, "exc")], frames, "exc")
        frame = _Frame(kind="loop", continue_target=loop)
        body_head, body_tails = self._seq(stmt.body, frames + [frame])
        if body_head is not None:
            self.cfg.add_edge(loop, body_head, "true")
            self._connect(body_tails, loop)
        tails: List[Tuple[int, str]] = []
        if stmt.orelse:
            # while/else and for/else: the else arm runs only when the
            # loop exits by exhaustion — break jumps past it.
            else_head, else_tails = self._seq(stmt.orelse, frames)
            if else_head is not None:
                self.cfg.add_edge(loop, else_head, "false")
                tails.extend(else_tails)
            else:  # pragma: no cover
                tails.append((loop, "false"))
        else:
            tails.append((loop, "false"))
        tails.extend(frame.break_sources)
        return loop, tails

    def _with(self, stmt, frames: List[_Frame]):
        # One node for context entry (the `with` line itself); the body
        # follows; exceptions in the body propagate unchanged.
        node = self._stmt_node(stmt)
        if isinstance(stmt, ast.AsyncWith) or any(
            self._can_raise(item.context_expr) for item in stmt.items
        ):
            self._route([(node, "exc")], frames, "exc")
        body_head, body_tails = self._seq(stmt.body, frames)
        if body_head is None:  # pragma: no cover
            return node, [(node, "next")]
        self.cfg.add_edge(node, body_head, "next")
        return node, body_tails

    def _try(self, stmt: ast.Try, frames: List[_Frame]):
        final_frame: Optional[_Frame] = None
        inner = list(frames)
        if stmt.finalbody:
            final_frame = _Frame(kind="finally", final_body=stmt.finalbody)
            inner = inner + [final_frame]
        #: frames seen by handler bodies and the else arm (their
        #: exceptions skip this try's own handlers)
        outer_of_handlers = list(inner)
        try_frame = _Frame(kind="try")
        if stmt.handlers:
            for handler in stmt.handlers:
                anno = ("except" if handler.type is None else
                        f"except:{ast.unparse(handler.type)}"
                        if hasattr(ast, "unparse") else "except")
                entry = self.cfg._add(
                    "except", handler, f"{anno}@{handler.lineno}"
                )
                try_frame.handler_entries.append(entry)
                if _is_catch_all(handler):
                    try_frame.catch_all = True
            inner = inner + [try_frame]
        body_head, body_tails = self._seq(stmt.body, inner)
        normal_tails: List[Tuple[int, str]] = []
        if stmt.orelse:
            else_head, else_tails = self._seq(stmt.orelse, outer_of_handlers)
            if else_head is not None:
                self._connect(body_tails, else_head)
                normal_tails.extend(else_tails)
            else:  # pragma: no cover
                normal_tails.extend(body_tails)
        else:
            normal_tails.extend(body_tails)
        for handler, entry in zip(stmt.handlers, try_frame.handler_entries):
            handler_head, handler_tails = self._seq(
                handler.body, outer_of_handlers
            )
            if handler_head is not None:
                self.cfg.add_edge(entry, handler_head, "next")
                normal_tails.extend(handler_tails)
            else:  # pragma: no cover
                normal_tails.append((entry, "next"))
        if stmt.finalbody:
            if normal_tails:
                fin_head, fin_tails = self._seq(stmt.finalbody, frames)
                if fin_head is not None:
                    self._connect(normal_tails, fin_head)
                    normal_tails = fin_tails
        if body_head is None:  # pragma: no cover - empty try is invalid
            body_head = self.cfg._add("stmt", stmt, f"try@{stmt.lineno}")
            self.cfg.add_edge(body_head, self.cfg.exit, "next")
        return body_head, normal_tails


def build_cfg(func: FunctionNode, raise_policy: str = "explicit") -> CFG:
    """Build the CFG of one (async) function definition.

    ``raise_policy`` is ``"explicit"`` (exception edges only from
    ``raise``/``assert``/``await``; plain calls assumed total) or
    ``"calls"`` (every statement containing a call may raise).
    """
    if raise_policy not in ("explicit", "calls"):
        from ...errors import ConfigurationError

        raise ConfigurationError(
            f"raise_policy must be 'explicit' or 'calls', "
            f"got {raise_policy!r}"
        )
    return _Builder(func, raise_policy).build()
