"""Intraprocedural reaching definitions over a :class:`~.cfg.CFG`.

Classic forward may-analysis on the statement-level CFG: a definition
``d`` of name ``x`` at node ``n`` *reaches* node ``m`` when some CFG
path ``n → m`` contains no other definition of ``x``.  Function
parameters are modelled as definitions at the synthetic entry node.

The deep lint rules use this two ways:

* **receiver tracing** — "which assignment(s) can this variable hold
  here?" lets ASYNC001/RES001 type a receiver through reassignment
  (``conn = HTTPConnection(...); conn = pool.get(); conn.request()``
  keeps *both* definitions alive, so rules only fire when **every**
  reaching definition is a flagged type);
* **path sensitivity** — combined with :meth:`CFG.reachable`'s
  avoid-set queries, "is there a path from this definition to exit
  that avoids all resolution events?" is exactly the ASYNC002
  waiter-resolution obligation.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, List, Set, Tuple

from .cfg import CFG

__all__ = ["definitions_in", "ReachingDefinitions"]

#: one definition: (name, defining CFG node index)
Definition = Tuple[str, int]


def _target_names(target: ast.expr) -> List[str]:
    """Plain names bound by an assignment target (tuples unpacked;
    attribute/subscript targets define no local name)."""
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        names: List[str] = []
        for elt in target.elts:
            names.extend(_target_names(elt))
        return names
    if isinstance(target, ast.Starred):
        return _target_names(target.value)
    return []


def definitions_in(stmt: ast.AST) -> List[str]:
    """Local names (re)bound by executing this single statement."""
    names: List[str] = []
    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            names.extend(_target_names(target))
    elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
        names.extend(_target_names(stmt.target))
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        names.extend(_target_names(stmt.target))
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            if item.optional_vars is not None:
                names.extend(_target_names(item.optional_vars))
    elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
        for alias in stmt.names:
            names.append(alias.asname or alias.name.split(".")[0])
    elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                           ast.ClassDef)):
        names.append(stmt.name)
    elif isinstance(stmt, ast.Delete):
        for target in stmt.targets:
            names.extend(_target_names(target))
    return names


def _param_names(func: ast.AST) -> List[str]:
    args = func.args  # type: ignore[attr-defined]
    params = [a.arg for a in args.posonlyargs]
    params += [a.arg for a in args.args]
    if args.vararg is not None:
        params.append(args.vararg.arg)
    params += [a.arg for a in args.kwonlyargs]
    if args.kwarg is not None:
        params.append(args.kwarg.arg)
    return params


class ReachingDefinitions:
    """Worklist fixed point of reaching definitions on one CFG."""

    def __init__(self, cfg: CFG, func: ast.AST) -> None:
        self.cfg = cfg
        self.gen: Dict[int, Set[Definition]] = {}
        self.kill_names: Dict[int, Set[str]] = {}
        self.in_sets: Dict[int, FrozenSet[Definition]] = {}
        self.out_sets: Dict[int, FrozenSet[Definition]] = {}
        self._compute(func)

    def _compute(self, func: ast.AST) -> None:
        cfg = self.cfg
        for node in cfg.nodes:
            if node.stmt is not None:
                names = set(definitions_in(node.stmt))
            elif node.index == cfg.entry:
                names = set(_param_names(func))
            else:
                names = set()
            self.kill_names[node.index] = names
            self.gen[node.index] = {(n, node.index) for n in names}
            self.in_sets[node.index] = frozenset()
            self.out_sets[node.index] = frozenset()

        preds = cfg.predecessors()
        worklist = list(range(len(cfg.nodes)))
        while worklist:
            idx = worklist.pop()
            incoming: Set[Definition] = set()
            for pred, _label in preds.get(idx, []):
                incoming |= self.out_sets[pred]
            self.in_sets[idx] = frozenset(incoming)
            killed = self.kill_names[idx]
            out = {d for d in incoming if d[0] not in killed}
            out |= self.gen[idx]
            frozen = frozenset(out)
            if frozen != self.out_sets[idx]:
                self.out_sets[idx] = frozen
                for succ, _label in self.cfg.succs.get(idx, []):
                    worklist.append(succ)

    # ------------------------------------------------------------------
    def reaching(self, node_index: int, name: str) -> Set[int]:
        """Node indices whose definition of ``name`` reaches the
        *entry* of ``node_index`` (entry index = parameter def)."""
        return {idx for (n, idx) in self.in_sets[node_index] if n == name}

    def definition_nodes(self, name: str) -> Set[int]:
        """Every node defining ``name`` anywhere in the function."""
        return {idx for idx, names in self.kill_names.items()
                if name in names}
