"""Project-wide, import-resolving symbol table.

Walks every parsed module of a lint run and records:

* the module's *local-name → dotted-target* import map, with relative
  imports (``from ..errors import X`` inside ``repro.serving.batcher``)
  resolved against the module's own dotted name;
* every function and method, keyed by qualified name
  (``repro.serving.batcher.MicroBatcher._flush``), with its AST and
  asyncness;
* every class, with the best-effort *types of its instance
  attributes*: an ``__init__`` (or any method) doing
  ``self._lock = threading.Lock()`` records ``_lock ->
  "threading.Lock"`` — the seam fork-safety and async-safety rules use
  to type ``self.<attr>`` receivers without a type checker.

Everything is syntactic and best-effort: a name that cannot be
resolved simply stays unresolved, and rules built on top treat
"unknown" as "no finding" (under-approximation — the self-hosted tree
must lint clean, so false positives are the expensive failure mode).
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "FunctionInfo",
    "ClassInfo",
    "ModuleInfo",
    "ProjectSymbols",
    "module_name_for_path",
    "resolve_dotted",
]


def module_name_for_path(path: str) -> str:
    """Dotted module name for a repo-relative POSIX path.

    ``src/repro/serving/batcher.py`` → ``repro.serving.batcher``;
    ``tests/analysis/test_cfg.py`` → ``tests.analysis.test_cfg``;
    package ``__init__`` files name the package itself.
    """
    parts = path.split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(part for part in parts if part)


@dataclasses.dataclass
class FunctionInfo:
    """One function or method definition."""

    qualname: str
    module: str
    path: str
    name: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    is_async: bool
    class_name: Optional[str] = None

    @property
    def lineno(self) -> int:
        return self.node.lineno


@dataclasses.dataclass
class ClassInfo:
    """One class definition plus inferred instance-attribute types."""

    qualname: str
    module: str
    name: str
    node: ast.ClassDef
    methods: Dict[str, FunctionInfo] = dataclasses.field(default_factory=dict)
    #: ``self.<attr> = <constructor>()`` bindings: attr -> dotted type
    attr_types: Dict[str, str] = dataclasses.field(default_factory=dict)
    #: base-class names as written (``MicroBatcher(Base)`` -> ["Base"])
    bases: List[str] = dataclasses.field(default_factory=list)


@dataclasses.dataclass
class ModuleInfo:
    """One parsed module's contribution to the project table."""

    modname: str
    path: str
    tree: ast.Module
    imports: Dict[str, str]
    functions: Dict[str, FunctionInfo] = dataclasses.field(
        default_factory=dict)
    classes: Dict[str, ClassInfo] = dataclasses.field(default_factory=dict)


def _import_map(tree: ast.Module, modname: str) -> Dict[str, str]:
    """Local-name → dotted-target map, resolving relative imports."""
    mapping: Dict[str, str] = {}
    package_parts = modname.split(".") if modname else []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    mapping[alias.asname] = alias.name
                else:
                    root = alias.name.split(".")[0]
                    mapping[root] = root
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                # `from ..errors import X` in a.b.c: strip `level`
                # trailing components from the *package* path.
                base_parts = package_parts[: len(package_parts) - node.level]
                base = ".".join(base_parts)
                prefix = f"{base}.{node.module}" if node.module else base
            else:
                prefix = node.module or ""
            if not prefix:
                continue
            for alias in node.names:
                local = alias.asname or alias.name
                mapping[local] = f"{prefix}.{alias.name}"
    return mapping


def resolve_dotted(node: ast.AST, imports: Dict[str, str]) -> Optional[str]:
    """Dotted name of an attribute chain through the import map."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name) or node.id not in imports:
        return None
    parts.append(imports[node.id])
    return ".".join(reversed(parts))


#: constructor/factory dotted names whose results we track as
#: attribute/local types (concurrency-relevant resources)
TRACKED_CONSTRUCTORS = frozenset({
    "threading.Lock", "threading.RLock", "threading.Semaphore",
    "threading.BoundedSemaphore", "threading.Condition",
    "threading.Event", "threading.Thread", "threading.Barrier",
    "queue.Queue", "queue.SimpleQueue", "queue.LifoQueue",
    "queue.PriorityQueue",
    "socket.socket", "socket.create_connection",
    "http.client.HTTPConnection", "http.client.HTTPSConnection",
    "asyncio.get_event_loop", "asyncio.get_running_loop",
    "asyncio.new_event_loop",
    "concurrent.futures.ThreadPoolExecutor",
    "concurrent.futures.ProcessPoolExecutor",
})


def _constructed_type(
    value: ast.expr, imports: Dict[str, str]
) -> Optional[str]:
    """Dotted type when ``value`` is a call to a tracked constructor
    (or to a project class — returned as its dotted name)."""
    if not isinstance(value, ast.Call):
        return None
    dotted = resolve_dotted(value.func, imports)
    if dotted is None and isinstance(value.func, ast.Name):
        dotted = value.func.id  # same-module class, qualified later
    if dotted is None:
        return None
    return dotted


class ProjectSymbols:
    """The cross-module symbol table of one lint run."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: bare name → every FunctionInfo sharing it (unique-name
        #: fallback resolution for untyped attribute calls)
        self.by_name: Dict[str, List[FunctionInfo]] = {}

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls, modules: Sequence[Tuple[str, ast.Module]]
    ) -> "ProjectSymbols":
        """``modules`` is ``(repo-relative-posix-path, tree)`` pairs."""
        table = cls()
        for path, tree in modules:
            table._add_module(path, tree)
        table._qualify_same_module_types()
        return table

    def _add_module(self, path: str, tree: ast.Module) -> None:
        modname = module_name_for_path(path)
        imports = _import_map(tree, modname)
        info = ModuleInfo(modname=modname, path=path, tree=tree,
                          imports=imports)
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(info, node, class_name=None)
            elif isinstance(node, ast.ClassDef):
                self._add_class(info, node)
        self.modules[modname] = info

    def _add_function(
        self,
        module: ModuleInfo,
        node: ast.AST,
        class_name: Optional[str],
        class_info: Optional[ClassInfo] = None,
    ) -> None:
        name = node.name  # type: ignore[attr-defined]
        qual = (f"{module.modname}.{class_name}.{name}" if class_name
                else f"{module.modname}.{name}")
        fn = FunctionInfo(
            qualname=qual,
            module=module.modname,
            path=module.path,
            name=name,
            node=node,
            is_async=isinstance(node, ast.AsyncFunctionDef),
            class_name=class_name,
        )
        module.functions[qual] = fn
        self.functions[qual] = fn
        self.by_name.setdefault(name, []).append(fn)
        if class_info is not None:
            class_info.methods[name] = fn

    def _add_class(self, module: ModuleInfo, node: ast.ClassDef) -> None:
        qual = f"{module.modname}.{node.name}"
        info = ClassInfo(
            qualname=qual,
            module=module.modname,
            name=node.name,
            node=node,
            bases=[base.id for base in node.bases
                   if isinstance(base, ast.Name)],
        )
        for child in node.body:
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(module, child, class_name=node.name,
                                   class_info=info)
                self._scan_attr_types(info, child, module.imports)
        module.classes[qual] = info
        self.classes[qual] = info

    @staticmethod
    def _scan_attr_types(
        info: ClassInfo, method: ast.AST, imports: Dict[str, str]
    ) -> None:
        for node in ast.walk(method):
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
                value = node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets = [node.target]
                value = node.value
            else:
                continue
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    dotted = _constructed_type(value, imports)
                    if dotted is not None:
                        info.attr_types.setdefault(target.attr, dotted)

    def _qualify_same_module_types(self) -> None:
        """Second pass: attr types recorded as bare same-module class
        names get qualified to the class's dotted name."""
        for module in self.modules.values():
            local_classes = {
                cls.name: cls.qualname for cls in module.classes.values()
            }
            for cls in module.classes.values():
                for attr, dotted in list(cls.attr_types.items()):
                    if dotted in local_classes:
                        cls.attr_types[attr] = local_classes[dotted]

    # ------------------------------------------------------------------
    def module_for_path(self, path: str) -> Optional[ModuleInfo]:
        return self.modules.get(module_name_for_path(path))

    def unique_function(self, name: str) -> Optional[FunctionInfo]:
        """The single project function/method with this bare name, or
        ``None`` when the name is absent or ambiguous."""
        candidates = self.by_name.get(name, [])
        return candidates[0] if len(candidates) == 1 else None

    def class_of(self, fn: FunctionInfo) -> Optional[ClassInfo]:
        if fn.class_name is None:
            return None
        return self.classes.get(f"{fn.module}.{fn.class_name}")
