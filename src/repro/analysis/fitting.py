"""Curve fitting for the Fig. 5 characterisation.

The paper fits three curves through the (input-strength, t_out) samples:
Curve 1 over the linear-regime points and Curves 2–3 over fixed high
total conductances.  Least-squares linear and polynomial fits with a
goodness-of-fit metric cover all three.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..errors import ShapeError

__all__ = ["LinearFit", "fit_linear", "fit_polynomial", "r_squared"]


@dataclasses.dataclass(frozen=True)
class LinearFit:
    """Result of a least-squares line fit ``y ≈ slope·x + intercept``."""

    slope: float
    intercept: float
    r2: float

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Evaluate the fitted line."""
        return self.slope * np.asarray(x, dtype=float) + self.intercept


def _check_xy(x: np.ndarray, y: np.ndarray) -> None:
    if x.shape != y.shape or x.ndim != 1:
        raise ShapeError(f"x and y must be equal-length 1-D, got {x.shape}, {y.shape}")
    if x.size < 2:
        raise ShapeError("need at least two points to fit")


def r_squared(y: np.ndarray, y_hat: np.ndarray) -> float:
    """Coefficient of determination of predictions ``y_hat``."""
    y = np.asarray(y, dtype=float)
    y_hat = np.asarray(y_hat, dtype=float)
    ss_res = float(((y - y_hat) ** 2).sum())
    ss_tot = float(((y - y.mean()) ** 2).sum())
    if ss_tot == 0:
        return 1.0 if ss_res == 0 else 0.0
    return 1.0 - ss_res / ss_tot


def fit_linear(
    x: np.ndarray, y: np.ndarray, through_origin: bool = False
) -> LinearFit:
    """Least-squares line fit.

    ``through_origin=True`` constrains the intercept to 0 — the natural
    model for the Fig. 5 transfer, which passes through (0, 0).
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    _check_xy(x, y)
    if through_origin:
        denom = float((x * x).sum())
        if denom == 0:
            raise ShapeError("cannot fit through origin with all-zero x")
        slope = float((x * y).sum() / denom)
        intercept = 0.0
    else:
        slope, intercept = (float(v) for v in np.polyfit(x, y, 1))
    fit = LinearFit(slope=slope, intercept=intercept, r2=0.0)
    return LinearFit(slope=slope, intercept=intercept,
                     r2=r_squared(y, fit.predict(x)))


def fit_polynomial(x: np.ndarray, y: np.ndarray, degree: int) -> np.ndarray:
    """Least-squares polynomial coefficients (highest power first)."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    _check_xy(x, y)
    if degree < 1 or degree >= x.size:
        raise ShapeError(f"degree must be in [1, {x.size - 1}], got {degree}")
    return np.polyfit(x, y, degree)
