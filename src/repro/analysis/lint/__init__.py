"""`repro lint` — AST-based reproducibility invariant checker.

The simulator's headline guarantees (seeded resumable fault campaigns,
atomic artifact persistence, datasheet-style SI parameterization,
tolerance-aware float testing, a single error taxonomy) rest on coding
conventions the interpreter never enforces.  This subpackage makes them
machine-checked: a small rule registry (:mod:`.rules`), a file walker
with baseline suppression (:mod:`.runner`), and a ``repro lint`` CLI
subcommand wired into CI.

Rules shipped (see ``docs/static_analysis.md`` for the catalogue):

========  ==============================================================
RNG001    no legacy ``np.random.*`` global-API draws; ``default_rng``
          must receive an explicit seed
IO001     persistence outside ``repro/store/`` must go through the
          :class:`~repro.store.ArtifactStore` / atomic helpers
UNIT001   physical constants use ``repro.units`` prefix constants, not
          bare ``100e-9``-style literals
TEST001   no ``==``/``!=`` against float expressions in tests
ERR001    ``raise`` in library code uses the :mod:`repro.errors`
          taxonomy, not bare builtins
========  ==============================================================
"""

from __future__ import annotations

from .findings import Finding
from .rules import RULES, Rule, check_source, get_rule
from .runner import (
    LintReport,
    ModuleSource,
    lint_file,
    lint_paths,
    load_baseline,
    render_json,
    render_text,
    run_lint,
    write_baseline,
)

__all__ = [
    "Finding",
    "LintReport",
    "ModuleSource",
    "RULES",
    "Rule",
    "check_source",
    "get_rule",
    "lint_file",
    "lint_paths",
    "load_baseline",
    "render_json",
    "render_text",
    "run_lint",
    "write_baseline",
]
