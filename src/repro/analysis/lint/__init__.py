"""`repro lint` — AST-based reproducibility invariant checker.

The simulator's headline guarantees (seeded resumable fault campaigns,
atomic artifact persistence, datasheet-style SI parameterization,
tolerance-aware float testing, a single error taxonomy) rest on coding
conventions the interpreter never enforces.  This subpackage makes them
machine-checked: a small rule registry (:mod:`.rules`), a file walker
with baseline suppression (:mod:`.runner`), and a ``repro lint`` CLI
subcommand wired into CI.

Rules shipped (see ``docs/static_analysis.md`` for the catalogue):

========  ==============================================================
RNG001    no legacy ``np.random.*`` global-API draws; ``default_rng``
          must receive an explicit seed
IO001     persistence outside ``repro/store/`` must go through the
          :class:`~repro.store.ArtifactStore` / atomic helpers
UNIT001   physical constants use ``repro.units`` prefix constants, not
          bare ``100e-9``-style literals
TEST001   no ``==``/``!=`` against float expressions in tests
ERR001    ``raise`` in library code uses the :mod:`repro.errors`
          taxonomy, not bare builtins
========  ==============================================================

Project-wide dataflow rules (CFG + call graph, :mod:`.deep_rules`):

========  ==============================================================
ASYNC001  blocking calls (``time.sleep``, subprocess, lock waits, sync
          sockets) reachable from ``async def`` via the call graph
ASYNC002  every waiter (``asyncio.Future``) handed to the batcher /
          daemon is resolved on all CFG paths, exception edges included
CONC001   fork-unsafe captures (locks, sockets, loops, executors)
          submitted to process pools
EXC002    broad ``except`` that swallows without re-raising, wrapping,
          failing a waiter, or storing the exception
RES001    files/locks/sockets acquired without ``with``, try/finally
          release, or ownership transfer
========  ==============================================================
"""

from __future__ import annotations

from .config import SYNC_ONLY_MODULES, filter_exempt, parse_exemptions
from .deep_rules import DEEP_RULE_IDS, ProjectContext
from .findings import Finding
from .rules import RULES, Rule, check_source, get_rule
from .runner import (
    LintReport,
    ModuleSource,
    lint_file,
    lint_paths,
    load_baseline,
    render_json,
    render_sarif,
    render_text,
    run_lint,
    write_baseline,
)

__all__ = [
    "DEEP_RULE_IDS",
    "Finding",
    "LintReport",
    "ModuleSource",
    "ProjectContext",
    "RULES",
    "Rule",
    "SYNC_ONLY_MODULES",
    "check_source",
    "filter_exempt",
    "get_rule",
    "lint_file",
    "lint_paths",
    "load_baseline",
    "parse_exemptions",
    "render_json",
    "render_sarif",
    "render_text",
    "run_lint",
    "write_baseline",
]
