"""Analyzer configuration: sync-only modules and exemption comments.

Two escape hatches keep the deep rules honest instead of noisy:

* **sync-only modules** — modules that by design never run on an
  asyncio event loop.  ASYNC001's call-graph traversal does not enter
  them, so their deliberate blocking calls (the sync HTTP client's
  retry-backoff ``time.sleep``) are in scope *explicitly*, not by the
  accident of being unreachable today.
* **exemption comments** — ``# lint: exempt RULE001 <reason>`` on the
  finding's line (or the line directly above) suppresses that rule
  there.  The reason is mandatory by convention and reviewed like
  code; a bare baseline entry hides a finding, an exemption comment
  justifies it in place.

Both are data, not policy — the runner and the rules import from here
so the full configuration surface of the analyzer is one small module.
"""

from __future__ import annotations

import re
from typing import Dict, List, Sequence, Set, Tuple

from .findings import Finding

__all__ = [
    "SYNC_ONLY_MODULES",
    "parse_exemptions",
    "filter_exempt",
    "is_sync_only",
]

#: repo-relative POSIX paths of modules that never run on an event
#: loop: ASYNC001 neither roots in them nor traverses into them.
SYNC_ONLY_MODULES: Tuple[str, ...] = (
    "src/repro/serving/client.py",  # sync HTTP client; sleeps on retry
)

#: ``# lint: exempt EXC002 handler converts to HTTP 500``
_EXEMPT_RE = re.compile(
    r"#\s*lint:\s*exempt\s+(?P<rules>[A-Z]+[0-9]+(?:\s*,\s*[A-Z]+[0-9]+)*)"
)


def is_sync_only(path: str) -> bool:
    """Whether ``path`` (repo-relative POSIX) is declared sync-only."""
    return path in SYNC_ONLY_MODULES


def parse_exemptions(text: str) -> Dict[int, Set[str]]:
    """Map line number → rule ids exempted there.

    A directive on line *n* covers findings on line *n* (inline
    comment) and line *n + 1* (standalone comment above the code).
    """
    exempt: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        match = _EXEMPT_RE.search(line)
        if match is None:
            continue
        rules = {r.strip() for r in match.group("rules").split(",")}
        for covered in (lineno, lineno + 1):
            exempt.setdefault(covered, set()).update(rules)
    return exempt


def filter_exempt(
    findings: Sequence[Finding], text: str
) -> Tuple[List[Finding], int]:
    """Drop findings covered by exemption comments in ``text``.

    Returns ``(kept, dropped_count)``.
    """
    exempt = parse_exemptions(text)
    if not exempt:
        return list(findings), 0
    kept = [
        f for f in findings
        if f.rule not in exempt.get(f.line, ())
    ]
    return kept, len(findings) - len(kept)
