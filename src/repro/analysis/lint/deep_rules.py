"""Project-wide dataflow rules: async-safety, waiter-resolution,
fork-safety, exception hygiene, resource lifetimes.

Unlike the single-module rules in :mod:`.rules`, these need a
:class:`ProjectContext` — the symbol table, call graph and per-function
CFGs of *every* module in the run — because their invariants span
function and module boundaries (a blocking call three frames below an
``async def`` is still on the event loop).

All five rules under-approximate: an unresolvable receiver, an
ambiguous name, or an escaping value produces *no* finding.  The
self-hosted tree must lint clean with an empty baseline, so a false
positive costs an exemption comment forever; a false negative costs
one missed bug until the next rule refinement.  See
``docs/static_analysis.md`` for each rule's exact model.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..dataflow.callgraph import CallGraph, CallSite, build_call_graph
from ..dataflow.cfg import CFG, build_cfg
from ..dataflow.reaching import ReachingDefinitions
from ..dataflow.symbols import (
    FunctionInfo,
    ProjectSymbols,
    resolve_dotted,
)
from .config import is_sync_only
from .findings import Finding
from .rules import ModuleSource, Rule, register

__all__ = ["ProjectContext", "DEEP_RULE_IDS"]

DEEP_RULE_IDS = ("ASYNC001", "ASYNC002", "CONC001", "EXC002", "RES001")


# ----------------------------------------------------------------------
# shared AST utilities
def _walk_no_defs(node: ast.AST) -> Iterator[ast.AST]:
    """Subtree walk that does not descend into nested function/class
    bodies (their statements execute in another frame, later)."""
    stack: List[ast.AST] = [node]
    while stack:
        current = stack.pop()
        yield current
        for child in ast.iter_child_nodes(current):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda, ast.ClassDef)):
                continue
            stack.append(child)


def _name_args(call: ast.Call) -> List[str]:
    """Plain-``Name`` arguments of a call (positional and keyword)."""
    names = [a.id for a in call.args if isinstance(a, ast.Name)]
    names += [kw.value.id for kw in call.keywords
              if isinstance(kw.value, ast.Name)]
    return names


def _is_catch_all(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    types = (handler.type.elts if isinstance(handler.type, ast.Tuple)
             else [handler.type])
    for t in types:
        name = t.id if isinstance(t, ast.Name) else (
            t.attr if isinstance(t, ast.Attribute) else "")
        if name in ("Exception", "BaseException"):
            return True
    return False


def _target_names(target: ast.expr) -> List[str]:
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        out: List[str] = []
        for elt in target.elts:
            out.extend(_target_names(elt))
        return out
    if isinstance(target, ast.Starred):
        return _target_names(target.value)
    return []


def _param_names(func: ast.AST) -> List[str]:
    args = func.args  # type: ignore[attr-defined]
    names = [a.arg for a in args.posonlyargs] + [a.arg for a in args.args]
    if args.vararg is not None:
        names.append(args.vararg.arg)
    names += [a.arg for a in args.kwonlyargs]
    if args.kwarg is not None:
        names.append(args.kwarg.arg)
    return names


# ----------------------------------------------------------------------
class ProjectContext:
    """Symbols + call graph + memoized per-function analyses."""

    def __init__(self, modules: Sequence[ModuleSource]) -> None:
        self.modules = list(modules)
        self.symbols: ProjectSymbols = ProjectSymbols.build(
            [(m.path, m.tree) for m in self.modules]
        )
        self.graph: CallGraph = build_call_graph(self.symbols)
        self._cfgs: Dict[str, CFG] = {}
        self._waiters: Dict[str, "_WaiterAnalysis"] = {}
        self._building: Set[str] = set()
        self._async_reach: Optional[Dict[str, str]] = None

    def cfg(self, qualname: str) -> CFG:
        if qualname not in self._cfgs:
            fn = self.symbols.functions[qualname]
            self._cfgs[qualname] = build_cfg(fn.node)
        return self._cfgs[qualname]

    def waiter(self, qualname: str) -> "_WaiterAnalysis":
        if qualname not in self._waiters:
            fn = self.symbols.functions[qualname]
            self._building.add(qualname)
            try:
                self._waiters[qualname] = _WaiterAnalysis(fn, self)
            finally:
                self._building.discard(qualname)
        return self._waiters[qualname]

    def resolves(self, qualname: str, param: str) -> bool:
        """Summary: does ``qualname`` resolve the waiter(s) in ``param``
        on every path?  Cycles in the call graph answer ``False``
        (under-approximate)."""
        if qualname in self._building:
            return False
        if qualname not in self.symbols.functions:
            return False
        return self.waiter(qualname).param_resolved(param)

    def async_reachable(self) -> Dict[str, str]:
        """Qualname → async root it is reachable from (sync-only
        modules are neither roots nor traversed)."""
        if self._async_reach is None:
            via: Dict[str, str] = {}
            frontier: List[Tuple[str, str]] = []
            for qual, fn in self.symbols.functions.items():
                if fn.is_async and not is_sync_only(fn.path):
                    frontier.append((qual, qual))
            while frontier:
                qual, root = frontier.pop()
                if qual in via:
                    continue
                fn = self.symbols.functions.get(qual)
                if fn is None or is_sync_only(fn.path):
                    continue
                via[qual] = root
                for callee in self.graph.edges_from(qual):
                    frontier.append((callee, root))
            self._async_reach = via
        return self._async_reach


# ----------------------------------------------------------------------
# ASYNC002 — waiter resolution
_RESOLVE_METHODS = frozenset({"set_result", "set_exception"})


class _WaiterAnalysis:
    """Per-function waiter-resolution facts over the CFG.

    * **trigger events** create the obligation that a root (a local or
      parameter holding waiters) must be resolved on every path:
      ``r.set_result/…``, ``r.future.set_result/set_exception/cancel``,
      a call to a function whose summary resolves the argument, or a
      ``for``-loop over ``r`` whose body resolves the loop variable
      (the loop statement itself then counts as resolving ``r`` — a
      zero-iteration pass over an empty batch resolves everything in
      it, vacuously).
    * **blessing events** end the obligation along one path without
      counting as resolution: the root escaping (returned, yielded,
      stored into a container, passed to any call) or a bare
      ``r.cancel()``.
    * **guard edges** bless one branch of a conditional: the empty
      branch of ``if not r:`` / ``if r:`` / ``while r:``, the
      already-resolved branch of ``if r.future.done():``, and the
      exhausted edge of the ``for`` that defines the root.

    A root with at least one trigger *leaks* when some CFG path from
    one of its definitions reaches ``exit`` or ``raise-exit`` without
    passing any event.  ``self.<attr>`` receivers are never roots:
    attribute-held waiters belong to the object's lifecycle (the
    batcher's ``abort()``), not to any single function.
    """

    def __init__(self, fn: FunctionInfo, project: ProjectContext) -> None:
        self.fn = fn
        self.project = project
        self.cfg = project.cfg(fn.qualname)
        self.rd = ReachingDefinitions(self.cfg, fn.node)
        self.params = set(_param_names(fn.node))
        self._sites = {
            id(s.call): s for s in project.graph.sites.get(fn.qualname, [])
        }
        #: node index → names with a trigger / blessing event there
        self.triggers: Dict[int, Set[str]] = {}
        self.blessings: Dict[int, Set[str]] = {}
        #: (node index, edge label) → names blessed along that edge
        self.edge_bless: Dict[Tuple[int, str], Set[str]] = {}
        self._param_memo: Dict[str, bool] = {}
        self._collect()

    # -- event collection ----------------------------------------------
    def _collect(self) -> None:
        stmt_cache: Dict[int, Tuple[Set[str], Set[str]]] = {}
        for node in self.cfg.statement_nodes():
            stmt = node.stmt
            assert stmt is not None
            key = id(stmt)
            if key not in stmt_cache:
                stmt_cache[key] = self._scan_stmt(stmt)
            trig, bless = stmt_cache[key]
            if trig:
                self.triggers[node.index] = trig
            if bless:
                self.blessings[node.index] = bless
            self._guard_edges(node.index, stmt)

    def _scan_stmt(self, stmt: ast.AST) -> Tuple[Set[str], Set[str]]:
        """Events contributed by one CFG statement node.  Compound
        statements contribute only their header expression — their
        bodies are separate CFG nodes — except ``for``, which gets the
        loop-promotion described in the class docstring."""
        trig: Set[str] = set()
        bless: Set[str] = set()
        for expr in self._header_exprs(stmt):
            t, b = self._scan_expr(expr)
            trig |= t
            bless |= b
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._promote_loop(stmt, trig)
        if isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Name):
            # container insertion transfers ownership; a plain
            # `self.attr = r` alias does not (the batcher keeps
            # resolving `batch` after `self._inflight = batch`)
            if any(isinstance(t, ast.Subscript) for t in stmt.targets):
                bless.add(stmt.value.id)
        if isinstance(stmt, ast.Return) and stmt.value is not None:
            for node in ast.walk(stmt.value):
                if isinstance(node, ast.Name):
                    bless.add(node.id)
        return trig, bless

    @staticmethod
    def _header_exprs(stmt: ast.AST) -> List[ast.expr]:
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return [stmt.iter]
        if isinstance(stmt, (ast.While, ast.If)):
            return [stmt.test]
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return [item.context_expr for item in stmt.items]
        if isinstance(stmt, (ast.Try, ast.Raise, ast.Return,
                             ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return []
        return [stmt]  # type: ignore[list-item]

    def _scan_expr(self, expr: ast.AST) -> Tuple[Set[str], Set[str]]:
        trig: Set[str] = set()
        bless: Set[str] = set()
        for node in _walk_no_defs(expr):
            if not isinstance(node, ast.Call):
                continue
            direct = self._direct_event(node)
            if direct is not None:
                name, is_trigger = direct
                (trig if is_trigger else bless).add(name)
                continue
            site = self._sites.get(id(node))
            arg_names = _name_args(node)
            if site is not None and site.target is not None:
                resolved = self._resolver_args(site, node)
                trig |= resolved
                bless |= set(arg_names) - resolved
            else:
                # escape: handed to a call we cannot see inside
                bless |= set(arg_names)
        return trig, bless

    @staticmethod
    def _direct_event(call: ast.Call) -> Optional[Tuple[str, bool]]:
        func = call.func
        if not isinstance(func, ast.Attribute):
            return None
        if func.attr not in _RESOLVE_METHODS and func.attr != "cancel":
            return None
        recv = func.value
        if isinstance(recv, ast.Name):
            # r.set_result(...) triggers; bare r.cancel() only blesses
            # (cancelling is the canceller's business, not resolution)
            return recv.id, func.attr in _RESOLVE_METHODS
        if (isinstance(recv, ast.Attribute) and recv.attr == "future"
                and isinstance(recv.value, ast.Name)):
            return recv.value.id, True  # r.future.cancel() resolves too
        return None

    def _resolver_args(self, site: CallSite, call: ast.Call) -> Set[str]:
        """Name arguments resolved by the callee per its summary."""
        target = self.project.symbols.functions.get(site.target or "")
        if target is None:
            return set()
        params = _param_names(target.node)
        if target.class_name is not None and isinstance(
            call.func, ast.Attribute
        ):
            params = params[1:]  # bound call: drop self
        resolved: Set[str] = set()
        for idx, arg in enumerate(call.args):
            if isinstance(arg, ast.Name) and idx < len(params):
                if self.project.resolves(target.qualname, params[idx]):
                    resolved.add(arg.id)
        for kw in call.keywords:
            if isinstance(kw.value, ast.Name) and kw.arg in params:
                if self.project.resolves(target.qualname, kw.arg):
                    resolved.add(kw.value.id)
        return resolved

    def _promote_loop(self, stmt: ast.AST, trig: Set[str]) -> None:
        iter_names = {
            n.id for n in ast.walk(stmt.iter)  # type: ignore[attr-defined]
            if isinstance(n, ast.Name)
        }
        if not iter_names:
            return
        loop_vars = set(_target_names(stmt.target))  # type: ignore
        body_trig: Set[str] = set()
        for body_stmt in stmt.body:  # type: ignore[attr-defined]
            for node in _walk_no_defs(body_stmt):
                if isinstance(node, ast.Call):
                    direct = self._direct_event(node)
                    if direct is not None and direct[1]:
                        body_trig.add(direct[0])
                    else:
                        site = self._sites.get(id(node))
                        if site is not None and site.target is not None:
                            body_trig |= self._resolver_args(site, node)
        if body_trig & loop_vars:
            # Only parameter roots: `zip(batch, rows)` mentions both,
            # but an obligation for the data list `rows` would be
            # spurious.  Locals get their obligations from direct or
            # resolver-call triggers; `self` is never a root (attribute
            # lifecycles belong to the object, not one function).
            trig |= (iter_names & self.params) - {"self", "cls"}

    def _guard_edges(self, index: int, stmt: ast.AST) -> None:
        if not isinstance(stmt, (ast.If, ast.While)):
            return
        test = stmt.test
        negated = False
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            test = test.operand
            negated = True
        name: Optional[str] = None
        taken_when_true = False  # blessing on which edge if not negated
        if isinstance(test, ast.Name):
            # `if r:` → the false branch sees an empty r
            name, taken_when_true = test.id, False
        elif (isinstance(test, ast.Call) and not test.args
                and isinstance(test.func, ast.Attribute)
                and test.func.attr == "done"):
            recv = test.func.value
            if isinstance(recv, ast.Name):
                name, taken_when_true = recv.id, True
            elif (isinstance(recv, ast.Attribute) and recv.attr == "future"
                    and isinstance(recv.value, ast.Name)):
                name, taken_when_true = recv.value.id, True
        if name is None:
            return
        label = "true" if (taken_when_true != negated) else "false"
        self.edge_bless.setdefault((index, label), set()).add(name)

    # -- path queries ---------------------------------------------------
    def _roots(self) -> Set[str]:
        roots: Set[str] = set()
        for names in self.triggers.values():
            roots |= names
        locals_and_params = self.params | {
            name
            for names in self.rd.kill_names.values() for name in names
        }
        return roots & locals_and_params

    def _leaks_from(self, start: int, root: str) -> bool:
        cfg = self.cfg
        stop_defs = {
            idx for idx, names in self.rd.kill_names.items()
            if root in names and idx != start
        }
        # the `for` that binds the root: its exhausted edge carries no
        # live waiter
        start_node = cfg.nodes[start]
        for_exhausted = (
            isinstance(start_node.stmt, (ast.For, ast.AsyncFor))
            and root in _target_names(start_node.stmt.target)
        )
        visited = {start}
        stack = [start]
        while stack:
            current = stack.pop()
            for succ, label in cfg.succs.get(current, []):
                if root in self.edge_bless.get((current, label), ()):
                    continue
                if (for_exhausted and current == start
                        and label == "false"):
                    continue
                if succ in visited:
                    continue
                if succ in (cfg.exit, cfg.raise_exit):
                    return True
                if (root in self.triggers.get(succ, ())
                        or root in self.blessings.get(succ, ())
                        or succ in stop_defs):
                    continue
                visited.add(succ)
                stack.append(succ)
        return False

    def param_resolved(self, param: str) -> bool:
        if param not in self._param_memo:
            has_trigger = any(param in names
                              for names in self.triggers.values())
            self._param_memo[param] = (
                param in self.params
                and has_trigger
                and not self._leaks_from(self.cfg.entry, param)
            )
        return self._param_memo[param]

    def violations(self) -> List[Tuple[str, int]]:
        """``(root, lineno)`` pairs with an unresolved path."""
        out: List[Tuple[str, int]] = []
        for root in sorted(self._roots()):
            for def_node in sorted(self.rd.definition_nodes(root)):
                if self._leaks_from(def_node, root):
                    node = self.cfg.nodes[def_node]
                    lineno = (node.stmt.lineno if node.stmt is not None
                              else self.fn.lineno)
                    out.append((root, lineno))
                    break  # one finding per root
        return out


# ----------------------------------------------------------------------
class DeepRule(Rule):
    """Base for rules that need the :class:`ProjectContext`."""

    needs_project = True

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        raise NotImplementedError(
            f"{self.id} needs a project context; use check_project()"
        )

    def check_project(
        self, module: ModuleSource, project: ProjectContext
    ) -> Iterator[Finding]:
        raise NotImplementedError

    def _functions_of(self, module: ModuleSource,
                      project: ProjectContext) -> List[FunctionInfo]:
        info = project.symbols.module_for_path(module.path)
        if info is None:
            return []
        return list(info.functions.values())


_LOCK_TYPES = frozenset({
    "threading.Lock", "threading.RLock", "threading.Semaphore",
    "threading.BoundedSemaphore", "threading.Condition",
})

_BLOCKING_EXTERNAL = frozenset({
    "time.sleep", "os.system", "os.wait", "os.popen",
    "urllib.request.urlopen", "socket.create_connection",
})
_BLOCKING_PREFIXES = ("subprocess.",)

_BLOCKING_METHODS = frozenset(
    [(lock, "acquire") for lock in _LOCK_TYPES]
    + [("threading.Condition", "wait"), ("threading.Condition", "wait_for"),
       ("threading.Event", "wait"), ("threading.Thread", "join"),
       ("threading.Barrier", "wait")]
    + [(q, m) for q in ("queue.Queue", "queue.SimpleQueue",
                        "queue.LifoQueue", "queue.PriorityQueue")
       for m in ("get", "put", "join")]
    + [("socket.socket", m) for m in
       ("recv", "recv_into", "recvfrom", "send", "sendall", "connect",
        "accept")]
    + [(c, m) for c in ("http.client.HTTPConnection",
                        "http.client.HTTPSConnection")
       for m in ("request", "getresponse", "connect")]
)


@register
class AsyncBlockingCallRule(DeepRule):
    id = "ASYNC001"
    title = "blocking call reachable from async def"
    rationale = (
        "A blocking call anywhere under an `async def` in the call "
        "graph stalls the event loop: every queued request, heartbeat "
        "and timeout shares that loop. Blocking work belongs behind "
        "run_in_executor (which this rule deliberately does not "
        "traverse into). Modules listed sync-only in "
        "analysis/lint/config.py are out of scope by declaration."
    )
    scopes = ("src",)

    def check_project(
        self, module: ModuleSource, project: ProjectContext
    ) -> Iterator[Finding]:
        if is_sync_only(module.path):
            return
        reach = project.async_reachable()
        for fn in self._functions_of(module, project):
            root = reach.get(fn.qualname)
            if root is None:
                continue
            suffix = ("" if root == fn.qualname
                      else f" (reachable from async {root})")
            for site in project.graph.sites.get(fn.qualname, []):
                blocking = self._blocking(site)
                if blocking is not None:
                    yield module.finding(
                        self.id, site.call,
                        f"blocking call {blocking} on the event "
                        f"loop in {fn.qualname}{suffix}",
                    )
            yield from self._sync_lock_withs(module, project, fn, suffix)

    @staticmethod
    def _blocking(site: CallSite) -> Optional[str]:
        if site.external is not None:
            if site.external in _BLOCKING_EXTERNAL:
                return site.external
            if site.external.startswith(_BLOCKING_PREFIXES):
                return site.external
        if site.method is not None:
            rtype, name = site.method
            if rtype is not None and (rtype, name) in _BLOCKING_METHODS:
                return f"{rtype}.{name}"
        return None

    def _sync_lock_withs(
        self,
        module: ModuleSource,
        project: ProjectContext,
        fn: FunctionInfo,
        suffix: str,
    ) -> Iterator[Finding]:
        cls = project.symbols.class_of(fn)
        local_types = project.graph.local_types.get(fn.qualname, {})
        for stmt in fn.node.body:  # type: ignore[attr-defined]
            for node in _walk_no_defs(stmt):
                if not isinstance(node, ast.With):
                    continue
                for item in node.items:
                    rtype = self._expr_type(item.context_expr, cls,
                                            local_types, project, fn)
                    if rtype in _LOCK_TYPES:
                        yield module.finding(
                            self.id, node,
                            f"`with` on {rtype} blocks the event loop "
                            f"in {fn.qualname}{suffix}",
                        )

    @staticmethod
    def _expr_type(expr, cls, local_types, project, fn):
        if isinstance(expr, ast.Name):
            return local_types.get(expr.id)
        if (isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id == "self" and cls is not None):
            return cls.attr_types.get(expr.attr)
        if isinstance(expr, ast.Call):
            info = project.symbols.modules.get(fn.module)
            imports = info.imports if info is not None else {}
            return resolve_dotted(expr.func, imports)
        return None


@register
class WaiterResolutionRule(DeepRule):
    id = "ASYNC002"
    title = "waiter may be left unresolved on some path"
    rationale = (
        "Every asyncio.Future handed to the batcher or daemon must be "
        "resolved (set_result / set_exception / cancel) on every CFG "
        "path, including exception edges — an abandoned waiter hangs "
        "its client until the socket timeout. This machine-checks the "
        "serving layer's waiter contract (docs/resilience.md)."
    )
    scopes = ("src",)

    def check_project(
        self, module: ModuleSource, project: ProjectContext
    ) -> Iterator[Finding]:
        for fn in self._functions_of(module, project):
            analysis = project.waiter(fn.qualname)
            for root, lineno in analysis.violations():
                anchor = ast.Name(id=root)
                anchor.lineno = lineno
                anchor.col_offset = 0
                yield module.finding(
                    self.id, anchor,
                    f"waiter(s) in {root!r} may leave "
                    f"{fn.qualname} unresolved on some path "
                    "(including exception edges)",
                )


_UNPICKLABLE_TYPES = _LOCK_TYPES | frozenset({
    "threading.Event", "threading.Thread", "threading.Barrier",
    "queue.Queue", "queue.SimpleQueue", "queue.LifoQueue",
    "queue.PriorityQueue",
    "socket.socket", "socket.create_connection",
    "http.client.HTTPConnection", "http.client.HTTPSConnection",
    "asyncio.get_event_loop", "asyncio.get_running_loop",
    "asyncio.new_event_loop",
    "concurrent.futures.ThreadPoolExecutor",
    "concurrent.futures.ProcessPoolExecutor",
})


@register
class ForkSafetyRule(DeepRule):
    id = "CONC001"
    title = "fork-unsafe capture submitted to a process pool"
    rationale = (
        "Callables submitted to ProcessPoolExecutor / ParallelRunner "
        "are pickled into worker processes. A lambda, nested function "
        "or bound method capturing a lock, socket, event loop or "
        "executor either fails to pickle or — worse — resurrects a "
        "dead handle in the child. Submit module-level functions and "
        "plain data, as runtime/runner.py does."
    )
    scopes = ("src",)

    def check_project(
        self, module: ModuleSource, project: ProjectContext
    ) -> Iterator[Finding]:
        for fn in self._functions_of(module, project):
            local_types = project.graph.local_types.get(fn.qualname, {})
            cls = project.symbols.class_of(fn)
            nested = {
                n.name: n
                for stmt in fn.node.body  # type: ignore[attr-defined]
                for n in _walk_no_defs(stmt)
                if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            for site in project.graph.sites.get(fn.qualname, []):
                for callable_expr in self._submitted(site, project,
                                                     local_types):
                    capture = self._bad_capture(
                        callable_expr, local_types, cls, project, nested)
                    if capture is not None:
                        yield module.finding(
                            self.id, site.call,
                            f"submission in {fn.qualname} captures "
                            f"{capture}; it cannot cross the process "
                            "boundary",
                        )

    @staticmethod
    def _submitted(site, project, local_types) -> List[ast.expr]:
        call = site.call
        if site.method is not None:
            rtype, name = site.method
            if (name in ("submit", "map")
                    and rtype == "concurrent.futures.ProcessPoolExecutor"
                    and call.args):
                return [call.args[0]]
        dotted = site.external or site.target
        if dotted is not None and dotted in project.symbols.classes:
            if project.symbols.classes[dotted].name == "ParallelRunner":
                out = [a for a in call.args[:1]]
                out += [kw.value for kw in call.keywords
                        if kw.arg == "worker_fn"]
                return out
        return []

    def _bad_capture(self, expr, local_types, cls, project,
                     nested) -> Optional[str]:
        if isinstance(expr, ast.Lambda):
            return self._free_capture(expr.body, expr, local_types, cls)
        if isinstance(expr, ast.Name) and expr.id in nested:
            target = nested[expr.id]
            for stmt in target.body:
                found = self._free_capture(stmt, target, local_types, cls)
                if found is not None:
                    return found
            return None
        if (isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)):
            owner = None
            if expr.value.id == "self" and cls is not None:
                owner = cls
            else:
                rtype = local_types.get(expr.value.id)
                if rtype is not None:
                    owner = project.symbols.classes.get(rtype)
            if owner is not None and expr.attr in owner.methods:
                for attr, rtype in sorted(owner.attr_types.items()):
                    if rtype in _UNPICKLABLE_TYPES:
                        return (f"bound method of {owner.qualname} "
                                f"holding {rtype} in self.{attr}")
        return None

    @staticmethod
    def _free_capture(body, func, local_types, cls) -> Optional[str]:
        bound = set(_param_names(func))
        for node in ast.walk(body):
            if isinstance(node, ast.Name) and node.id not in bound:
                rtype = local_types.get(node.id)
                if rtype in _UNPICKLABLE_TYPES:
                    return f"{rtype} via free variable {node.id!r}"
            if (isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "self" and cls is not None):
                rtype = cls.attr_types.get(node.attr)
                if rtype in _UNPICKLABLE_TYPES:
                    return f"{rtype} via self.{node.attr}"
        return None


_STRINGIFIERS = frozenset({"str", "repr", "type", "format", "print"})


@register
class SwallowedExceptionRule(DeepRule):
    id = "EXC002"
    title = "broad handler swallows the exception"
    rationale = (
        "`except Exception` (or bare / BaseException) may only catch "
        "broadly if it re-raises, wraps into the repro.errors "
        "taxonomy, fails a waiter, or stores the exception object for "
        "a later observer. Formatting the exception into a string and "
        "moving on erases the failure for every caller above. "
        "Intentional conversion boundaries (HTTP 500, per-model load "
        "isolation) carry a `# lint: exempt EXC002 <reason>` comment."
    )
    scopes = ("src",)

    def check_project(
        self, module: ModuleSource, project: ProjectContext
    ) -> Iterator[Finding]:
        for fn in self._functions_of(module, project):
            for stmt in fn.node.body:  # type: ignore[attr-defined]
                for node in _walk_no_defs(stmt):
                    if not isinstance(node, ast.ExceptHandler):
                        continue
                    if not _is_catch_all(node):
                        continue
                    if not self._handled(node):
                        yield module.finding(
                            self.id, node,
                            "broad handler neither re-raises, wraps, "
                            "fails a waiter, nor stores the exception "
                            f"in {fn.qualname}",
                        )

    @staticmethod
    def _handled(handler: ast.ExceptHandler) -> bool:
        for stmt in handler.body:
            for node in _walk_no_defs(stmt):
                if isinstance(node, ast.Raise):
                    return True
        name = handler.name
        if name is None:
            return False
        for stmt in handler.body:
            for node in _walk_no_defs(stmt):
                if isinstance(node, ast.Call):
                    callee = (node.func.id
                              if isinstance(node.func, ast.Name) else None)
                    if callee in _STRINGIFIERS:
                        continue
                    if name in _name_args(node):
                        return True
                if isinstance(node, (ast.Assign, ast.AnnAssign)):
                    value = node.value
                    if isinstance(value, ast.Name) and value.id == name:
                        return True
        return False


_ACQUIRE_EXTERNAL = frozenset({
    "socket.socket", "socket.create_connection",
    "http.client.HTTPConnection", "http.client.HTTPSConnection",
})


@register
class ResourceLifetimeRule(DeepRule):
    id = "RES001"
    title = "resource acquired without `with` or try/finally release"
    rationale = (
        "Files, sockets and locks acquired outside a `with` block or "
        "a try/finally release leak on the exception path — exactly "
        "the path chaos testing exercises. Returning or storing the "
        "handle transfers the obligation and is fine; acquiring and "
        "dropping it is not. The store/ layer is the designated "
        "resource manager and is exempt."
    )
    scopes = ("src",)
    exempt = ("repro/store/",)

    def check_project(
        self, module: ModuleSource, project: ProjectContext
    ) -> Iterator[Finding]:
        info = project.symbols.module_for_path(module.path)
        imports = info.imports if info is not None else {}
        for fn in self._functions_of(module, project):
            local_types = project.graph.local_types.get(fn.qualname, {})
            cls = project.symbols.class_of(fn)
            parents: Dict[int, ast.AST] = {}
            body = fn.node.body  # type: ignore[attr-defined]
            for stmt in body:
                for node in _walk_no_defs(stmt):
                    for child in ast.iter_child_nodes(node):
                        parents[id(child)] = node
            for stmt in body:
                for node in _walk_no_defs(stmt):
                    if not isinstance(node, ast.Call):
                        continue
                    what = self._acquisition(node, imports, local_types,
                                             cls)
                    if what is None:
                        continue
                    if self._managed(node, parents, body, what):
                        continue
                    yield module.finding(
                        self.id, node,
                        f"{what[0]} acquired in {fn.qualname} without "
                        "`with`, try/finally release, or ownership "
                        "transfer",
                    )

    @staticmethod
    def _acquisition(call, imports, local_types, cls):
        """``(description, release_method)`` or None."""
        func = call.func
        if isinstance(func, ast.Name) and func.id == "open":
            return "open()", "close"
        dotted = resolve_dotted(func, imports)
        if dotted in _ACQUIRE_EXTERNAL:
            return f"{dotted}()", "close"
        if isinstance(func, ast.Attribute) and func.attr == "acquire":
            recv = func.value
            rtype = None
            if isinstance(recv, ast.Name):
                rtype = local_types.get(recv.id)
            elif (isinstance(recv, ast.Attribute)
                    and isinstance(recv.value, ast.Name)
                    and recv.value.id == "self" and cls is not None):
                rtype = cls.attr_types.get(recv.attr)
            if rtype in _LOCK_TYPES:
                return f"{rtype}.acquire()", "release"
        return None

    def _managed(self, call, parents, body, what) -> bool:
        release = what[1]
        parent = parents.get(id(call))
        if isinstance(parent, ast.withitem):
            return True
        if isinstance(parent, ast.Call):
            return True  # wrapped (closing(...), passed along)
        if isinstance(parent, (ast.Return, ast.Yield, ast.YieldFrom)):
            return True
        if isinstance(parent, ast.Await):
            return True
        receiver_text: Optional[str] = None
        if isinstance(parent, ast.Assign):
            target = parent.targets[0]
            if isinstance(target, (ast.Attribute, ast.Subscript)):
                return True  # stored: lifecycle owned elsewhere
            if isinstance(target, ast.Name):
                receiver_text = target.id
                if self._escapes(target.id, body):
                    return True
        elif (isinstance(call.func, ast.Attribute)
                and call.func.attr == "acquire"):
            receiver_text = ast.unparse(call.func.value)
        if receiver_text is not None:
            needle = f"{receiver_text}.{release}"
            for stmt in body:
                for node in _walk_no_defs(stmt):
                    if isinstance(node, ast.Try) and node.finalbody:
                        final_src = "\n".join(
                            ast.unparse(s) for s in node.finalbody
                        )
                        if needle in final_src:
                            return True
        return False

    @staticmethod
    def _escapes(name: str, body) -> bool:
        for stmt in body:
            for node in _walk_no_defs(stmt):
                if (isinstance(node, (ast.Return, ast.Yield))
                        and node.value is not None):
                    if any(isinstance(n, ast.Name) and n.id == name
                           for n in ast.walk(node.value)):
                        return True
                if isinstance(node, ast.Assign):
                    if (isinstance(node.value, ast.Name)
                            and node.value.id == name
                            and any(isinstance(t, (ast.Attribute,
                                                   ast.Subscript))
                                    for t in node.targets)):
                        return True
                if isinstance(node, ast.Call) and name in _name_args(node):
                    return True
        return False
