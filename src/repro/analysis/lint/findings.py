"""The :class:`Finding` record emitted by lint rules.

A finding pinpoints one violation: rule id, file, location, message and
the offending source line.  Its :meth:`~Finding.fingerprint` hashes the
rule id, the file and the *text* of the line (not its number), so a
baseline entry keeps suppressing the same violation while unrelated
edits move it up or down the file.
"""

from __future__ import annotations

import dataclasses
import hashlib


@dataclasses.dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    Attributes
    ----------
    rule:
        Rule identifier (e.g. ``"RNG001"``).
    path:
        Repo-relative POSIX path of the offending file.
    line / col:
        1-based line and 0-based column of the offending node.
    message:
        Human-readable explanation with the suggested fix.
    snippet:
        The stripped source line, for context in reports.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    snippet: str = ""

    def fingerprint(self) -> str:
        """Stable suppression key: rule + file + line *text*."""
        token = f"{self.rule}|{self.path}|{self.snippet}".encode()
        return hashlib.sha256(token).hexdigest()[:16]

    def to_json(self) -> dict:
        """JSON-serialisable shape (used by ``--format json``)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint(),
        }

    def render(self) -> str:
        """One-line text rendering (``path:line:col: RULE message``)."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"
