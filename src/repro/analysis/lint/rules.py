"""Lint rule registry and the shipped invariant checks.

Each rule is a singleton with an ``id``, a short ``title``, a
``rationale`` (why the invariant matters for reproduction fidelity),
the ``scopes`` it applies to (``"src"`` library code, ``"tests"`` test
code) and a ``check`` method yielding :class:`~.findings.Finding`
records for one parsed module.

Rules only need the stdlib :mod:`ast`; no third-party analysis
framework is involved, so the checker runs anywhere the library runs.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from .findings import Finding

__all__ = ["ModuleSource", "Rule", "RULES", "check_source", "get_rule", "register"]


@dataclasses.dataclass
class ModuleSource:
    """One parsed module handed to the rules.

    Attributes
    ----------
    path:
        Repo-relative POSIX path (used in findings and exemptions).
    text:
        Full source text (used to recover literal spellings).
    tree:
        Parsed AST of ``text``.
    scope:
        ``"src"`` for library code, ``"tests"`` for test code.
    """

    path: str
    text: str
    tree: ast.Module
    scope: str

    @classmethod
    def parse(cls, text: str, path: str, scope: str) -> "ModuleSource":
        return cls(path=path, text=text, tree=ast.parse(text), scope=scope)

    def line(self, lineno: int) -> str:
        lines = self.text.splitlines()
        return lines[lineno - 1].strip() if 0 < lineno <= len(lines) else ""

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        lineno = getattr(node, "lineno", 1)
        return Finding(
            rule=rule,
            path=self.path,
            line=lineno,
            col=getattr(node, "col_offset", 0),
            message=message,
            snippet=self.line(lineno),
        )


class Rule:
    """Base class: metadata plus the per-module ``check`` hook."""

    id: str = ""
    title: str = ""
    rationale: str = ""
    scopes: Tuple[str, ...] = ("src",)
    #: path substrings exempt from this rule (POSIX, repo-relative)
    exempt: Tuple[str, ...] = ()
    #: project-wide rules get a ProjectContext and implement
    #: ``check_project(module, project)`` instead of ``check``
    needs_project: bool = False

    def applies_to(self, module: ModuleSource) -> bool:
        if module.scope not in self.scopes:
            return False
        return not any(marker in module.path for marker in self.exempt)

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        raise NotImplementedError


RULES: Dict[str, Rule] = {}


def register(cls: type) -> type:
    """Class decorator: instantiate and add a rule to :data:`RULES`."""
    rule = cls()
    RULES[rule.id] = rule
    return cls


def get_rule(rule_id: str) -> Rule:
    """Look up one registered rule by id."""
    from ...errors import ConfigurationError

    if rule_id not in RULES:
        raise ConfigurationError(
            f"unknown lint rule {rule_id!r}; available: {sorted(RULES)}"
        )
    return RULES[rule_id]


def check_source(
    code: str,
    rule_id: str,
    path: str = "src/repro/example.py",
    scope: str = "src",
) -> List[Finding]:
    """Run one rule over a source snippet (the fixture-test entry point).

    Project-wide rules see the snippet as a one-module project, which
    is exactly what self-contained fixtures need.  Exemption comments
    in the snippet are honoured, so the directive syntax is testable
    through the same door.
    """
    module = ModuleSource.parse(code, path, scope)
    rule = get_rule(rule_id)
    if not rule.applies_to(module):
        return []
    if rule.needs_project:
        from .deep_rules import ProjectContext

        findings = list(rule.check_project(module, ProjectContext([module])))
    else:
        findings = list(rule.check(module))
    from .config import filter_exempt

    kept, _ = filter_exempt(findings, module.text)
    return kept


# ----------------------------------------------------------------------
# Shared AST helpers
# ----------------------------------------------------------------------
def _import_map(tree: ast.Module) -> Dict[str, str]:
    """Map local names to the dotted module/object they were bound from.

    ``import numpy as np`` -> ``{"np": "numpy"}``;
    ``from numpy import random as R`` -> ``{"R": "numpy.random"}``;
    ``from numpy.random import rand`` -> ``{"rand": "numpy.random.rand"}``.
    """
    mapping: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    mapping[alias.asname] = alias.name
                else:
                    root = alias.name.split(".")[0]
                    mapping[root] = root
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                local = alias.asname or alias.name
                mapping[local] = f"{node.module}.{alias.name}"
    return mapping


def _resolve(node: ast.AST, imports: Dict[str, str]) -> Optional[str]:
    """Dotted name of an expression through the import map, if any."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name) or node.id not in imports:
        return None
    parts.append(imports[node.id])
    return ".".join(reversed(parts))


def _call_name(node: ast.Call) -> str:
    """Syntactic name of a call target (last attribute / bare name)."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


# ----------------------------------------------------------------------
# RNG001 — seeded numpy Generators only
# ----------------------------------------------------------------------
@register
class SeededRngRule(Rule):
    """Ban the legacy global numpy RNG (and unseeded ``default_rng``)."""

    id = "RNG001"
    title = "seeded numpy Generator required"
    rationale = (
        "Fault campaigns and Fig. 7 sweeps are 'seeded, resumable' only if "
        "every stochastic path draws from an explicitly seeded "
        "numpy.random.Generator.  The legacy np.random.* global API and "
        "the stdlib random module share hidden process-wide state, so one "
        "stray call silently breaks bit-reproducibility."
    )
    scopes = ("src", "tests")

    #: numpy.random members that are part of the Generator API, not the
    #: legacy global-state API.
    _ALLOWED = frozenset({
        "Generator", "default_rng", "SeedSequence", "BitGenerator",
        "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
    })

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        imports = _import_map(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.module and not node.level:
                if node.module == "random":
                    yield module.finding(
                        self.id, node,
                        "stdlib `random` draws from hidden global state; "
                        "use a seeded numpy.random.Generator instead",
                    )
                elif node.module == "numpy.random":
                    for alias in node.names:
                        if alias.name not in self._ALLOWED:
                            yield module.finding(
                                self.id, node,
                                f"legacy numpy.random.{alias.name} uses the "
                                "global RNG; use a seeded Generator "
                                "(np.random.default_rng(seed)) instead",
                            )
                continue
            if not isinstance(node, ast.Call):
                continue
            dotted = _resolve(node.func, imports)
            if dotted is None:
                continue
            if dotted == "random" or dotted.startswith("random."):
                yield module.finding(
                    self.id, node,
                    f"`{dotted}(...)` draws from the stdlib global RNG; "
                    "use a seeded numpy.random.Generator instead",
                )
            elif dotted.startswith("numpy.random."):
                member = dotted.split(".", 2)[2].split(".")[0]
                if member == "default_rng":
                    if not node.args and not node.keywords:
                        yield module.finding(
                            self.id, node,
                            "default_rng() without a seed is entropy-seeded "
                            "and unreproducible; pass an explicit seed or "
                            "thread a Generator parameter through",
                        )
                elif member not in self._ALLOWED:
                    yield module.finding(
                        self.id, node,
                        f"legacy global-API call numpy.random.{member}(...); "
                        "use a passed-in or default_rng(seed) Generator",
                    )


# ----------------------------------------------------------------------
# IO001 — persistence through the artifact store
# ----------------------------------------------------------------------
@register
class AtomicIoRule(Rule):
    """Ban raw write-mode I/O outside ``repro/store/``."""

    id = "IO001"
    title = "persistence must go through repro.store"
    rationale = (
        "Raw open(..., 'w') / np.savez / pickle.dump writes can be torn by "
        "interruption, which is exactly how the seed model cache got "
        "poisoned with truncated archives.  The ArtifactStore (and its "
        "atomic_write_* helpers) write temp+os.replace with SHA-256 "
        "manifests, so all persistence must flow through it."
    )
    scopes = ("src",)
    exempt = ("repro/store/",)

    _WRITE_FUNCS = frozenset({
        "numpy.save", "numpy.savez", "numpy.savez_compressed",
        "numpy.savetxt", "pickle.dump", "json.dump", "marshal.dump",
        "shelve.open",
    })
    _WRITE_METHODS = frozenset({"write_text", "write_bytes", "tofile"})

    @staticmethod
    def _mode_arg(node: ast.Call, positional_index: int) -> Optional[ast.expr]:
        for kw in node.keywords:
            if kw.arg == "mode":
                return kw.value
        if len(node.args) > positional_index:
            return node.args[positional_index]
        return None

    @classmethod
    def _is_write_mode(cls, mode: Optional[ast.expr]) -> bool:
        if mode is None:
            return False  # default "r"
        if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
            return any(flag in mode.value for flag in "wax+")
        return False  # dynamic mode: give the benefit of the doubt

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        imports = _import_map(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _resolve(node.func, imports)
            if dotted in self._WRITE_FUNCS:
                yield module.finding(
                    self.id, node,
                    f"raw `{dotted}(...)` bypasses the atomic artifact "
                    "store; use ArtifactStore.put_* or "
                    "repro.store.atomic_write_* instead",
                )
                continue
            name = _call_name(node)
            if name in self._WRITE_METHODS:
                yield module.finding(
                    self.id, node,
                    f"`.{name}(...)` writes without temp+rename atomicity; "
                    "use ArtifactStore.put_* or atomic_write_bytes instead",
                )
                continue
            if name == "open":
                # builtin open(path, mode) vs Path.open(mode): the mode is
                # the second positional for the former, first for the latter.
                positional = 1 if isinstance(node.func, ast.Name) else 0
                if self._is_write_mode(self._mode_arg(node, positional)):
                    yield module.finding(
                        self.id, node,
                        "open() in write mode bypasses the atomic artifact "
                        "store; use ArtifactStore.put_* or "
                        "atomic_write_bytes instead",
                    )


# ----------------------------------------------------------------------
# UNIT001 — SI prefix constants for physical parameters
# ----------------------------------------------------------------------
@register
class SiUnitsRule(Rule):
    """Physical bindings must use ``repro.units`` prefix constants."""

    id = "UNIT001"
    title = "use repro.units prefix constants"
    rationale = (
        "Eq. 1-6 parameterization reads like a datasheet when every "
        "physical constant is `100 * FEMTO`-style; bare `1e-13` literals "
        "hide unit errors (off-by-10^3 in a capacitance silently rescales "
        "the whole energy model) and defeat review."
    )
    scopes = ("src",)
    exempt = ("repro/units.py",)

    _PREFIXES = (
        (1e12, "TERA"), (1e9, "GIGA"), (1e6, "MEGA"), (1e3, "KILO"),
        (1e-3, "MILLI"), (1e-6, "MICRO"), (1e-9, "NANO"), (1e-12, "PICO"),
        (1e-15, "FEMTO"), (1e-18, "ATTO"), (1e-21, "ZEPTO"), (1e-24, "YOCTO"),
    )
    #: full-name prefixes that mark a physical quantity (c_gd, r_on, ...)
    _NAME_PREFIXES = ("c_", "r_", "v_", "t_", "g_", "l_", "tau_")
    #: underscore-separated tokens that mark a physical quantity
    _NAME_TOKENS = frozenset({
        "cap", "capacitance", "capacitances", "resistance", "resistances",
        "voltage", "voltages", "current", "currents", "tau", "dt", "freq",
        "frequency", "period", "width", "widths", "time", "times",
        "latency", "slice", "duration", "elapsed", "age", "ages",
    })

    @classmethod
    def _physical_name(cls, name: str) -> bool:
        lowered = name.lower()
        if lowered.startswith(cls._NAME_PREFIXES):
            return True
        return any(tok in cls._NAME_TOKENS for tok in lowered.split("_"))

    @classmethod
    def _suggest(cls, value: float) -> str:
        for scale, constant in cls._PREFIXES:
            scaled = value / scale
            if 1 <= abs(scaled) < 1000:
                return f"{scaled:g} * {constant}"
        return f"{value:g}"

    def _scientific_literals(
        self, expr: ast.expr, module: ModuleSource
    ) -> Iterator[ast.Constant]:
        for sub in ast.walk(expr):
            if not isinstance(sub, ast.Constant):
                continue
            if not isinstance(sub.value, float):
                continue
            segment = ast.get_source_segment(module.text, sub) or ""
            if "e" in segment.lower() and "." not in segment.lower().split("e")[1]:
                yield sub

    def _bindings(
        self, module: ModuleSource
    ) -> Iterator[Tuple[str, ast.expr]]:
        """(name, value-expression) pairs of every named binding."""
        for node in ast.walk(module.tree):
            if isinstance(node, ast.AnnAssign) and node.value is not None:
                target = node.target
                if isinstance(target, ast.Name):
                    yield target.id, node.value
                elif isinstance(target, ast.Attribute):
                    yield target.attr, node.value
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        yield target.id, node.value
                    elif isinstance(target, ast.Attribute):
                        yield target.attr, node.value
            elif isinstance(node, ast.keyword) and node.arg:
                yield node.arg, node.value
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                spec = node.args
                params = spec.posonlyargs + spec.args
                defaults: Sequence[Optional[ast.expr]] = spec.defaults
                for param, default in zip(
                    params[len(params) - len(defaults):], defaults
                ):
                    if default is not None:
                        yield param.arg, default
                for param, default in zip(spec.kwonlyargs, spec.kw_defaults):
                    if default is not None:
                        yield param.arg, default

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        seen = set()
        for name, value in self._bindings(module):
            if not self._physical_name(name):
                continue
            for literal in self._scientific_literals(value, module):
                key = (literal.lineno, literal.col_offset)
                if key in seen:
                    continue
                seen.add(key)
                segment = ast.get_source_segment(module.text, literal)
                yield module.finding(
                    self.id, literal,
                    f"physical binding `{name}` uses bare literal "
                    f"`{segment}`; write `{self._suggest(literal.value)}` "
                    "with repro.units prefix constants",
                )


# ----------------------------------------------------------------------
# TEST001 — tolerance-aware float assertions
# ----------------------------------------------------------------------
@register
class FloatEqualityRule(Rule):
    """Ban ``==``/``!=`` against float expressions in tests."""

    id = "TEST001"
    title = "float comparisons need a tolerance"
    rationale = (
        "Exact float equality in tests couples the suite to one libm / "
        "SIMD path: results that are correct to 1 ulp fail on another "
        "platform.  np.isclose / pytest.approx / assert_allclose make the "
        "tolerance explicit."
    )
    scopes = ("tests",)

    _TOLERANT = frozenset({"approx", "isclose", "allclose", "assert_allclose"})

    @classmethod
    def _float_like(cls, node: ast.expr) -> bool:
        """The expression *textually contains* a float literal operand."""
        if isinstance(node, ast.Constant):
            return isinstance(node.value, float)
        if isinstance(node, ast.UnaryOp):
            return cls._float_like(node.operand)
        if isinstance(node, ast.BinOp):
            return cls._float_like(node.left) or cls._float_like(node.right)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            return any(cls._float_like(el) for el in node.elts)
        return False

    @classmethod
    def _has_tolerance(cls, operands: Iterable[ast.expr]) -> bool:
        for operand in operands:
            for sub in ast.walk(operand):
                if isinstance(sub, ast.Call) and _call_name(sub) in cls._TOLERANT:
                    return True
        return False

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            operands = [node.left] + list(node.comparators)
            if not any(self._float_like(operand) for operand in operands):
                continue
            if self._has_tolerance(operands):
                continue
            yield module.finding(
                self.id, node,
                "exact ==/!= against a float expression; use "
                "pytest.approx, np.isclose or "
                "np.testing.assert_allclose",
            )


# ----------------------------------------------------------------------
# TEL001 — timing through the telemetry clock
# ----------------------------------------------------------------------
@register
class TelemetryClockRule(Rule):
    """Direct :mod:`time` clock reads must go through the telemetry clock."""

    id = "TEL001"
    title = "read clocks via repro.telemetry.clock"
    rationale = (
        "Scattered time.time()/perf_counter() calls are how ad-hoc, "
        "inconsistent instrumentation creeps back in; routing every clock "
        "read through repro.telemetry.clock keeps span timings, latency "
        "histograms and manifests comparable across subsystems.  "
        "benchmarks/ harnesses are exempt (they time their own measurement "
        "loops and must not route through the subsystem under test)."
    )
    scopes = ("src", "tests")
    exempt = ("repro/telemetry/", "benchmarks/")

    _BANNED = frozenset({
        "time", "time_ns", "perf_counter", "perf_counter_ns",
        "monotonic", "monotonic_ns", "process_time", "process_time_ns",
    })

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        imports = _import_map(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _resolve(node.func, imports)
            if dotted is None or not dotted.startswith("time."):
                continue
            member = dotted.split(".", 1)[1].split(".")[0]
            if member in self._BANNED:
                yield module.finding(
                    self.id, node,
                    f"direct `{dotted}()` clock read; use "
                    "repro.telemetry.clock (wall/monotonic/perf/cpu) so "
                    "timings stay comparable across subsystems",
                )


# ----------------------------------------------------------------------
# ERR001 — the repro.errors taxonomy
# ----------------------------------------------------------------------
@register
class ErrorTaxonomyRule(Rule):
    """Library raises must come from :mod:`repro.errors`."""

    id = "ERR001"
    title = "raise repro.errors types, not bare builtins"
    rationale = (
        "Callers catch library failures with a single `except ReproError` "
        "and discriminate the domain from the subclass; a bare ValueError "
        "escapes that contract and turns a domain failure into an "
        "anonymous crash."
    )
    scopes = ("src",)
    exempt = ("repro/errors.py",)

    _BANNED = frozenset({
        "Exception", "BaseException", "ValueError", "TypeError",
        "RuntimeError", "KeyError", "IndexError", "LookupError",
        "ArithmeticError", "ZeroDivisionError", "OSError", "IOError",
        "StopIteration",
    })

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            if isinstance(exc, ast.Call):
                exc = exc.func
            if isinstance(exc, ast.Name) and exc.id in self._BANNED:
                yield module.finding(
                    self.id, node,
                    f"raise {exc.id} is outside the repro.errors taxonomy; "
                    "raise a ReproError subclass (ConfigurationError, "
                    "DeviceError, ...) so callers can catch by domain",
                )


# ----------------------------------------------------------------------
# OBS001 — structured logging through repro.telemetry.logging
# ----------------------------------------------------------------------
@register
class StructuredLoggingRule(Rule):
    """Direct stdlib :mod:`logging` use must go through the structured
    logger."""

    id = "OBS001"
    title = "log via repro.telemetry.logging, not stdlib logging"
    rationale = (
        "logging.getLogger / root-logger calls emit free-form text with "
        "no trace correlation; repro.telemetry.logging.get_logger emits "
        "one JSON object per line carrying the active trace_id/span_id, "
        "so log lines stay joinable with spans and metrics.  basicConfig "
        "and root-level calls additionally mutate process-global handler "
        "state, which embedding applications own, not the library.  Only "
        "repro/telemetry/ itself may touch the stdlib module (it is the "
        "adapter)."
    )
    scopes = ("src", "tests")
    exempt = ("repro/telemetry/",)

    #: stdlib logging members whose call sites bypass the structured
    #: logger: logger acquisition, global configuration and the
    #: root-logger conveniences.
    _BANNED = frozenset({
        "getLogger", "basicConfig", "captureWarnings", "disable",
        "debug", "info", "warning", "warn", "error", "exception",
        "critical", "log",
    })

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        imports = _import_map(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _resolve(node.func, imports)
            if dotted is None or not dotted.startswith("logging."):
                continue
            member = dotted.split(".", 1)[1].split(".")[0]
            if member in self._BANNED:
                yield module.finding(
                    self.id, node,
                    f"direct `{dotted}(...)`; use "
                    "repro.telemetry.logging.get_logger so log lines are "
                    "structured JSON carrying the active trace_id/span_id",
                )
