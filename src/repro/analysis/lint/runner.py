"""File discovery, rule dispatch, baselines and report rendering.

The runner walks ``src/`` and ``tests/`` (or any explicit path list),
parses every module **once**, classifies each as library or test code,
and applies every registered rule whose scope matches.  Single-module
rules see one :class:`ModuleSource` at a time; project-wide rules
(``needs_project``) additionally get a
:class:`~.deep_rules.ProjectContext` — the symbol table and call graph
over the whole run — built lazily only when such a rule is selected.

Findings then pass two filters: ``# lint: exempt RULE <reason>``
comments (see :mod:`.config`) and an optional baseline file.  A
baseline is a JSON file of finding fingerprints (rule + file + line
text); ``repro lint --write-baseline`` snapshots the current findings,
and subsequent runs with ``--baseline`` suppress exactly those, so the
gate can land before the last violation is fixed.  The shipped tree
needs no baseline — the suite asserts it lints clean (see
``tests/analysis/test_lint_selfhost.py``).
"""

from __future__ import annotations

import dataclasses
import json
import os
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ...errors import ConfigurationError
from ...store.atomic import atomic_write_json
from .config import filter_exempt
from .findings import Finding
from .rules import RULES, ModuleSource, Rule
from . import deep_rules  # noqa: F401  (registers the project-wide rules)
from .deep_rules import ProjectContext
from .sarif import render_sarif

__all__ = [
    "LintReport",
    "ModuleSource",
    "lint_file",
    "lint_paths",
    "load_baseline",
    "render_json",
    "render_sarif",
    "render_text",
    "run_lint",
    "write_baseline",
]

#: directories never descended into
_SKIP_DIRS = {".git", ".cache", "__pycache__", ".ruff_cache", ".mypy_cache",
              ".pytest_cache", "node_modules", ".venv", "venv"}


@dataclasses.dataclass
class LintReport:
    """Outcome of one lint run.

    Attributes
    ----------
    findings:
        Unsuppressed findings, sorted by (path, line, rule).
    suppressed:
        How many findings the baseline filtered out.
    exempted:
        How many findings ``# lint: exempt`` comments filtered out.
    files:
        Number of files checked.
    errors:
        Files that could not be parsed, with the reason.
    """

    findings: List[Finding]
    suppressed: int = 0
    exempted: int = 0
    files: int = 0
    errors: List[str] = dataclasses.field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings and not self.errors

    @property
    def exit_code(self) -> int:
        return 0 if self.clean else 1


def classify_scope(rel_path: str) -> str:
    """``"tests"`` for test modules, ``"src"`` for everything else."""
    parts = rel_path.replace(os.sep, "/").split("/")
    if "tests" in parts or parts[-1].startswith("test_"):
        return "tests"
    return "src"


def _iter_python_files(path: str) -> Iterable[str]:
    if os.path.isfile(path):
        if path.endswith(".py"):
            yield path
        return
    for dirpath, dirnames, filenames in os.walk(path):
        dirnames[:] = sorted(d for d in dirnames if d not in _SKIP_DIRS)
        for filename in sorted(filenames):
            if filename.endswith(".py"):
                yield os.path.join(dirpath, filename)


def _parse_modules(
    paths: Sequence[str], root: str
) -> Tuple[List[ModuleSource], List[str], int]:
    """Parse every Python file once: (modules, errors, file count)."""
    modules: List[ModuleSource] = []
    errors: List[str] = []
    files = 0
    for path in paths:
        if not os.path.exists(path):
            raise ConfigurationError(f"lint path does not exist: {path!r}")
        for filename in _iter_python_files(path):
            files += 1
            rel = os.path.relpath(os.path.abspath(filename),
                                  os.path.abspath(root))
            rel = rel.replace(os.sep, "/")
            with open(filename, "r", encoding="utf-8") as fh:
                text = fh.read()
            try:
                modules.append(
                    ModuleSource.parse(text, rel, classify_scope(rel))
                )
            except SyntaxError as exc:
                errors.append(f"{filename}: syntax error: {exc}")
    return modules, errors, files


def _check_modules(
    modules: Sequence[ModuleSource],
    rules: Sequence[Rule],
) -> Tuple[List[Finding], int]:
    """Apply ``rules`` to parsed ``modules``: (findings, exempted)."""
    project: Optional[ProjectContext] = None
    if any(rule.needs_project for rule in rules):
        project = ProjectContext(modules)
    findings: List[Finding] = []
    exempted = 0
    for module in modules:
        per_module: List[Finding] = []
        for rule in rules:
            if not rule.applies_to(module):
                continue
            if rule.needs_project:
                assert project is not None
                per_module.extend(rule.check_project(module, project))
            else:
                per_module.extend(rule.check(module))
        kept, dropped = filter_exempt(per_module, module.text)
        findings.extend(kept)
        exempted += dropped
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings, exempted


def lint_file(
    path: str,
    root: str,
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Run all (or the given) rules over one file.

    Project-wide rules see a one-module project here: cross-module
    resolution needs :func:`lint_paths` over the whole tree.
    """
    modules, errors, _files = _parse_modules([path], root)
    if errors:
        raise SyntaxError(errors[0])
    selected = list(rules if rules is not None else RULES.values())
    findings, _exempted = _check_modules(modules, selected)
    return findings


def lint_paths(
    paths: Sequence[str],
    root: Optional[str] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> LintReport:
    """Lint every Python file under ``paths`` (no baseline filtering)."""
    root = root if root is not None else os.getcwd()
    modules, errors, files = _parse_modules(paths, root)
    selected = list(rules if rules is not None else RULES.values())
    findings, exempted = _check_modules(modules, selected)
    return LintReport(findings=findings, files=files, errors=errors,
                      exempted=exempted)


def load_baseline(path: str) -> Set[str]:
    """Read a baseline file into a set of suppression fingerprints."""
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    if not isinstance(data, dict) or not isinstance(
        data.get("fingerprints"), list
    ):
        raise ConfigurationError(
            f"baseline {path!r} must be {{'fingerprints': [...]}}"
        )
    return set(data["fingerprints"])


def write_baseline(path: str, findings: Sequence[Finding]) -> None:
    """Snapshot ``findings`` as a baseline (atomic write)."""
    atomic_write_json(path, {
        "version": 1,
        "fingerprints": sorted({f.fingerprint() for f in findings}),
    })


def run_lint(
    paths: Optional[Sequence[str]] = None,
    root: Optional[str] = None,
    baseline: Optional[str] = None,
    rules: Optional[Sequence[str]] = None,
) -> LintReport:
    """The full pipeline: discover, check, baseline-filter.

    Parameters
    ----------
    paths:
        Files/directories to lint (default: ``src`` and ``tests`` under
        ``root`` when they exist).
    root:
        Repo root for relative paths (default: cwd).
    baseline:
        Optional baseline file; matching findings are suppressed.
    rules:
        Optional rule-id subset (default: all registered rules).
    """
    root = os.path.abspath(root if root is not None else os.getcwd())
    if paths is None:
        paths = [p for p in (os.path.join(root, "src"),
                             os.path.join(root, "tests"))
                 if os.path.isdir(p)]
        if not paths:
            raise ConfigurationError(
                f"no src/ or tests/ under {root!r}; pass explicit paths"
            )
    selected: Optional[List[Rule]] = None
    if rules is not None:
        from .rules import get_rule

        selected = [get_rule(rule_id) for rule_id in rules]
    report = lint_paths(paths, root=root, rules=selected)
    if baseline is not None:
        known = load_baseline(baseline)
        kept = [f for f in report.findings if f.fingerprint() not in known]
        report.suppressed = len(report.findings) - len(kept)
        report.findings = kept
    return report


def render_text(report: LintReport) -> str:
    """Human-readable report (one finding per line + summary)."""
    lines = [f.render() for f in report.findings]
    lines.extend(f"error: {e}" for e in report.errors)
    by_rule: Dict[str, int] = {}
    for f in report.findings:
        by_rule[f.rule] = by_rule.get(f.rule, 0) + 1
    summary = ", ".join(f"{rule}: {n}" for rule, n in sorted(by_rule.items()))
    lines.append(
        f"checked {report.files} file(s): "
        + (f"{len(report.findings)} finding(s) ({summary})"
           if report.findings else "clean")
        + (f", {report.suppressed} baselined" if report.suppressed else "")
        + (f", {report.exempted} exempted" if report.exempted else "")
    )
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """Machine-readable report for the CI gate."""
    return json.dumps({
        "findings": [f.to_json() for f in report.findings],
        "errors": report.errors,
        "files": report.files,
        "suppressed": report.suppressed,
        "exempted": report.exempted,
        "clean": report.clean,
    }, indent=2, sort_keys=True) + "\n"
