"""SARIF 2.1.0 renderer for lint reports.

SARIF (Static Analysis Results Interchange Format) is what CI
annotation surfaces ingest: one ``run`` with a ``tool.driver``
describing the rules, and one ``result`` per finding carrying the
rule id, message, physical location and a stable partial fingerprint
(the same fingerprint the baseline machinery uses, so a finding keeps
its identity across renderers).

Only the subset of the spec that consumers actually read is emitted —
schema/version headers, rule metadata, results — which keeps the
output valid without dragging in the other ~200 pages of SARIF.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Dict, List

from .rules import RULES

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .runner import LintReport

__all__ = ["render_sarif", "SARIF_VERSION", "SARIF_SCHEMA"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _rule_descriptors(rule_ids: List[str]) -> List[Dict[str, Any]]:
    descriptors = []
    for rule_id in sorted(rule_ids):
        rule = RULES.get(rule_id)
        descriptors.append({
            "id": rule_id,
            "shortDescription": {
                "text": rule.title if rule is not None else rule_id
            },
            "fullDescription": {
                "text": rule.rationale if rule is not None else ""
            },
            "defaultConfiguration": {"level": "error"},
        })
    return descriptors


def render_sarif(report: "LintReport") -> str:
    """Serialize a :class:`~.runner.LintReport` as a SARIF 2.1.0 log."""
    results = []
    for finding in report.findings:
        results.append({
            "ruleId": finding.rule,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path,
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.col + 1,
                        "snippet": {"text": finding.snippet},
                    },
                },
            }],
            "partialFingerprints": {
                "reproLint/v1": finding.fingerprint(),
            },
        })
    tool_errors = [
        {"level": "error", "message": {"text": error}}
        for error in report.errors
    ]
    log = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-lint",
                    "rules": _rule_descriptors(
                        sorted({f.rule for f in report.findings} | set(RULES))
                    ),
                },
            },
            "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
            "results": results,
            "invocations": [{
                "executionSuccessful": not report.errors,
                "toolExecutionNotifications": tool_errors,
            }],
        }],
    }
    return json.dumps(log, indent=2, sort_keys=True) + "\n"
