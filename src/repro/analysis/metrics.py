"""Error and accuracy metrics."""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError

__all__ = ["accuracy_score", "rmse", "mean_relative_error", "max_relative_error"]


def _pair(a: np.ndarray, b: np.ndarray):
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape != b.shape:
        raise ShapeError(f"shape mismatch: {a.shape} vs {b.shape}")
    return a, b


def accuracy_score(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of matching entries."""
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if predictions.shape != labels.shape:
        raise ShapeError(
            f"shape mismatch: {predictions.shape} vs {labels.shape}"
        )
    return float(np.mean(predictions == labels))


def rmse(actual: np.ndarray, reference: np.ndarray) -> float:
    """Root-mean-square error."""
    a, r = _pair(actual, reference)
    return float(np.sqrt(((a - r) ** 2).mean()))


def _relative_errors(actual: np.ndarray, reference: np.ndarray, floor: float) -> np.ndarray:
    a, r = _pair(actual, reference)
    denom = np.maximum(np.abs(r), floor)
    return np.abs(a - r) / denom


def mean_relative_error(
    actual: np.ndarray, reference: np.ndarray, floor: float = 1e-12
) -> float:
    """Mean of ``|actual - reference| / max(|reference|, floor)``."""
    return float(_relative_errors(actual, reference, floor).mean())


def max_relative_error(
    actual: np.ndarray, reference: np.ndarray, floor: float = 1e-12
) -> float:
    """Max of ``|actual - reference| / max(|reference|, floor)``."""
    return float(_relative_errors(actual, reference, floor).max())
