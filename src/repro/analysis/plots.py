"""ASCII plotting for figure artefacts.

The benchmark artefacts regenerate the paper's *figures*, and an
offline environment has no plotting stack — so this module renders
scatter and line charts as fixed-width text.  Multiple series overlay
with distinct markers; axes are annotated with engineering-notation
ranges.  Used by the Fig. 5 / Fig. 6 / Fig. 7 benches.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..units import si_format

__all__ = ["Series", "ascii_plot"]

_DEFAULT_MARKERS = "ox+*#@%&"


@dataclasses.dataclass(frozen=True)
class Series:
    """One plotted dataset.

    Attributes
    ----------
    x / y:
        Sample coordinates.
    label:
        Legend text.
    marker:
        Single character used on the canvas (auto-assigned if empty).
    """

    x: np.ndarray
    y: np.ndarray
    label: str
    marker: str = ""

    def __post_init__(self) -> None:
        x = np.asarray(self.x, dtype=float)
        y = np.asarray(self.y, dtype=float)
        if x.shape != y.shape or x.ndim != 1:
            raise ConfigurationError(
                f"series {self.label!r}: x/y must be equal-length 1-D, "
                f"got {x.shape} vs {y.shape}"
            )
        if x.size == 0:
            raise ConfigurationError(f"series {self.label!r} is empty")
        if len(self.marker) > 1:
            raise ConfigurationError(
                f"series {self.label!r}: marker must be one character"
            )
        object.__setattr__(self, "x", x)
        object.__setattr__(self, "y", y)


def ascii_plot(
    series: Sequence[Series],
    width: int = 64,
    height: int = 18,
    title: Optional[str] = None,
    x_label: str = "",
    y_label: str = "",
    x_unit: str = "",
    y_unit: str = "",
) -> str:
    """Render series onto a ``width × height`` character canvas.

    Later series draw over earlier ones where cells collide (so fitted
    curves stay visible over scatter clouds).
    """
    if not series:
        raise ConfigurationError("need at least one series")
    if width < 16 or height < 6:
        raise ConfigurationError("canvas must be at least 16x6")

    all_x = np.concatenate([s.x for s in series])
    all_y = np.concatenate([s.y for s in series])
    x_min, x_max = float(all_x.min()), float(all_x.max())
    y_min, y_max = float(all_y.min()), float(all_y.max())
    if x_max == x_min:
        x_max = x_min + 1.0
    if y_max == y_min:
        y_max = y_min + 1.0

    canvas = [[" "] * width for _ in range(height)]
    markers: List[str] = []
    for i, s in enumerate(series):
        marker = s.marker or _DEFAULT_MARKERS[i % len(_DEFAULT_MARKERS)]
        markers.append(marker)
        cols = np.clip(
            ((s.x - x_min) / (x_max - x_min) * (width - 1)).round().astype(int),
            0, width - 1,
        )
        rows = np.clip(
            ((s.y - y_min) / (y_max - y_min) * (height - 1)).round().astype(int),
            0, height - 1,
        )
        for c, r in zip(cols, rows):
            canvas[height - 1 - r][c] = marker

    lines: List[str] = []
    if title:
        lines.append(title)
    top = si_format(y_max, y_unit)
    bottom = si_format(y_min, y_unit)
    gutter = max(len(top), len(bottom), len(y_label)) + 1
    for r, row in enumerate(canvas):
        if r == 0:
            tag = top
        elif r == height - 1:
            tag = bottom
        elif r == height // 2 and y_label:
            tag = y_label
        else:
            tag = ""
        lines.append(f"{tag:>{gutter}} |{''.join(row)}|")
    lines.append(f"{'':>{gutter}} +{'-' * width}+")
    left = si_format(x_min, x_unit)
    right = si_format(x_max, x_unit)
    mid = x_label
    span = width - len(left) - len(right)
    mid_text = mid.center(max(span, len(mid)))[: max(span, 0)]
    lines.append(f"{'':>{gutter}}  {left}{mid_text}{right}")
    legend = "   ".join(f"{m} {s.label}" for m, s in zip(markers, series))
    lines.append(f"{'':>{gutter}}  legend: {legend}")
    return "\n".join(lines)
