"""Generic parameter-sweep harness.

Every figure in the evaluation is a sweep over one knob (total
conductance for Fig. 5, area budget for Fig. 6, variation σ for
Fig. 7).  :func:`sweep` runs the knob values through a measurement
callable and collects results with labels, so experiment modules stay
declarative.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, List, Sequence

import numpy as np

from ..errors import ConfigurationError

__all__ = ["SweepResult", "sweep"]


@dataclasses.dataclass(frozen=True)
class SweepResult:
    """Outcome of a one-dimensional sweep.

    Attributes
    ----------
    parameter:
        The swept knob's name.
    values:
        The knob values, in order.
    measurements:
        Per-value measurement dictionaries (each from one call).
    """

    parameter: str
    values: tuple
    measurements: tuple

    def series(self, key: str) -> np.ndarray:
        """Extract one measured quantity across the sweep."""
        try:
            return np.array([m[key] for m in self.measurements], dtype=float)
        except KeyError:
            available = sorted(self.measurements[0]) if self.measurements else []
            raise ConfigurationError(
                f"no measurement {key!r}; available: {available}"
            ) from None

    def keys(self) -> List[str]:
        """Measured quantity names."""
        return sorted(self.measurements[0]) if self.measurements else []

    def as_rows(self) -> List[List[Any]]:
        """Rows of [value, *measurements] for table rendering."""
        keys = self.keys()
        return [
            [v] + [m[k] for k in keys]
            for v, m in zip(self.values, self.measurements)
        ]


def sweep(
    parameter: str,
    values: Sequence,
    measure: Callable[[Any], Dict[str, float]],
) -> SweepResult:
    """Run ``measure`` at every knob value.

    ``measure`` returns a dict of named measurements; all calls must
    return the same keys.
    """
    if not values:
        raise ConfigurationError("sweep needs at least one value")
    measurements = []
    expected_keys = None
    for v in values:
        m = measure(v)
        if not isinstance(m, dict) or not m:
            raise ConfigurationError(
                f"measure({v!r}) must return a non-empty dict, got {m!r}"
            )
        if expected_keys is None:
            expected_keys = set(m)
        elif set(m) != expected_keys:
            raise ConfigurationError(
                f"inconsistent measurement keys at {v!r}: "
                f"{sorted(m)} vs {sorted(expected_keys)}"
            )
        measurements.append(m)
    return SweepResult(
        parameter=parameter, values=tuple(values), measurements=tuple(measurements)
    )
