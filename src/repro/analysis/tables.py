"""ASCII table rendering for benchmark output.

The benchmark harnesses print the regenerated paper tables; this keeps
the formatting in one place.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

from ..errors import ConfigurationError

__all__ = ["render_table"]


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e5 or magnitude < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: Optional[str] = None,
) -> str:
    """Render a fixed-width ASCII table.

    >>> print(render_table(["a", "b"], [[1, 2.5]]))
    a | b
    --+----
    1 | 2.5
    """
    if not headers:
        raise ConfigurationError("table needs headers")
    for row in rows:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row {row!r} has {len(row)} cells for {len(headers)} headers"
            )
    text_rows: List[List[str]] = [[_format_cell(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in text_rows)) if text_rows
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in text_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
