"""Architecture-level (slice-granular) chip simulation.

The analytic pipeline model (:mod:`repro.core.pipeline`) and the
deployment planner (:mod:`repro.mapping.deployment`) predict latency and
throughput in closed form; this subpackage *simulates* the same chip at
slice granularity — stations with service times, finite inter-layer
buffers, backpressure — so the closed forms can be cross-validated and
buffer-sizing questions answered.

* :mod:`repro.arch.chip` — chip description (stations from a mapped
  network or explicit service times, buffer capacities).
* :mod:`repro.arch.simulator` — the discrete-event pipeline simulator.
* :mod:`repro.arch.trace` — utilisation reports and ASCII Gantt charts.
"""

from .chip import ChipDescription, Station, chip_from_deployment
from .simulator import PipelineSimulator, SimulationResult
from .trace import render_gantt, utilisation_report

__all__ = [
    "ChipDescription",
    "Station",
    "chip_from_deployment",
    "PipelineSimulator",
    "SimulationResult",
    "render_gantt",
    "utilisation_report",
]
