"""Chip description for the pipeline simulator.

A chip is a linear pipeline of :class:`Station` objects, one per mapped
layer.  Each station occupies its engines for ``service_slices`` slices
per sample (``2 × MVMs`` under the two-slice protocol) and deposits the
result into a finite output buffer read by the next station.

The ReSiPE hand-off (S2 of layer *n* ≡ S1 of layer *n+1*) is modelled
by ``overlap = 1``: the consumer may begin one slice *before* the
producer finishes, because the producer's last slice *is* the
consumer's first.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from ..errors import ConfigurationError
from ..mapping.deployment import DeploymentReport

__all__ = ["Station", "ChipDescription", "chip_from_deployment"]


@dataclasses.dataclass(frozen=True)
class Station:
    """One pipeline stage (a mapped layer's engine group).

    Attributes
    ----------
    name:
        Stage label.
    service_slices:
        Slices the stage is busy per sample.
    buffer_capacity:
        Samples the stage's *output* buffer can hold (``None`` =
        unbounded).
    """

    name: str
    service_slices: int
    buffer_capacity: Optional[int] = None

    def __post_init__(self) -> None:
        if self.service_slices < 1:
            raise ConfigurationError(
                f"station {self.name!r}: service must be >= 1 slice"
            )
        if self.buffer_capacity is not None and self.buffer_capacity < 1:
            raise ConfigurationError(
                f"station {self.name!r}: buffer capacity must be >= 1"
            )


@dataclasses.dataclass(frozen=True)
class ChipDescription:
    """A linear pipeline of stations.

    Attributes
    ----------
    stations:
        Stage list in dataflow order.
    slice_length:
        Seconds per slice.
    overlap:
        Slices by which a consumer may overlap its producer's tail
        (1 for the ReSiPE S2/S1 hand-off; 0 for a strict pipeline).
    """

    stations: tuple
    slice_length: float
    overlap: int = 1

    def __post_init__(self) -> None:
        if not self.stations:
            raise ConfigurationError("a chip needs at least one station")
        if self.slice_length <= 0:
            raise ConfigurationError("slice length must be positive")
        if self.overlap < 0:
            raise ConfigurationError("overlap must be >= 0")

    @property
    def bottleneck(self) -> Station:
        """The station with the longest service time."""
        return max(self.stations, key=lambda s: s.service_slices)

    def analytic_interval_slices(self) -> int:
        """Closed-form steady-state initiation interval (slices)."""
        return self.bottleneck.service_slices

    def analytic_latency_slices(self) -> int:
        """Closed-form fill latency of one sample (slices)."""
        total = sum(s.service_slices for s in self.stations)
        return total - self.overlap * (len(self.stations) - 1)


def chip_from_deployment(
    report: DeploymentReport,
    slice_length: float,
    buffer_capacity: Optional[int] = None,
) -> ChipDescription:
    """Build a chip description from a deployment plan."""
    stations: List[Station] = [
        Station(
            name=layer.name,
            service_slices=layer.occupancy_slices,
            buffer_capacity=buffer_capacity,
        )
        for layer in report.layers
    ]
    return ChipDescription(stations=tuple(stations), slice_length=slice_length)
