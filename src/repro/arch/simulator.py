"""Slice-granular pipeline simulator with finite buffers.

Semantics (all times in slices):

* station *i* processes samples in order; one sample occupies its
  engines for ``service_slices``;
* a sample may start at station *i* once (a) the station is free,
  (b) the upstream station is within ``overlap`` slices of finishing it
  (the ReSiPE S2/S1 hand-off), and (c) the station's output buffer has
  room — i.e. blocking-before-service backpressure: with capacity
  ``C``, sample ``k`` cannot start until sample ``k − C`` has been
  accepted by the next station;
* the source injects samples at their arrival slices.

The recurrence is solved exactly (no event queue needed for a linear
pipeline), and the result carries everything the analysis layer wants:
per-sample start/finish matrices, latency and initiation-interval
statistics, station utilisation and peak buffer occupancy.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

import numpy as np

from ..errors import ConfigurationError
from .chip import ChipDescription

__all__ = ["PipelineSimulator", "SimulationResult"]


@dataclasses.dataclass(frozen=True)
class SimulationResult:
    """Outcome of one pipeline simulation.

    Attributes
    ----------
    chip:
        The simulated chip.
    arrivals:
        Sample arrival slices.
    starts / finishes:
        ``(stations, samples)`` matrices of start/finish slices.
    """

    chip: ChipDescription
    arrivals: np.ndarray
    starts: np.ndarray
    finishes: np.ndarray

    # ------------------------------------------------------------------
    @property
    def num_samples(self) -> int:
        return int(self.starts.shape[1])

    @property
    def makespan_slices(self) -> int:
        """First arrival to last completion (slices)."""
        return int(self.finishes[-1, -1] - self.arrivals[0])

    @property
    def makespan(self) -> float:
        """Wall-clock makespan (seconds)."""
        return self.makespan_slices * self.chip.slice_length

    def sample_latency_slices(self, k: int = 0) -> int:
        """Arrival-to-completion latency of sample ``k`` (slices)."""
        return int(self.finishes[-1, k] - self.arrivals[k])

    def steady_interval_slices(self) -> float:
        """Measured completion interval in steady state (slices)."""
        if self.num_samples < 2:
            return float(self.sample_latency_slices(0))
        completions = self.finishes[-1]
        tail = completions[self.num_samples // 2:]
        if tail.size < 2:
            tail = completions
        return float(np.diff(tail).mean())

    def throughput(self) -> float:
        """Steady-state samples per second."""
        return 1.0 / (self.steady_interval_slices() * self.chip.slice_length)

    def utilisation(self, station: int) -> float:
        """Busy fraction of one station over the makespan."""
        busy = self.num_samples * self.chip.stations[station].service_slices
        return busy / max(1, self.makespan_slices)

    def peak_buffer_occupancy(self, station: int) -> int:
        """Peak samples parked between ``station`` and its consumer.

        A sample occupies the buffer from its producer finish until its
        consumer start.
        """
        if station >= len(self.chip.stations) - 1:
            return 0
        events = []
        for k in range(self.num_samples):
            enter = self.finishes[station, k]
            leave = self.starts[station + 1, k]
            if leave > enter:
                events.append((enter, 1))
                events.append((leave, -1))
        peak = level = 0
        for _, delta in sorted(events):
            level += delta
            peak = max(peak, level)
        return peak


class PipelineSimulator:
    """Runs a :class:`ChipDescription` over a sample stream."""

    def __init__(self, chip: ChipDescription) -> None:
        self.chip = chip

    def run(
        self,
        num_samples: int,
        arrival_interval: int = 0,
        arrivals: Optional[Sequence[int]] = None,
    ) -> SimulationResult:
        """Simulate ``num_samples`` through the pipeline.

        Parameters
        ----------
        num_samples:
            Samples injected.
        arrival_interval:
            Slices between arrivals (0 = all available immediately).
        arrivals:
            Explicit arrival slices (overrides ``arrival_interval``).
        """
        if num_samples < 1:
            raise ConfigurationError("need at least one sample")
        if arrivals is not None:
            arr = np.asarray(list(arrivals), dtype=np.int64)
            if arr.shape != (num_samples,):
                raise ConfigurationError(
                    f"need {num_samples} arrivals, got {arr.shape}"
                )
            if np.any(np.diff(arr) < 0):
                raise ConfigurationError("arrivals must be non-decreasing")
        else:
            if arrival_interval < 0:
                raise ConfigurationError("arrival interval must be >= 0")
            arr = np.arange(num_samples, dtype=np.int64) * arrival_interval

        stations = self.chip.stations
        n = len(stations)
        overlap = self.chip.overlap
        starts = np.zeros((n, num_samples), dtype=np.int64)
        finishes = np.zeros((n, num_samples), dtype=np.int64)

        for k in range(num_samples):
            for i in range(n):
                ready = arr[k] if i == 0 else finishes[i - 1, k] - overlap
                engine_free = finishes[i, k - 1] if k > 0 else 0
                start = max(ready, engine_free)
                capacity = stations[i].buffer_capacity
                if capacity is not None and i + 1 < n and k - capacity >= 0:
                    # Blocking-before-service: wait for downstream to
                    # drain sample k - capacity from this buffer.
                    start = max(start, starts[i + 1, k - capacity])
                starts[i, k] = start
                finishes[i, k] = start + stations[i].service_slices

        return SimulationResult(
            chip=self.chip, arrivals=arr, starts=starts, finishes=finishes
        )
