"""Utilisation reports and ASCII Gantt rendering for simulations."""

from __future__ import annotations

from typing import List

from ..analysis.tables import render_table
from ..errors import ConfigurationError
from .simulator import SimulationResult

__all__ = ["render_gantt", "utilisation_report"]

_GANTT_SYMBOLS = "0123456789abcdefghijklmnopqrstuvwxyz"


def render_gantt(result: SimulationResult, max_slices: int = 60) -> str:
    """ASCII Gantt chart: one row per station, one column per slice;
    cells show the sample index being processed (``.`` = idle)."""
    if max_slices < 1:
        raise ConfigurationError("max_slices must be >= 1")
    horizon = min(int(result.finishes.max()), max_slices)
    name_width = 14
    lines: List[str] = []
    for i, station in enumerate(result.chip.stations):
        row = []
        for t in range(horizon):
            symbol = "."
            for k in range(result.num_samples):
                if result.starts[i, k] <= t < result.finishes[i, k]:
                    symbol = _GANTT_SYMBOLS[k % len(_GANTT_SYMBOLS)]
                    break
            row.append(symbol)
        lines.append(f"{station.name[:name_width]:<{name_width}} |{''.join(row)}|")
    # Rows carry a "<name> |" prefix of name_width + 2 characters before
    # the first slice cell; the tick header must pad by the same amount
    # so the decade digit over column t sits above the cells for slice t.
    header = " " * (name_width + 2) + "".join(
        str((t // 10) % 10) if t % 10 == 0 else " " for t in range(horizon)
    )
    return header + "\n" + "\n".join(lines)


def utilisation_report(result: SimulationResult) -> str:
    """Per-station utilisation / buffering table plus headline metrics."""
    rows = []
    for i, station in enumerate(result.chip.stations):
        rows.append([
            station.name,
            station.service_slices,
            f"{result.utilisation(i):.1%}",
            result.peak_buffer_occupancy(i),
        ])
    table = render_table(
        ["station", "service (slices)", "utilisation", "peak out-buffer"],
        rows,
        title="Pipeline simulation",
    )
    summary = "\n".join([
        f"samples              : {result.num_samples}",
        f"makespan             : {result.makespan_slices} slices "
        f"({result.makespan * 1e6:.2f} us)",
        f"first-sample latency : {result.sample_latency_slices(0)} slices",
        f"steady interval      : {result.steady_interval_slices():.2f} slices",
        f"throughput           : {result.throughput():.0f} samples/s",
    ])
    return table + "\n" + summary
