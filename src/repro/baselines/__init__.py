"""Baseline ReRAM PIM designs (paper Table I / Table II comparators).

Each baseline implements the common :class:`~repro.baselines.base.PIMDesign`
interface — a functional MVM model (with the design's characteristic
quantisation/noise) plus power, latency and area budgets assembled from
the shared 65 nm component library:

* :mod:`repro.baselines.level` — level-based designs with DAC/ADC
  interfaces (refs [14, 17]).
* :mod:`repro.baselines.rate` — rate-coding spiking designs
  (refs [11, 13]).
* :mod:`repro.baselines.pwm` — the PWM time-domain design (ref [15]).
* :mod:`repro.baselines.resipe_design` — ReSiPE wrapped in the same
  interface.
* :mod:`repro.baselines.registry` — the Table I taxonomy and design
  factory.
"""

from .base import PIMDesign, DesignMetrics
from .level import LevelBasedPIM
from .rate import RateCodingPIM
from .pwm import PWMBasedPIM
from .resipe_design import ReSiPEDesign
from .registry import all_designs, design_taxonomy, TaxonomyRow

__all__ = [
    "PIMDesign",
    "DesignMetrics",
    "LevelBasedPIM",
    "RateCodingPIM",
    "PWMBasedPIM",
    "ReSiPEDesign",
    "all_designs",
    "design_taxonomy",
    "TaxonomyRow",
]
