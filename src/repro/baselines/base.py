"""Common interface for compared PIM designs.

Table II compares four designs on power, power efficiency, latency and
area under "the same array sizes ... fully utilized".  :class:`PIMDesign`
fixes the accounting so every design is measured identically:

* **ops per MVM** = ``2 · rows · cols`` (one multiply + one add per cell);
* **latency** = time from input availability to output availability for
  one MVM;
* **initiation interval** = time between MVM launches on one engine
  (designs that double-buffer stream inputs while converting outputs
  have II < latency);
* **throughput** = ops / initiation interval;
* **power efficiency** = throughput / power.

Functional fidelity: :meth:`PIMDesign.mvm_values` computes ``x @ W``
through the design's characteristic signal chain (quantisation, spike
counting, time quantisation, ...) so accuracy comparisons are possible
on top of the same numbers the energy model uses.
"""

from __future__ import annotations

import abc
import dataclasses

import numpy as np

from ..energy.model import PowerReport
from ..errors import ShapeError

__all__ = ["PIMDesign", "DesignMetrics"]


@dataclasses.dataclass(frozen=True)
class DesignMetrics:
    """Headline Table II row for one design.

    Attributes
    ----------
    name / data_format:
        Identification.
    power:
        Average power (watts).
    latency:
        Per-MVM latency (seconds).
    initiation_interval:
        Time between MVM launches (seconds).
    area:
        Total area (m²).
    throughput:
        Operations per second.
    power_efficiency:
        Operations per second per watt.
    """

    name: str
    data_format: str
    power: float
    latency: float
    initiation_interval: float
    area: float
    throughput: float
    power_efficiency: float


class PIMDesign(abc.ABC):
    """Abstract compared design on a ``rows × cols`` crossbar."""

    #: Human-readable design name (e.g. ``"rate-coding [11,13]"``).
    name: str = "abstract"
    #: Data-format label for the Table I taxonomy.
    data_format: str = "abstract"

    def __init__(self, rows: int, cols: int) -> None:
        if rows < 1 or cols < 1:
            raise ShapeError(f"array dimensions must be >= 1, got {rows}x{cols}")
        self.rows = rows
        self.cols = cols

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def ops_per_mvm(self) -> int:
        """MAC operations per MVM (2 per cell)."""
        return 2 * self.rows * self.cols

    @property
    @abc.abstractmethod
    def latency(self) -> float:
        """Per-MVM latency (seconds)."""

    @property
    def initiation_interval(self) -> float:
        """Time between MVM launches (defaults to the latency)."""
        return self.latency

    @abc.abstractmethod
    def budget(self) -> PowerReport:
        """Power/area budget assembled from the component library."""

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------
    @property
    def power(self) -> float:
        """Average power (watts)."""
        return self.budget().total_power

    @property
    def area(self) -> float:
        """Total area (m²)."""
        return self.budget().total_area

    @property
    def throughput(self) -> float:
        """Steady-state operations per second."""
        return self.ops_per_mvm() / self.initiation_interval

    @property
    def power_efficiency(self) -> float:
        """Operations per second per watt."""
        return self.throughput / self.power

    def metrics(self) -> DesignMetrics:
        """Snapshot all headline metrics."""
        return DesignMetrics(
            name=self.name,
            data_format=self.data_format,
            power=self.power,
            latency=self.latency,
            initiation_interval=self.initiation_interval,
            area=self.area,
            throughput=self.throughput,
            power_efficiency=self.power_efficiency,
        )

    # ------------------------------------------------------------------
    # Functional model
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def mvm_values(self, x: np.ndarray, weights: np.ndarray) -> np.ndarray:
        """Compute ``x @ weights`` through the design's signal chain.

        ``x`` is ``(rows,)`` or ``(batch, rows)`` in ``[0, 1]``;
        ``weights`` is ``(rows, cols)`` in ``[0, 1]``.
        """

    def _check_mvm_args(self, x: np.ndarray, weights: np.ndarray) -> None:
        w = np.asarray(weights)
        if w.shape != (self.rows, self.cols):
            raise ShapeError(
                f"weights shape {w.shape} does not match design array "
                f"{self.rows}x{self.cols}"
            )
        xx = np.asarray(x)
        if xx.shape[-1] != self.rows:
            raise ShapeError(
                f"input length {xx.shape[-1]} does not match rows {self.rows}"
            )
