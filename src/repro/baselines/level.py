"""Level-based ReRAM PIM baseline (paper refs [14, 17]).

Inputs are converted to analog wordline *voltage levels* by per-row
DACs, applied for the whole conversion window, and bitline results are
digitised by column ADCs.  Characteristics modelled:

* fast conversion (high-speed DAC/ADC — the reason the paper's latency
  comparison shows little ReSiPE speedup over this class);
* power- and area-hungry mixed-signal interface (the ADC bank dominates
  both budgets, driving the paper's 85.3 % area-saving claim);
* continuous wordline drive for the full window (the "non-zero voltage
  applying duration: long" row of Table I), so crossbar ohmic energy is
  orders of magnitude above ReSiPE's 1 ns computation stage;
* input/output quantisation at the DAC/ADC resolutions.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from ..energy.components import get_component
from ..energy.model import DesignBudget, PowerReport
from ..energy.technology import TechnologyParameters
from ..errors import ConfigurationError
from ..units import NANO
from .base import PIMDesign

__all__ = ["LevelBasedPIM"]


class LevelBasedPIM(PIMDesign):
    """DAC/ADC level-based design on a ``rows × cols`` crossbar.

    Parameters
    ----------
    rows, cols:
        Array dimensions.
    dac_bits / adc_bits:
        Interface resolutions (6/8 bits follow the ISAAC-class setups).
    adc_share:
        Columns served by one time-multiplexed ADC.
    conversion_time:
        Per-MVM latency (seconds); 100 ns at the paper's 1 GHz
        calibration with pipelined conversion.
    read_voltage:
        Full-scale wordline voltage (volts); level designs read at
        reduced voltage to limit disturb.
    mean_cell_conductance:
        Average programmed conductance (siemens).
    input_mean_square:
        ``E[x²]`` of the workload in normalised units.
    """

    name = "level-based [14,17]"
    data_format = "voltage level"

    def __init__(
        self,
        rows: int = 32,
        cols: int = 32,
        dac_bits: int = 6,
        adc_bits: int = 8,
        adc_share: int = 8,
        conversion_time: float = 100 * NANO,
        read_voltage: float = 0.2,
        mean_cell_conductance: float = 0.5 * (1 / 50e3 + 1 / 1e6),
        input_mean_square: float = 1.0 / 3.0,
        tech: TechnologyParameters = TechnologyParameters.tsmc65(),
    ) -> None:
        super().__init__(rows, cols)
        if dac_bits < 1 or adc_bits < 1:
            raise ConfigurationError("converter resolutions must be >= 1 bit")
        if adc_share < 1:
            raise ConfigurationError("adc_share must be >= 1")
        if conversion_time <= 0 or read_voltage <= 0:
            raise ConfigurationError("conversion time and read voltage must be positive")
        self.dac_bits = dac_bits
        self.adc_bits = adc_bits
        self.adc_share = adc_share
        self.conversion_time = conversion_time
        self.read_voltage = read_voltage
        self.mean_cell_conductance = mean_cell_conductance
        self.input_mean_square = input_mean_square
        self.tech = tech

    # ------------------------------------------------------------------
    @property
    def latency(self) -> float:
        return self.conversion_time

    @property
    def num_adcs(self) -> int:
        """ADC instances (columns / share, rounded up)."""
        return -(-self.cols // self.adc_share)

    def budget(self) -> PowerReport:
        b = DesignBudget(self.name)
        b.add_component("column ADCs", "interface", get_component("sar_adc_8b"),
                        count=self.num_adcs, duty=1.0)
        b.add_component("row DACs", "interface", get_component("dac_6b_row"),
                        count=self.rows, duty=1.0)
        b.add_component("row S/H", "interface", get_component("sample_hold"),
                        count=self.rows, duty=1.0)
        b.add_component("WL buffers", "drivers", get_component("wordline_driver"),
                        count=self.rows, duty=1.0)
        # Wordlines are driven for the entire conversion window.
        crossbar_power = (
            self.input_mean_square
            * self.read_voltage**2
            * self.mean_cell_conductance
            * self.rows
            * self.cols
        )
        b.add_raw("array compute", "crossbar", power=crossbar_power,
                  area=self.tech.crossbar_area(self.rows, self.cols))
        b.add_component("sequencer", "control", get_component("control_logic"),
                        count=1, duty=1.0)
        return b.report()

    # ------------------------------------------------------------------
    def quantise_inputs(self, x: np.ndarray) -> np.ndarray:
        """DAC quantisation of normalised inputs."""
        levels = 2**self.dac_bits - 1
        return np.round(np.clip(np.asarray(x, dtype=float), 0, 1) * levels) / levels

    def quantise_outputs(self, y: np.ndarray) -> np.ndarray:
        """ADC quantisation of column results.

        Full scale is the worst-case column sum (``rows``), the standard
        conservative sizing; results are clipped there.
        """
        full_scale = float(self.rows)
        levels = 2**self.adc_bits - 1
        clipped = np.clip(np.asarray(y, dtype=float), 0, full_scale)
        return np.round(clipped / full_scale * levels) / levels * full_scale

    def mvm_values(
        self, x: np.ndarray, weights: np.ndarray
    ) -> Union[np.ndarray, float]:
        """``x @ weights`` through DAC → crossbar → ADC."""
        self._check_mvm_args(x, weights)
        x_q = self.quantise_inputs(x)
        y = x_q @ np.asarray(weights, dtype=float)
        return self.quantise_outputs(y)
