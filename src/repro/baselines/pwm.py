"""PWM-based ReRAM PIM baseline (paper ref [15], Jiang et al. ISCAS'18).

A datum is the *width* of a single wordline pulse.  Characteristics
modelled:

* per-row PWM modulators (ramp + comparator per row — more hardware than
  the shared ReSiPE ramp);
* long non-zero-voltage drive: the wordline is held high for a duration
  proportional to the value, so crossbar energy scales with the data
  (like level/rate designs, unlike ReSiPE);
* the output is still analog charge and "the work still requires ADC to
  generate output data" — an ADC bank identical to the level design's;
* the longest latency of the compared designs (pulse window plus
  conversion), per the paper's 68.8 % latency-reduction claim.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from ..energy.components import get_component
from ..energy.model import DesignBudget, PowerReport
from ..energy.technology import TechnologyParameters
from ..errors import ConfigurationError
from ..units import NANO
from .base import PIMDesign

__all__ = ["PWMBasedPIM"]


class PWMBasedPIM(PIMDesign):
    """PWM time-domain design on a ``rows × cols`` crossbar.

    Parameters
    ----------
    rows, cols:
        Array dimensions.
    pulse_window:
        Maximum pulse width = full-scale value (seconds).
    conversion_time:
        Output ADC conversion phase appended after the pulse window.
    clock:
        Time-quantisation clock for pulse widths (hertz).
    pulse_voltage:
        Wordline drive level (volts).
    adc_bits / adc_share:
        Output converter resolution and column multiplexing.
    """

    name = "PWM-based [15]"
    data_format = "pulse width"

    def __init__(
        self,
        rows: int = 32,
        cols: int = 32,
        pulse_window: float = 320e-9,
        conversion_time: float = 320 * NANO,
        clock: float = 1e9,
        pulse_voltage: float = 1.0,
        adc_bits: int = 8,
        adc_share: int = 8,
        mean_cell_conductance: float = 0.5 * (1 / 50e3 + 1 / 1e6),
        mean_input: float = 0.5,
        tech: TechnologyParameters = TechnologyParameters.tsmc65(),
    ) -> None:
        super().__init__(rows, cols)
        if pulse_window <= 0 or conversion_time < 0:
            raise ConfigurationError("pulse window must be positive")
        if clock <= 0 or pulse_voltage <= 0:
            raise ConfigurationError("clock and pulse voltage must be positive")
        if adc_bits < 1 or adc_share < 1:
            raise ConfigurationError("ADC parameters must be >= 1")
        if not 0 <= mean_input <= 1:
            raise ConfigurationError("mean_input must be in [0, 1]")
        self.pulse_window = pulse_window
        self.conversion_time = conversion_time
        self.clock = clock
        self.pulse_voltage = pulse_voltage
        self.adc_bits = adc_bits
        self.adc_share = adc_share
        self.mean_cell_conductance = mean_cell_conductance
        self.mean_input = mean_input
        self.tech = tech

    # ------------------------------------------------------------------
    @property
    def latency(self) -> float:
        return self.pulse_window + self.conversion_time

    @property
    def num_adcs(self) -> int:
        """ADC instances (columns / share, rounded up)."""
        return -(-self.cols // self.adc_share)

    @property
    def time_levels(self) -> int:
        """Distinct pulse widths representable at the quantisation clock."""
        return max(1, int(round(self.pulse_window * self.clock)))

    def wordline_activity(self) -> float:
        """Mean fraction of the latency each wordline is driven:
        ``E[x] · pulse_window / latency``."""
        return self.mean_input * self.pulse_window / self.latency

    def budget(self) -> PowerReport:
        b = DesignBudget(self.name)
        b.add_component("row PWM modulators", "time interface",
                        get_component("pwm_modulator"), count=self.rows,
                        duty=self.pulse_window / self.latency)
        b.add_component("column ADCs", "interface", get_component("sar_adc_8b"),
                        count=self.num_adcs, duty=1.0)
        b.add_component("column S/H", "interface", get_component("sample_hold"),
                        count=self.cols, duty=1.0)
        crossbar_power = (
            self.wordline_activity()
            * self.pulse_voltage**2
            * self.mean_cell_conductance
            * self.rows
            * self.cols
        )
        b.add_raw("array compute", "crossbar", power=crossbar_power,
                  area=self.tech.crossbar_area(self.rows, self.cols))
        b.add_component("sequencer", "control", get_component("control_logic"),
                        count=1, duty=1.0)
        return b.report()

    # ------------------------------------------------------------------
    def quantise_inputs(self, x: np.ndarray) -> np.ndarray:
        """Pulse-width (time) quantisation of normalised inputs."""
        levels = self.time_levels
        return np.round(np.clip(np.asarray(x, dtype=float), 0, 1) * levels) / levels

    def quantise_outputs(self, y: np.ndarray) -> np.ndarray:
        """ADC quantisation of the integrated column charge."""
        full_scale = float(self.rows)
        levels = 2**self.adc_bits - 1
        clipped = np.clip(np.asarray(y, dtype=float), 0, full_scale)
        return np.round(clipped / full_scale * levels) / levels * full_scale

    def mvm_values(
        self, x: np.ndarray, weights: np.ndarray
    ) -> Union[np.ndarray, float]:
        """``x @ weights`` through PWM encode → charge integration → ADC."""
        self._check_mvm_args(x, weights)
        x_q = self.quantise_inputs(x)
        y = x_q @ np.asarray(weights, dtype=float)
        return self.quantise_outputs(y)
