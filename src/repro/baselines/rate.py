"""Rate-coding spiking ReRAM PIM baseline (paper refs [11, 13]).

A datum is a *spike train*: its value is the spike count over a fixed
window.  Characteristics modelled:

* per-row spike modulators and per-column integrate-and-fire neurons
  plus counters;
* crossbar driven by spike pulses — wordline activity (and therefore
  ohmic energy) scales with the encoded values, the energy coupling the
  single-spiking format removes;
* inherent quantisation error from the finite spike budget (the reason
  "rate-coding based designs ... usually prolong the computing period
  for ensuring satisfactory performance");
* a 2× longer window than ReSiPE's two slices (the paper's 50 % latency
  reduction), with input streaming double-buffered against output
  counting so the initiation interval is half the window.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..energy.components import get_component
from ..energy.model import DesignBudget, PowerReport
from ..energy.technology import TechnologyParameters
from ..errors import ConfigurationError
from ..units import NANO
from .base import PIMDesign

__all__ = ["RateCodingPIM"]


class RateCodingPIM(PIMDesign):
    """Rate-coding design on a ``rows × cols`` crossbar.

    Parameters
    ----------
    rows, cols:
        Array dimensions.
    window:
        Spike-train window per MVM (seconds); 400 ns = 2× the ReSiPE
        latency per the paper's comparison.
    max_spikes:
        Full-scale spike count per datum.
    spike_width / spike_voltage:
        Drive pulse parameters.
    stochastic:
        ``True`` draws Bernoulli spike trains (Poisson-like coding),
        ``False`` uses deterministic rounding of the count.
    """

    name = "rate-coding [11,13]"
    data_format = "spike rate"

    def __init__(
        self,
        rows: int = 32,
        cols: int = 32,
        window: float = 400e-9,
        max_spikes: int = 128,
        spike_width: float = 1 * NANO,
        spike_voltage: float = 0.4,
        stochastic: bool = False,
        mean_cell_conductance: float = 0.5 * (1 / 50e3 + 1 / 1e6),
        mean_input: float = 0.5,
        tech: TechnologyParameters = TechnologyParameters.tsmc65(),
    ) -> None:
        super().__init__(rows, cols)
        if window <= 0 or spike_width <= 0 or spike_voltage <= 0:
            raise ConfigurationError("window, spike width and voltage must be positive")
        if max_spikes < 1:
            raise ConfigurationError("max_spikes must be >= 1")
        if max_spikes * spike_width > window:
            raise ConfigurationError(
                f"{max_spikes} spikes of {spike_width}s do not fit in "
                f"a {window}s window"
            )
        if not 0 <= mean_input <= 1:
            raise ConfigurationError("mean_input must be in [0, 1]")
        self.window = window
        self.max_spikes = max_spikes
        self.spike_width = spike_width
        self.spike_voltage = spike_voltage
        self.stochastic = stochastic
        self.mean_cell_conductance = mean_cell_conductance
        self.mean_input = mean_input
        self.tech = tech

    # ------------------------------------------------------------------
    @property
    def latency(self) -> float:
        return self.window

    @property
    def initiation_interval(self) -> float:
        """Input streaming of sample k+1 overlaps output counting of
        sample k (double buffering), so launches come every half window."""
        return self.window / 2.0

    def wordline_activity(self) -> float:
        """Mean fraction of the window each wordline is driven high:
        ``E[x] · max_spikes · spike_width / window``."""
        return self.mean_input * self.max_spikes * self.spike_width / self.window

    def budget(self) -> PowerReport:
        b = DesignBudget(self.name)
        b.add_component("row spike modulators", "spike interface",
                        get_component("spike_modulator"), count=self.rows, duty=1.0)
        b.add_component("column IF neurons", "spike interface",
                        get_component("if_neuron"), count=self.cols, duty=1.0)
        b.add_component("column counters", "spike interface",
                        get_component("output_counter"), count=self.cols, duty=1.0)
        crossbar_power = (
            self.wordline_activity()
            * self.spike_voltage**2
            * self.mean_cell_conductance
            * self.rows
            * self.cols
        )
        b.add_raw("array compute", "crossbar", power=crossbar_power,
                  area=self.tech.crossbar_area(self.rows, self.cols))
        b.add_component("sequencer", "control", get_component("control_logic"),
                        count=1, duty=1.0)
        return b.report()

    # ------------------------------------------------------------------
    def encode_counts(
        self, x: np.ndarray, rng: Optional[np.random.Generator] = None
    ) -> np.ndarray:
        """Spike counts representing normalised inputs."""
        xv = np.clip(np.asarray(x, dtype=float), 0, 1)
        if self.stochastic:
            if rng is None:
                raise ConfigurationError("stochastic coding requires an rng")
            return rng.binomial(self.max_spikes, xv).astype(float)
        return np.round(xv * self.max_spikes)

    def mvm_values(
        self,
        x: np.ndarray,
        weights: np.ndarray,
        rng: Optional[np.random.Generator] = None,
    ) -> Union[np.ndarray, float]:
        """``x @ weights`` through spike counting.

        Input values are quantised to spike counts; the output neuron
        accumulates weighted charge and emits spikes counted at the same
        resolution (counts are re-quantised to integers at full scale
        ``rows · max_spikes``, mirroring the output counter).
        """
        self._check_mvm_args(x, weights)
        counts = self.encode_counts(x, rng)
        w = np.asarray(weights, dtype=float)
        accumulated = counts @ w  # in "spike" units
        # The output path emits an integer number of spikes.
        out_counts = np.round(accumulated)
        return out_counts / self.max_spikes
