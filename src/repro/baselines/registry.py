"""Design factory and the Table I data-format taxonomy.

:func:`all_designs` instantiates the four compared designs on a common
array size (the Table II protocol: "the same array sizes of ReRAM
devices are fully utilized").  :func:`design_taxonomy` reproduces the
qualitative Table I rows.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

from .base import PIMDesign
from .level import LevelBasedPIM
from .pwm import PWMBasedPIM
from .rate import RateCodingPIM
from .resipe_design import ReSiPEDesign

__all__ = ["all_designs", "design_taxonomy", "TaxonomyRow"]


def all_designs(rows: int = 32, cols: int = 32) -> Dict[str, PIMDesign]:
    """The four Table II designs on a ``rows × cols`` array."""
    designs: List[PIMDesign] = [
        LevelBasedPIM(rows, cols),
        PWMBasedPIM(rows, cols),
        RateCodingPIM(rows, cols),
        ReSiPEDesign(rows, cols),
    ]
    return {d.name: d for d in designs}


@dataclasses.dataclass(frozen=True)
class TaxonomyRow:
    """One column of the paper's Table I.

    Attributes mirror the table rows: data-format family, interface
    circuit, how long wordlines carry non-zero voltage, whether input
    and output use the same representation, and the latency class.
    """

    family: str
    shape: str
    interface_circuit: str
    nonzero_voltage_duration: str
    in_out_scale: str
    latency: str


def design_taxonomy() -> Dict[str, TaxonomyRow]:
    """The Table I taxonomy of ReRAM PIM data formats."""
    return {
        "Level": TaxonomyRow(
            family="voltage level",
            shape="analog amplitude",
            interface_circuit="DAC & ADC",
            nonzero_voltage_duration="long",
            in_out_scale="same",
            latency="fast",
        ),
        "PWM": TaxonomyRow(
            family="pulse width",
            shape="single wide pulse",
            interface_circuit="pulse modulator (+ ADC)",
            nonzero_voltage_duration="medium",
            in_out_scale="same",
            latency="medium",
        ),
        "Rate coding": TaxonomyRow(
            family="spike rate",
            shape="spike series",
            interface_circuit="spike modulator",
            nonzero_voltage_duration="medium",
            in_out_scale="different",
            latency="medium",
        ),
        "Temporal coding": TaxonomyRow(
            family="spike timing (STDP)",
            shape="shaped spikes",
            interface_circuit="neuron circuit",
            nonzero_voltage_duration="medium",
            in_out_scale="same",
            latency="slow",
        ),
        "This work": TaxonomyRow(
            family="single spike",
            shape="one narrow pulse",
            interface_circuit="ReSiPE (GD + COG)",
            nonzero_voltage_duration="short",
            in_out_scale="same",
            latency="medium",
        ),
    }
