"""ReSiPE wrapped in the common :class:`PIMDesign` comparison interface.

Functional evaluation delegates to :class:`repro.core.engine.ReSiPEEngine`
(exact circuit equations); power/latency/area delegate to
:class:`repro.core.power.ReSiPEPowerModel`.  This is the row labelled
"This work" in Tables I and II.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Union

import numpy as np

from ..config import CircuitParameters
from ..core.engine import ReSiPEEngine
from ..core.mvm import MVMMode
from ..core.power import ReSiPEPowerModel
from ..energy.model import PowerReport
from ..energy.technology import TechnologyParameters
from .base import PIMDesign

__all__ = ["ReSiPEDesign"]


class ReSiPEDesign(PIMDesign):
    """The proposed single-spiking design under comparison accounting.

    Parameters
    ----------
    rows, cols:
        Array dimensions (the params' own rows/cols are overridden).
    params:
        Circuit operating point for the *power/latency/area* model;
        defaults to the paper-literal values, which is what the Table II
        comparison is calibrated at.
    functional_params:
        Operating point for the *functional* MVM model; defaults to the
        calibrated point (the paper-literal gain ``Δt/C_cog`` pushes
        typical column sums past the slice, which the accuracy studies
        avoid by calibration — see DESIGN.md §1).
    mode:
        Fidelity of the functional model (LINEAR by default here: the
        comparison isolates architecture effects, while Fig. 5/Fig. 7
        study the exact non-linear behaviour explicitly).
    """

    name = "ReSiPE (this work)"
    data_format = "single spike"

    def __init__(
        self,
        rows: int = 32,
        cols: int = 32,
        params: Optional[CircuitParameters] = None,
        functional_params: Optional[CircuitParameters] = None,
        mode: MVMMode = MVMMode.LINEAR,
        tech: TechnologyParameters = TechnologyParameters.tsmc65(),
        input_mean_square: float = 1.0 / 3.0,
    ) -> None:
        super().__init__(rows, cols)
        base = params if params is not None else CircuitParameters.paper()
        self.params = dataclasses.replace(base, rows=rows, cols=cols)
        functional = (
            functional_params
            if functional_params is not None
            else CircuitParameters.calibrated()
        )
        self.functional_params = dataclasses.replace(functional, rows=rows, cols=cols)
        self.mode = mode
        self.power_model = ReSiPEPowerModel(
            self.params, tech=tech, input_mean_square=input_mean_square
        )

    # ------------------------------------------------------------------
    @property
    def latency(self) -> float:
        return self.power_model.latency

    @property
    def initiation_interval(self) -> float:
        return self.power_model.initiation_interval

    def budget(self) -> PowerReport:
        return self.power_model.budget()

    def cog_power_share(self) -> float:
        """Fraction of power in the COG cluster (paper: 98.1 %)."""
        return self.power_model.cog_power_share()

    # ------------------------------------------------------------------
    def mvm_values(
        self, x: np.ndarray, weights: np.ndarray
    ) -> Union[np.ndarray, float]:
        """``x @ weights`` through the single-spiking engine."""
        self._check_mvm_args(x, weights)
        engine = ReSiPEEngine.from_normalised_weights(
            np.asarray(weights, dtype=float), self.functional_params, mode=self.mode
        )
        # The engine's native weight scale is G/g_max, which compresses
        # [0,1] weights into [g_min/g_max, 1]; undo the affine map so all
        # designs compute against identical nominal weights.
        g_min = engine.array.spec.g_min
        g_max = engine.array.spec.g_max
        y = np.asarray(engine.mvm_values(np.asarray(x, dtype=float)), dtype=float)
        offset_ratio = g_min / g_max
        x_sum = np.asarray(x, dtype=float).sum(axis=-1)
        corrected = (y - np.expand_dims(x_sum, -1) * offset_ratio) / (1 - offset_ratio)
        return corrected
