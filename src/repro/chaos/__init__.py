"""Infrastructure chaos harness for the serving stack.

The robustness analogue of :mod:`repro.faults`, one layer up: instead
of flipping device bits, these injectors break the *infrastructure* —
forward passes that raise or hang, model artifacts corrupt at load
time, connections dropped mid-exchange — so that the resilience layer
(deadline shedding, circuit breaker, compute-pool rebuild, registry
failure isolation; see ``docs/resilience.md``) is proven by test, not
assumed.  Activate from the CLI with ``repro serve --chaos SPEC`` or
compose plans programmatically / via the ``tests/chaos`` fixtures.
"""

from .injectors import (
    ChaosFault,
    ChaosPlan,
    ComputeExceptionInjector,
    ConnectionDropInjector,
    Injector,
    LatencySpikeInjector,
    RegistryCorruptionInjector,
)
from .spec import INJECTOR_CATALOGUE, parse_chaos_spec

__all__ = [
    "ChaosFault",
    "ChaosPlan",
    "ComputeExceptionInjector",
    "ConnectionDropInjector",
    "INJECTOR_CATALOGUE",
    "Injector",
    "LatencySpikeInjector",
    "RegistryCorruptionInjector",
    "parse_chaos_spec",
]
