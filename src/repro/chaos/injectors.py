"""Seeded, composable infrastructure fault injectors.

Where :mod:`repro.faults` injects *device* faults (stuck-at cells,
conductance drift, wear) into the simulated crossbars, this module
injects *infrastructure* faults into the serving stack itself: a
forward pass that raises, a forward pass that hangs past the compute
timeout, a model artifact that is corrupt at registry-load time, and a
TCP connection that dies before the response.  Robustness is measured
by injecting the fault, not by hoping — the chaos suite in
``tests/chaos/`` asserts the daemon survives every scenario with zero
hung requests, the documented error taxonomy, and byte-identical
post-recovery predictions.

Every injector is deterministic: window injectors (``after``/
``count``) fire on an exact range of matching events, probabilistic
ones (``p``/``seed``) draw from their own seeded
:class:`numpy.random.Generator` — two runs of the same spec inject the
same faults at the same points.

Injectors are composed into a :class:`ChaosPlan`, which is what the
serving stack actually calls:

``before_compute(model)``
    From the compute thread, just before a batch's forward pass.  May
    raise (compute-exception) or sleep (latency-spike).
``drop_connection(index)``
    From the HTTP front end, once per accepted connection.  ``True``
    means "kill the socket without a response".
``on_model_load(name)``
    From :meth:`repro.serving.registry.ModelRegistry.build`, before
    each model loads.  May corrupt the model's cached artifacts on
    disk (the store must quarantine and retrain) or raise outright
    (the registry must mark the model failed and keep the daemon up).
"""

from __future__ import annotations

import glob
import os
import threading
import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import ArtifactError, ConfigurationError

__all__ = [
    "ChaosFault",
    "Injector",
    "ComputeExceptionInjector",
    "LatencySpikeInjector",
    "RegistryCorruptionInjector",
    "ConnectionDropInjector",
    "ChaosPlan",
]


class ChaosFault(RuntimeError):
    """The exception injected for a simulated compute failure.

    Deliberately *outside* the :mod:`repro.errors` taxonomy: it stands
    in for an arbitrary model/library bug, so it must exercise the
    serving stack's generic-exception path (HTTP 500, breaker failure
    accounting), not a domain-specific handler.
    """


class Injector:
    """Base injector: every hook is a no-op; subclasses override one.

    ``after``/``count`` give window injectors a half-open firing range
    over their matching events: event indices ``[after, after+count)``
    fire.  ``model`` (where it applies) restricts matching to one
    model name; ``None`` matches all.
    """

    name = "injector"

    def __init__(self, after: int = 0, count: int = 1) -> None:
        if after < 0 or count < 0:
            raise ConfigurationError(
                f"chaos window needs after >= 0 and count >= 0, got "
                f"after={after!r} count={count!r}"
            )
        self.after = after
        self.count = count
        self._events = 0
        self.fired = 0

    def _window_hit(self) -> bool:
        """Advance this injector's event counter; True inside the
        firing window."""
        index = self._events
        self._events += 1
        hit = self.after <= index < self.after + self.count
        if hit:
            self.fired += 1
        return hit

    # hooks -------------------------------------------------------------
    def before_compute(self, model: str) -> Optional[float]:
        """Called on the compute thread before a batch's forward.

        May raise; may return a stall in seconds, which the plan
        sleeps *after* releasing its lock (so a latency spike on the
        compute thread can never block the event-loop hooks).
        """
        return None

    def drop_connection(self, index: int) -> bool:
        """Called once per accepted connection; True drops it."""
        return False

    def on_model_load(self, name: str) -> None:
        """Called before one model loads at registry build time."""

    def describe(self) -> str:
        return f"{self.name}(after={self.after}, count={self.count})"


class ComputeExceptionInjector(Injector):
    """Raise :class:`ChaosFault` from selected forward passes."""

    name = "compute-exception"

    def __init__(self, model: Optional[str] = None,
                 after: int = 0, count: int = 1) -> None:
        super().__init__(after=after, count=count)
        self.model = model

    def before_compute(self, model: str) -> None:
        if self.model not in (None, model):
            return
        if self._window_hit():
            raise ChaosFault(
                f"chaos: injected compute exception for model {model!r} "
                f"(window {self.after}+{self.count})"
            )


class LatencySpikeInjector(Injector):
    """Stall selected forward passes by ``delay_s`` seconds.

    With a delay beyond the daemon's ``compute_timeout_s`` this is the
    hung-forward-pass scenario: the batch must be failed with a 503
    and the compute pool rebuilt.
    """

    name = "latency-spike"

    def __init__(self, delay_s: float, model: Optional[str] = None,
                 after: int = 0, count: int = 1) -> None:
        super().__init__(after=after, count=count)
        if delay_s < 0:
            raise ConfigurationError(
                f"latency spike needs delay_s >= 0, got {delay_s!r}"
            )
        self.delay_s = delay_s
        self.model = model

    def before_compute(self, model: str) -> Optional[float]:
        if self.model not in (None, model):
            return None
        if self._window_hit():
            return self.delay_s
        return None

    def describe(self) -> str:
        return (f"{self.name}(delay_s={self.delay_s:g}, "
                f"after={self.after}, count={self.count})")


class RegistryCorruptionInjector(Injector):
    """Sabotage a model's load: corrupt its cached artifacts or fail it.

    ``mode="corrupt"`` truncates every cached artifact matching
    ``<model>-*`` under the model cache directory (via
    :func:`os.truncate`, so no new file content is invented) — the
    artifact store must detect the damage, quarantine the entries and
    retrain.  ``mode="fail"`` raises
    :class:`~repro.errors.ArtifactError` outright — the registry must
    mark the model *failed* and the daemon must answer 503 for it
    while serving its other models.
    """

    name = "registry-corruption"
    _MODES = ("corrupt", "fail")

    def __init__(self, model: Optional[str] = None, mode: str = "corrupt",
                 cache_dir: Optional[str] = None) -> None:
        super().__init__(after=0, count=1)
        if mode not in self._MODES:
            raise ConfigurationError(
                f"registry-corruption mode must be one of {self._MODES}, "
                f"got {mode!r}"
            )
        self.model = model
        self.mode = mode
        self.cache_dir = cache_dir

    def on_model_load(self, name: str) -> None:
        if self.model not in (None, name):
            return
        self.fired += 1
        if self.mode == "fail":
            raise ArtifactError(
                f"chaos: injected registry load failure for model {name!r}"
            )
        cache_dir = self.cache_dir
        if cache_dir is None:
            from ..store import default_model_cache_dir

            cache_dir = default_model_cache_dir()
        for path in sorted(glob.glob(os.path.join(cache_dir, f"{name}-*"))):
            if path.endswith(".corrupt"):
                continue
            try:
                os.truncate(path, 16)
            except OSError:
                pass  # already quarantined/removed under our feet

    def describe(self) -> str:
        return f"{self.name}(model={self.model!r}, mode={self.mode!r})"


class ConnectionDropInjector(Injector):
    """Drop accepted connections, by window or seeded coin-flip.

    With ``p`` set, each connection is dropped independently with
    probability ``p`` drawn from a Generator seeded with ``seed`` —
    the drop pattern is a pure function of the spec and the connection
    order.  Without ``p``, the ``after``/``count`` window applies.
    """

    name = "conn-drop"

    def __init__(self, p: Optional[float] = None, seed: int = 0,
                 after: int = 0, count: int = 1) -> None:
        super().__init__(after=after, count=count)
        if p is not None and not 0.0 <= p <= 1.0:
            raise ConfigurationError(
                f"conn-drop probability must be in [0, 1], got {p!r}"
            )
        if seed < 0:
            raise ConfigurationError(
                f"conn-drop seed must be >= 0, got {seed!r}"
            )
        self.p = p
        self.seed = seed
        self._rng = np.random.default_rng(seed)

    def drop_connection(self, index: int) -> bool:
        if self.p is not None:
            hit = bool(self._rng.random() < self.p)
            if hit:
                self.fired += 1
            return hit
        return self._window_hit()

    def describe(self) -> str:
        if self.p is not None:
            return f"{self.name}(p={self.p:g}, seed={self.seed})"
        return f"{self.name}(after={self.after}, count={self.count})"


class ChaosPlan:
    """The composition of injectors the serving stack consults.

    Hook calls fan out to every injector in spec order.  The plan is
    thread-safe: ``before_compute`` runs on compute threads,
    ``drop_connection`` on the event loop, ``on_model_load`` at
    startup — a single lock serialises injector state updates so
    seeded streams and window counters stay deterministic even with
    ``compute_workers > 1``.
    """

    def __init__(self, injectors: Sequence[Injector] = ()) -> None:
        self.injectors: List[Injector] = list(injectors)
        self._lock = threading.Lock()
        self._connections = 0
        self._compute_calls: Dict[str, int] = {}

    @property
    def active(self) -> bool:
        return bool(self.injectors)

    def before_compute(self, model: str) -> None:
        stall = 0.0
        with self._lock:
            self._compute_calls[model] = self._compute_calls.get(model, 0) + 1
            for injector in self.injectors:
                delay = injector.before_compute(model)
                if delay:
                    stall += delay
        if stall:
            # Sleep off the lock: a latency spike stalls only its own
            # compute thread, never the event-loop hooks.
            time.sleep(stall)

    def drop_connection(self, index: int) -> bool:
        with self._lock:
            self._connections += 1
            return any(
                injector.drop_connection(index)
                for injector in self.injectors
            )

    def on_model_load(self, name: str) -> None:
        with self._lock:
            for injector in self.injectors:
                injector.on_model_load(name)

    def fired_total(self) -> int:
        """Injections actually delivered (all injectors)."""
        return sum(injector.fired for injector in self.injectors)

    def describe(self) -> str:
        if not self.injectors:
            return "chaos: none"
        return "chaos: " + "; ".join(
            injector.describe() for injector in self.injectors
        )
