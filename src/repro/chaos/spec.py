"""The ``--chaos SPEC`` mini-language.

A spec is a ``;``-separated list of injector clauses; each clause is
an injector name optionally followed by ``:`` and ``,``-separated
``key=value`` options::

    compute-exception:model=mlp-1,after=5,count=3
    latency-spike:ms=400,after=2
    registry-corruption:model=mlp-1,mode=fail
    conn-drop:p=0.1,seed=7
    compute-exception:after=0,count=2;conn-drop:after=3,count=1

Values are coerced ``int`` → ``float`` → ``str`` in that order.
Durations are given in milliseconds (``ms=``) on the CLI surface and
converted to seconds here, matching the other serving knobs.  Unknown
names and options raise
:class:`~repro.errors.ConfigurationError` with the catalogue, so a
typo fails at startup rather than silently injecting nothing.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Tuple

from ..errors import ConfigurationError
from ..units import MILLI
from .injectors import (
    ChaosPlan,
    ComputeExceptionInjector,
    ConnectionDropInjector,
    Injector,
    LatencySpikeInjector,
    RegistryCorruptionInjector,
)

__all__ = ["parse_chaos_spec", "INJECTOR_CATALOGUE"]


def _compute_exception(options: Dict[str, Any]) -> Injector:
    return ComputeExceptionInjector(
        model=options.pop("model", None),
        after=int(options.pop("after", 0)),
        count=int(options.pop("count", 1)),
    )


def _latency_spike(options: Dict[str, Any]) -> Injector:
    if "ms" not in options:
        raise ConfigurationError(
            "latency-spike needs ms=<delay in milliseconds>"
        )
    return LatencySpikeInjector(
        delay_s=float(options.pop("ms")) * MILLI,
        model=options.pop("model", None),
        after=int(options.pop("after", 0)),
        count=int(options.pop("count", 1)),
    )


def _registry_corruption(options: Dict[str, Any]) -> Injector:
    return RegistryCorruptionInjector(
        model=options.pop("model", None),
        mode=str(options.pop("mode", "corrupt")),
        cache_dir=options.pop("cache_dir", None),
    )


def _conn_drop(options: Dict[str, Any]) -> Injector:
    p = options.pop("p", None)
    return ConnectionDropInjector(
        p=None if p is None else float(p),
        seed=int(options.pop("seed", 0)),
        after=int(options.pop("after", 0)),
        count=int(options.pop("count", 1)),
    )


INJECTOR_CATALOGUE: Dict[str, Callable[[Dict[str, Any]], Injector]] = {
    "compute-exception": _compute_exception,
    "latency-spike": _latency_spike,
    "registry-corruption": _registry_corruption,
    "conn-drop": _conn_drop,
}


def _coerce(raw: str) -> Any:
    for cast in (int, float):
        try:
            return cast(raw)
        except ValueError:
            continue
    return raw


def _parse_clause(clause: str) -> Tuple[str, Dict[str, Any]]:
    name, _, tail = clause.partition(":")
    name = name.strip()
    options: Dict[str, Any] = {}
    if tail.strip():
        for pair in tail.split(","):
            key, sep, value = pair.partition("=")
            if not sep or not key.strip():
                raise ConfigurationError(
                    f"malformed chaos option {pair!r} in clause "
                    f"{clause!r}; expected key=value"
                )
            options[key.strip()] = _coerce(value.strip())
    return name, options


def parse_chaos_spec(spec: str) -> ChaosPlan:
    """Parse a ``--chaos`` spec string into a :class:`ChaosPlan`."""
    injectors = []
    for clause in spec.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        name, options = _parse_clause(clause)
        factory = INJECTOR_CATALOGUE.get(name)
        if factory is None:
            raise ConfigurationError(
                f"unknown chaos injector {name!r}; available: "
                f"{sorted(INJECTOR_CATALOGUE)}"
            )
        injector = factory(options)
        if options:
            raise ConfigurationError(
                f"unknown options {sorted(options)} for chaos injector "
                f"{name!r}"
            )
        injectors.append(injector)
    if not injectors:
        raise ConfigurationError(
            f"chaos spec {spec!r} contains no injector clauses"
        )
    return ChaosPlan(injectors)
