"""Analog circuit substrate.

This subpackage replaces the paper's Cadence Virtuoso setup with an exact
semi-analytic toolkit for the class of circuits ReSiPE is built from:

* :mod:`repro.circuits.rc` — closed-form first-order RC responses.
* :mod:`repro.circuits.waveform` — sampled waveforms with arithmetic,
  interpolation and edge/crossing detection.
* :mod:`repro.circuits.spike` — the single-spike and spike-train signal
  types used by every PIM design in the repo.
* :mod:`repro.circuits.transient` — an event-driven piecewise-exponential
  transient simulator (sources, switches, RC nodes, comparators,
  sample-and-holds, pulse shapers).  Exact for first-order networks.
* :mod:`repro.circuits.mna` — a modified-nodal-analysis DC solver used for
  crossbar wire-parasitic (IR-drop) studies.
* :mod:`repro.circuits.components` — element datatypes shared by the
  solvers.
"""

from .rc import (
    rc_charge,
    rc_discharge,
    rc_time_to_reach,
    thevenin,
    TheveninEquivalent,
)
from .spike import SingleSpike, SpikeTrain, NO_SPIKE
from .waveform import Waveform
from .components import Capacitor, CurrentSource, Resistor, VoltageSource
from .mna import DCCircuit, DCSolution
from .transient import (
    Comparator,
    PulseShaper,
    RCNodeSpec,
    SampleHold,
    SwitchSpec,
    TransientEngine,
    TransientResult,
    PiecewiseConstantSource,
)
from .noise import ktc_noise_voltage, minimum_capacitance_for_bits
from .sample_hold import SampleHoldModel
from .comparator import ComparatorModel

__all__ = [
    "rc_charge",
    "rc_discharge",
    "rc_time_to_reach",
    "thevenin",
    "TheveninEquivalent",
    "SingleSpike",
    "SpikeTrain",
    "NO_SPIKE",
    "Waveform",
    "Capacitor",
    "CurrentSource",
    "Resistor",
    "VoltageSource",
    "DCCircuit",
    "DCSolution",
    "Comparator",
    "PulseShaper",
    "RCNodeSpec",
    "SampleHold",
    "SwitchSpec",
    "TransientEngine",
    "TransientResult",
    "PiecewiseConstantSource",
    "ktc_noise_voltage",
    "minimum_capacitance_for_bits",
    "SampleHoldModel",
    "ComparatorModel",
]
