"""Behavioral comparator model with offset and delay.

The single-spiking output stage (paper Section III-B, S2) converts the
held column voltage ``V_out`` into a spike time by comparing it against
the shared ramp.  A real comparator adds an input-referred offset and a
propagation delay; both translate directly into output-timing error, so
accuracy studies can include them in the error stack.
"""

from __future__ import annotations

import dataclasses
from typing import Union

import numpy as np

from ..errors import CircuitError

ArrayLike = Union[float, np.ndarray]

__all__ = ["ComparatorModel"]


@dataclasses.dataclass(frozen=True)
class ComparatorModel:
    """Static comparator error model.

    Attributes
    ----------
    offset:
        Input-referred offset (volts); the effective threshold becomes
        ``neg + offset``.
    delay:
        Propagation delay from input crossing to output edge (seconds).
    offset_sigma:
        Standard deviation for randomised per-instance offsets; use
        :meth:`randomised` to draw a concrete instance.
    """

    offset: float = 0.0
    delay: float = 0.0
    offset_sigma: float = 0.0

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise CircuitError(f"comparator delay must be >= 0, got {self.delay!r}")
        if self.offset_sigma < 0:
            raise CircuitError(f"offset sigma must be >= 0, got {self.offset_sigma!r}")

    def randomised(self, rng: np.random.Generator) -> "ComparatorModel":
        """A concrete instance with offset drawn from N(offset, sigma)."""
        if self.offset_sigma == 0:
            return self
        drawn = float(rng.normal(self.offset, self.offset_sigma))
        return ComparatorModel(offset=drawn, delay=self.delay, offset_sigma=0.0)

    def effective_threshold(self, threshold: ArrayLike) -> ArrayLike:
        """Threshold actually compared against, including offset."""
        out = np.asarray(threshold, dtype=float) + self.offset
        return out if np.ndim(out) else float(out)

    def output_edge_time(self, crossing_time: ArrayLike) -> ArrayLike:
        """Output edge time given the ideal input-crossing time."""
        t = np.asarray(crossing_time, dtype=float)
        out = t + self.delay
        return out if np.ndim(out) else float(out)
