"""Element datatypes shared by the DC (MNA) and transient solvers.

Nodes are identified by strings; the distinguished node ``"gnd"`` is the
reference.  Elements are plain frozen dataclasses so netlists can be
built, inspected and copied trivially.
"""

from __future__ import annotations

import dataclasses

from ..errors import CircuitError

GROUND = "gnd"

__all__ = ["GROUND", "Resistor", "Capacitor", "VoltageSource", "CurrentSource"]


@dataclasses.dataclass(frozen=True)
class Resistor:
    """A two-terminal resistor between ``a`` and ``b``."""

    a: str
    b: str
    resistance: float
    name: str = ""

    def __post_init__(self) -> None:
        if self.resistance <= 0:
            raise CircuitError(
                f"resistor {self.name or '(unnamed)'}: resistance must be "
                f"positive, got {self.resistance!r}"
            )
        if self.a == self.b:
            raise CircuitError(f"resistor {self.name or '(unnamed)'} shorts a node to itself")

    @property
    def conductance(self) -> float:
        return 1.0 / self.resistance


@dataclasses.dataclass(frozen=True)
class Capacitor:
    """A capacitor from node ``a`` to ground (the only form the
    piecewise-exponential transient engine needs)."""

    a: str
    capacitance: float
    initial_voltage: float = 0.0
    name: str = ""

    def __post_init__(self) -> None:
        if self.capacitance <= 0:
            raise CircuitError(
                f"capacitor {self.name or '(unnamed)'}: capacitance must be "
                f"positive, got {self.capacitance!r}"
            )


@dataclasses.dataclass(frozen=True)
class VoltageSource:
    """An ideal voltage source driving node ``pos`` relative to ``neg``."""

    pos: str
    neg: str
    voltage: float
    name: str = ""

    def __post_init__(self) -> None:
        if self.pos == self.neg:
            raise CircuitError(
                f"voltage source {self.name or '(unnamed)'} connects a node to itself"
            )


@dataclasses.dataclass(frozen=True)
class CurrentSource:
    """An ideal current source pushing ``current`` amps from ``neg``
    into ``pos`` (i.e. out of the ``pos`` terminal externally)."""

    pos: str
    neg: str
    current: float
    name: str = ""

    def __post_init__(self) -> None:
        if self.pos == self.neg:
            raise CircuitError(
                f"current source {self.name or '(unnamed)'} connects a node to itself"
            )
