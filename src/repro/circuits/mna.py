"""Modified nodal analysis (MNA) DC solver.

Used by :mod:`repro.reram.nonideal` to compute crossbar bitline currents
in the presence of wire parasitics (IR drop).  The formulation is the
textbook one: unknowns are the non-ground node voltages plus one current
per ideal voltage source,

    [ G   B ] [ v ]   [ i ]
    [ B^T  0 ] [ j ] = [ e ]

solved densely with numpy for small systems and with scipy's sparse LU
for large ones (a 128x128 crossbar with per-segment wire resistance has
~33k nodes).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..errors import CircuitError
from .components import GROUND, CurrentSource, Resistor, VoltageSource

__all__ = ["DCCircuit", "DCSolution"]

_SPARSE_THRESHOLD = 600  # unknowns beyond which we switch to scipy.sparse


@dataclasses.dataclass
class DCSolution:
    """Solved DC operating point.

    Attributes
    ----------
    node_voltages:
        Mapping node name -> voltage (ground included at 0 V).
    source_currents:
        Mapping voltage-source name (or auto index) -> current flowing
        out of the source's positive terminal into the circuit.
    """

    node_voltages: Dict[str, float]
    source_currents: Dict[str, float]

    def voltage(self, node: str) -> float:
        """Voltage of ``node`` (volts)."""
        try:
            return self.node_voltages[node]
        except KeyError:
            raise CircuitError(f"unknown node {node!r}") from None

    def branch_current(self, resistor: Resistor) -> float:
        """Current through ``resistor`` flowing from ``a`` to ``b``."""
        return (self.voltage(resistor.a) - self.voltage(resistor.b)) * resistor.conductance

    def branch_power(self, resistor: Resistor) -> float:
        """Power dissipated in ``resistor`` (watts)."""
        dv = self.voltage(resistor.a) - self.voltage(resistor.b)
        return dv * dv * resistor.conductance


class DCCircuit:
    """A resistive netlist with ideal voltage/current sources."""

    def __init__(self) -> None:
        self._resistors: List[Resistor] = []
        self._vsources: List[VoltageSource] = []
        self._isources: List[CurrentSource] = []

    # ------------------------------------------------------------------
    # Netlist construction
    # ------------------------------------------------------------------
    def add_resistor(self, a: str, b: str, resistance: float, name: str = "") -> Resistor:
        """Add a resistor and return it."""
        r = Resistor(a=a, b=b, resistance=resistance, name=name)
        self._resistors.append(r)
        return r

    def add_voltage_source(
        self, pos: str, voltage: float, neg: str = GROUND, name: str = ""
    ) -> VoltageSource:
        """Add an ideal voltage source and return it."""
        src = VoltageSource(pos=pos, neg=neg, voltage=voltage, name=name)
        self._vsources.append(src)
        return src

    def add_current_source(
        self, pos: str, current: float, neg: str = GROUND, name: str = ""
    ) -> CurrentSource:
        """Add an ideal current source and return it."""
        src = CurrentSource(pos=pos, neg=neg, current=current, name=name)
        self._isources.append(src)
        return src

    @property
    def resistors(self) -> Tuple[Resistor, ...]:
        return tuple(self._resistors)

    @property
    def voltage_sources(self) -> Tuple[VoltageSource, ...]:
        return tuple(self._vsources)

    def nodes(self) -> List[str]:
        """All node names, ground excluded, in first-seen order."""
        seen: Dict[str, None] = {}
        for r in self._resistors:
            for n in (r.a, r.b):
                if n != GROUND:
                    seen.setdefault(n)
        for s in self._vsources:
            for n in (s.pos, s.neg):
                if n != GROUND:
                    seen.setdefault(n)
        for s in self._isources:
            for n in (s.pos, s.neg):
                if n != GROUND:
                    seen.setdefault(n)
        return list(seen)

    # ------------------------------------------------------------------
    # Solve
    # ------------------------------------------------------------------
    def solve(self) -> DCSolution:
        """Assemble and solve the MNA system.

        Raises
        ------
        CircuitError
            If the netlist is empty or the system is singular (typically a
            floating subcircuit with no DC path to a source or ground).
        """
        nodes = self.nodes()
        if not nodes and not self._vsources:
            raise CircuitError("cannot solve an empty circuit")
        index = {name: i for i, name in enumerate(nodes)}
        n = len(nodes)
        m = len(self._vsources)
        size = n + m

        use_sparse = size > _SPARSE_THRESHOLD
        if use_sparse:
            import scipy.sparse as sp
            import scipy.sparse.linalg as spla

            rows: List[int] = []
            cols: List[int] = []
            vals: List[float] = []

            def stamp(i: int, j: int, value: float) -> None:
                rows.append(i)
                cols.append(j)
                vals.append(value)
        else:
            matrix = np.zeros((size, size), dtype=float)

            def stamp(i: int, j: int, value: float) -> None:
                matrix[i, j] += value

        rhs = np.zeros(size, dtype=float)

        for r in self._resistors:
            g = r.conductance
            ia = index.get(r.a)
            ib = index.get(r.b)
            if ia is not None:
                stamp(ia, ia, g)
            if ib is not None:
                stamp(ib, ib, g)
            if ia is not None and ib is not None:
                stamp(ia, ib, -g)
                stamp(ib, ia, -g)

        for k, s in enumerate(self._vsources):
            row = n + k
            ip = index.get(s.pos)
            ineg = index.get(s.neg)
            if ip is not None:
                stamp(ip, row, 1.0)
                stamp(row, ip, 1.0)
            if ineg is not None:
                stamp(ineg, row, -1.0)
                stamp(row, ineg, -1.0)
            rhs[row] = s.voltage

        for s in self._isources:
            ip = index.get(s.pos)
            ineg = index.get(s.neg)
            if ip is not None:
                rhs[ip] += s.current
            if ineg is not None:
                rhs[ineg] -= s.current

        try:
            if use_sparse:
                system = sp.csc_matrix((vals, (rows, cols)), shape=(size, size))
                solution = spla.spsolve(system, rhs)
            else:
                solution = np.linalg.solve(matrix, rhs)
        except Exception as exc:  # singular matrix, etc.
            raise CircuitError(f"MNA solve failed: {exc}") from exc
        if not np.all(np.isfinite(solution)):
            raise CircuitError("MNA solve produced non-finite voltages "
                               "(floating subcircuit?)")

        voltages = {GROUND: 0.0}
        for name, i in index.items():
            voltages[name] = float(solution[i])
        currents: Dict[str, float] = {}
        for k, s in enumerate(self._vsources):
            key = s.name or f"V{k}"
            # MNA convention: the auxiliary unknown is the current flowing
            # from pos through the source to neg inside the source, i.e.
            # INTO the pos terminal from the circuit.  Negate so positive
            # means the source delivers current into the circuit.
            currents[key] = float(-solution[n + k])
        return DCSolution(node_voltages=voltages, source_currents=currents)
