"""Fundamental noise floors of the sampled-analog datapath.

The ReSiPE signal chain samples voltages onto capacitors twice (the
S/H capture in S1 and the C_cog hold after the computation stage), so
its irreducible noise floor is thermal ``kT/C`` noise — the quantity
that ultimately bounds how small the COG capacitors (and hence the
dominant energy term) can scale.  This module provides the standard
expressions and the derived "minimum capacitor for N-bit operation"
sizing rule used by the timing-noise study.
"""

from __future__ import annotations

import math

from ..errors import CircuitError

__all__ = [
    "BOLTZMANN",
    "ktc_noise_voltage",
    "minimum_capacitance_for_snr",
    "minimum_capacitance_for_bits",
    "sampled_noise_charge",
]

#: Boltzmann constant (J/K).
BOLTZMANN = 1.380649e-23

_DEFAULT_T = 300.0  # kelvin


def ktc_noise_voltage(capacitance: float, temperature: float = _DEFAULT_T) -> float:
    """RMS thermal noise voltage sampled onto a capacitor:
    ``sqrt(kT/C)`` (volts).

    >>> round(ktc_noise_voltage(100e-15) * 1e6)  # ~203 uV at 100 fF
    203
    """
    if capacitance <= 0:
        raise CircuitError(f"capacitance must be positive, got {capacitance!r}")
    if temperature <= 0:
        raise CircuitError(f"temperature must be positive, got {temperature!r}")
    return math.sqrt(BOLTZMANN * temperature / capacitance)


def sampled_noise_charge(capacitance: float, temperature: float = _DEFAULT_T) -> float:
    """RMS noise charge of one sampling event, ``sqrt(kTC)`` (coulombs)."""
    if capacitance <= 0:
        raise CircuitError(f"capacitance must be positive, got {capacitance!r}")
    if temperature <= 0:
        raise CircuitError(f"temperature must be positive, got {temperature!r}")
    return math.sqrt(BOLTZMANN * temperature * capacitance)


def minimum_capacitance_for_snr(
    full_scale: float, snr_db: float, temperature: float = _DEFAULT_T
) -> float:
    """Smallest sampling capacitor achieving ``snr_db`` against a
    ``full_scale`` signal swing (farads):

        C_min = kT · 10^(SNR/10) / V_fs²
    """
    if full_scale <= 0:
        raise CircuitError(f"full scale must be positive, got {full_scale!r}")
    return BOLTZMANN * temperature * 10 ** (snr_db / 10.0) / full_scale**2


def minimum_capacitance_for_bits(
    full_scale: float, bits: float, temperature: float = _DEFAULT_T
) -> float:
    """Smallest sampling capacitor supporting ``bits`` of resolution.

    Uses the quantisation-noise-matched criterion: the kT/C noise must
    not exceed the LSB/sqrt(12) quantisation noise of a ``bits``
    converter over the same full scale.  This is the physics behind the
    paper's "smaller MIM capacitors -> further energy reduction" remark
    having a floor.
    """
    if bits <= 0:
        raise CircuitError(f"bits must be positive, got {bits!r}")
    lsb = full_scale / (2**bits)
    q_noise = lsb / math.sqrt(12.0)
    if q_noise <= 0:
        raise CircuitError("quantisation noise underflow")
    return BOLTZMANN * temperature / q_noise**2
