"""Closed-form first-order RC responses.

Every dynamic element in the ReSiPE datapath is a capacitor charged or
discharged through a resistive network, so its trajectory between circuit
events is exactly

    V(t) = V_inf + (V_0 - V_inf) * exp(-t / tau)

These helpers evaluate that solution, invert it (time to reach a target
voltage) and reduce resistive networks to Thevenin equivalents.  They are
vectorised: scalar or array arguments both work.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence, Union

import numpy as np

from ..errors import CircuitError

ArrayLike = Union[float, np.ndarray]

__all__ = [
    "rc_charge",
    "rc_discharge",
    "rc_value",
    "rc_time_to_reach",
    "TheveninEquivalent",
    "thevenin",
]


def rc_value(t: ArrayLike, v0: ArrayLike, v_inf: ArrayLike, tau: ArrayLike) -> ArrayLike:
    """Voltage of a first-order node at time ``t`` after the last event.

    Parameters
    ----------
    t:
        Elapsed time since the initial condition (seconds, >= 0).
    v0:
        Voltage at ``t = 0``.
    v_inf:
        Asymptotic (steady-state) voltage.
    tau:
        Time constant (seconds, > 0).  ``tau = inf`` freezes the node.
    """
    t = np.asarray(t, dtype=float)
    tau_arr = np.asarray(tau, dtype=float)
    if np.any(t < 0):
        raise CircuitError("rc_value requires t >= 0")
    if np.any(tau_arr <= 0):
        raise CircuitError("rc_value requires tau > 0")
    with np.errstate(over="ignore"):
        decay = np.exp(-t / tau_arr)
    result = np.asarray(v_inf + (np.asarray(v0, dtype=float) - v_inf) * decay)
    return result if result.ndim else float(result)


def rc_charge(t: ArrayLike, v_target: ArrayLike, tau: ArrayLike) -> ArrayLike:
    """Charging from 0 V toward ``v_target``: ``v_target (1 - e^{-t/tau})``.

    This is the exact form of the paper's Eq. (1) and Eq. (4).
    """
    return rc_value(t, 0.0, v_target, tau)


def rc_discharge(t: ArrayLike, v0: ArrayLike, tau: ArrayLike) -> ArrayLike:
    """Discharging from ``v0`` toward 0 V: ``v0 e^{-t/tau}``."""
    return rc_value(t, v0, 0.0, tau)


def rc_time_to_reach(
    v_target: ArrayLike, v0: ArrayLike, v_inf: ArrayLike, tau: ArrayLike
) -> ArrayLike:
    """Time for a first-order node to reach ``v_target``.

    Inverts ``V(t) = V_inf + (V_0 - V_inf) e^{-t/tau}``:

        t = tau * ln((V_0 - V_inf) / (V_target - V_inf))

    Returns ``inf`` where the trajectory never reaches the target (the
    target lies beyond the asymptote, or the node starts past it moving
    away).  Returns ``0`` where ``v_target == v0``.
    """
    v_target = np.asarray(v_target, dtype=float)
    v0 = np.asarray(v0, dtype=float)
    v_inf = np.asarray(v_inf, dtype=float)
    tau_arr = np.asarray(tau, dtype=float)
    if np.any(tau_arr <= 0):
        raise CircuitError("rc_time_to_reach requires tau > 0")

    start_gap = v0 - v_inf
    target_gap = v_target - v_inf
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = start_gap / target_gap
        t = tau_arr * np.log(np.abs(ratio))
    # Reachable iff the target sits strictly between v0 and v_inf
    # (inclusive of v0 itself).  Ratio must be >= 1 with matching signs.
    same_side = np.sign(start_gap) == np.sign(target_gap)
    reachable = same_side & (np.abs(start_gap) >= np.abs(target_gap))
    at_start = v_target == v0
    out = np.where(reachable, t, np.inf)
    out = np.where(at_start, 0.0, out)
    out = np.asarray(out, dtype=float)
    return out if out.ndim else float(out)


@dataclasses.dataclass(frozen=True)
class TheveninEquivalent:
    """Thevenin reduction of a resistive divider network.

    Attributes
    ----------
    voltage:
        Open-circuit voltage (volts).
    resistance:
        Equivalent source resistance (ohms).
    """

    voltage: float
    resistance: float

    def tau(self, capacitance: float) -> float:
        """Charging time constant when the equivalent drives a capacitor."""
        if capacitance <= 0:
            raise CircuitError(f"capacitance must be positive, got {capacitance!r}")
        return self.resistance * capacitance


def thevenin(
    voltages: Sequence[float], conductances: Sequence[float]
) -> TheveninEquivalent:
    """Thevenin equivalent of voltage sources driving one node in parallel.

    This is exactly the paper's Eq. (2): wordline voltages ``V_in,i`` drive
    the shared column capacitor through cell conductances ``G_i``::

        V_eq = sum(V_i G_i) / sum(G_i),   R_eq = 1 / sum(G_i)

    Parameters
    ----------
    voltages:
        Source voltages (volts).
    conductances:
        Series conductance of each source branch (siemens, > 0 each;
        zero-conductance branches may be passed and are ignored).
    """
    v = np.asarray(voltages, dtype=float)
    g = np.asarray(conductances, dtype=float)
    if v.shape != g.shape:
        raise CircuitError(
            f"voltages and conductances must match, got {v.shape} vs {g.shape}"
        )
    if np.any(g < 0):
        raise CircuitError("branch conductances must be non-negative")
    total_g = float(g.sum())
    if total_g <= 0:
        raise CircuitError("at least one branch must have positive conductance")
    v_eq = float((v * g).sum() / total_g)
    return TheveninEquivalent(voltage=v_eq, resistance=1.0 / total_g)
