"""Behavioral sample-and-hold model with static non-idealities.

The transient engine's :class:`~repro.circuits.transient.SampleHold` is
ideal; this standalone model adds the static error terms a designer would
budget for (gain error, offset, droop) so accuracy studies can include
the S/H in the error stack if desired.
"""

from __future__ import annotations

import dataclasses
from typing import Union

import numpy as np

from ..errors import CircuitError

ArrayLike = Union[float, np.ndarray]

__all__ = ["SampleHoldModel"]


@dataclasses.dataclass(frozen=True)
class SampleHoldModel:
    """Static S/H error model.

    Attributes
    ----------
    gain:
        Multiplicative gain (ideal = 1).
    offset:
        Additive offset (volts, ideal = 0).
    droop_rate:
        Hold-mode droop (volts per second, >= 0); the held value decays
        linearly toward 0 V.
    aperture_jitter:
        RMS sampling-instant jitter (seconds).  Combined with the input
        slew rate it adds sampling noise; deterministic callers pass a
        ``rng`` to :meth:`sample`.
    """

    gain: float = 1.0
    offset: float = 0.0
    droop_rate: float = 0.0
    aperture_jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.gain <= 0:
            raise CircuitError(f"S/H gain must be positive, got {self.gain!r}")
        if self.droop_rate < 0:
            raise CircuitError(f"droop rate must be >= 0, got {self.droop_rate!r}")
        if self.aperture_jitter < 0:
            raise CircuitError(f"aperture jitter must be >= 0, got {self.aperture_jitter!r}")

    def sample(
        self,
        value: ArrayLike,
        slew_rate: ArrayLike = 0.0,
        rng: "np.random.Generator | None" = None,
    ) -> ArrayLike:
        """Value captured when sampling an input at ``value``.

        ``slew_rate`` (volts/second) is the input slope at the sampling
        instant; with a non-zero ``aperture_jitter`` and an ``rng`` the
        captured value is perturbed by ``slew_rate * jitter_sample``.
        """
        captured = np.asarray(value, dtype=float) * self.gain + self.offset
        if self.aperture_jitter > 0 and rng is not None:
            jitter = rng.normal(0.0, self.aperture_jitter, size=np.shape(captured))
            captured = captured + np.asarray(slew_rate, dtype=float) * jitter
        return captured if np.ndim(captured) else float(captured)

    def held_value(self, captured: ArrayLike, hold_time: ArrayLike) -> ArrayLike:
        """Held output after ``hold_time`` seconds of droop."""
        hold = np.asarray(hold_time, dtype=float)
        if np.any(hold < 0):
            raise CircuitError("hold_time must be >= 0")
        captured = np.asarray(captured, dtype=float)
        droop = self.droop_rate * hold
        out = np.sign(captured) * np.maximum(np.abs(captured) - droop, 0.0)
        return out if np.ndim(out) else float(out)
