"""Spike signal types.

The single-spiking data format (paper Section III-A) represents a datum as
the arrival time of exactly one spike inside a fixed-length time slice.
:class:`SingleSpike` is that signal.  :class:`SpikeTrain` represents the
multi-spike signals used by the rate-coding baseline, where the *number*
of spikes in a window encodes the value.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, List, Optional, Tuple

import numpy as np

from ..errors import EncodingError
from ..units import NANO

__all__ = ["SingleSpike", "SpikeTrain", "NO_SPIKE"]


@dataclasses.dataclass(frozen=True)
class SingleSpike:
    """One spike inside a time slice.

    Attributes
    ----------
    time:
        Rising-edge arrival time measured from the beginning of the slice
        (seconds).  ``None`` denotes "no spike in this slice", which the
        single-spiking format uses for a zero / fully-suppressed datum.
    width:
        Pulse width (seconds).  The encoded value is independent of the
        width (paper Section III-A: "independent of spike width and
        shape"); the width only matters for driver energy.
    """

    time: Optional[float]
    width: float = 1 * NANO

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise EncodingError(f"spike width must be positive, got {self.width!r}")
        if self.time is not None and self.time < 0:
            raise EncodingError(f"spike time must be >= 0, got {self.time!r}")

    @property
    def fired(self) -> bool:
        """Whether a spike is present in the slice."""
        return self.time is not None

    def within(self, slice_length: float) -> bool:
        """Whether the rising edge falls inside a slice of this length."""
        return self.time is not None and 0 <= self.time <= slice_length

    def delayed(self, delay: float) -> "SingleSpike":
        """A copy shifted later in time by ``delay`` seconds."""
        if self.time is None:
            return self
        return SingleSpike(time=self.time + delay, width=self.width)

    def waveform_points(
        self, slice_length: float, high: float = 1.0
    ) -> List[Tuple[float, float]]:
        """Piecewise-constant (time, level) points for plotting the pulse."""
        if self.time is None:
            return [(0.0, 0.0), (slice_length, 0.0)]
        t0 = self.time
        t1 = min(self.time + self.width, slice_length)
        return [(0.0, 0.0), (t0, high), (t1, 0.0), (slice_length, 0.0)]


#: Convenience instance representing the absence of a spike.
NO_SPIKE = SingleSpike(time=None)


@dataclasses.dataclass(frozen=True)
class SpikeTrain:
    """A series of spikes in a window, as used by rate-coding designs.

    The encoded value is the spike *count* (equivalently the firing rate
    over the window).  Spike times are kept so that power models can
    integrate driver activity.
    """

    times: Tuple[float, ...]
    width: float = 1 * NANO

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise EncodingError(f"spike width must be positive, got {self.width!r}")
        times = tuple(float(t) for t in self.times)
        if any(t < 0 for t in times):
            raise EncodingError("spike times must be >= 0")
        if list(times) != sorted(times):
            raise EncodingError("spike times must be sorted ascending")
        object.__setattr__(self, "times", times)

    @classmethod
    def uniform(cls, count: int, window: float, width: float = 1 * NANO) -> "SpikeTrain":
        """Evenly spaced train of ``count`` spikes across ``window``."""
        if count < 0:
            raise EncodingError(f"spike count must be >= 0, got {count!r}")
        if window <= 0:
            raise EncodingError(f"window must be positive, got {window!r}")
        if count == 0:
            return cls(times=(), width=width)
        period = window / count
        times = tuple(i * period for i in range(count))
        return cls(times=times, width=width)

    @classmethod
    def from_times(cls, times: Iterable[float], width: float = 1 * NANO) -> "SpikeTrain":
        """Train from an explicit (sorted) time sequence."""
        return cls(times=tuple(float(t) for t in times), width=width)

    @property
    def count(self) -> int:
        """Number of spikes in the train."""
        return len(self.times)

    def rate(self, window: float) -> float:
        """Mean firing rate over ``window`` (hertz)."""
        if window <= 0:
            raise EncodingError(f"window must be positive, got {window!r}")
        return self.count / window

    def active_time(self) -> float:
        """Total non-zero-voltage driver time (seconds).

        Rate-coding power scales with this quantity — the key contrast
        with the single-spiking format, where it is one ``width`` per
        datum regardless of value.
        """
        return self.count * self.width

    def counts_in_bins(self, edges: np.ndarray) -> np.ndarray:
        """Histogram of spikes into time bins delimited by ``edges``."""
        return np.histogram(np.asarray(self.times, dtype=float), bins=edges)[0]
