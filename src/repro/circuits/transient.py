"""Event-driven piecewise-exponential transient simulator.

The ReSiPE datapath (paper Fig. 2) is a cascade of first-order networks:
capacitors charged through resistive branches from ideally driven nodes,
plus switches, sample-and-holds, comparators and pulse shapers.  Between
circuit events every dynamic node follows the exact solution

    V(t) = V_inf + (V_0 - V_inf) * exp(-(t - t_0) / tau)

so a transient simulation reduces to ordered event processing with
analytic segments in between — no time-stepping error.  This is the
replacement for the paper's Cadence Virtuoso runs (see DESIGN.md §2).

Supported elements
------------------
* :class:`PiecewiseConstantSource` — ideally driven node with a step
  schedule.
* :class:`SwitchSpec` — named switch with an open/close schedule; any RC
  branch may be gated by a switch.
* :class:`RCNodeSpec` — capacitor to ground charged through one or more
  resistive branches to driven nodes.
* :class:`SampleHold` — captures an input node's value at trigger times
  and drives its output node with the held value.
* :class:`Comparator` — logic output that goes high when ``pos`` exceeds
  ``neg``; crossing times are located on the analytic segments.
* :class:`PulseShaper` — emits a fixed-width pulse on each rising edge of
  a watched logic node (models the inverter-delay + AND spike generator).

Limitations (by design)
-----------------------
Two dynamic nodes may not be connected by a closed branch; the ReSiPE
topology never requires it, and rejecting it keeps every segment exactly
solvable.
"""

from __future__ import annotations

import dataclasses
import heapq
import itertools
import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import CircuitError
from .components import GROUND
from .rc import thevenin
from .waveform import Waveform

__all__ = [
    "PiecewiseConstantSource",
    "SwitchSpec",
    "Branch",
    "RCNodeSpec",
    "SampleHold",
    "Comparator",
    "PulseShaper",
    "TransientEngine",
    "TransientResult",
]

_LOGIC_THRESHOLD = 0.5


# ----------------------------------------------------------------------
# Element specifications
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class PiecewiseConstantSource:
    """An ideally driven node following a step schedule.

    ``schedule`` is a sequence of ``(time, value)`` pairs sorted by time;
    the first entry defines the value from the start of the simulation.
    """

    node: str
    schedule: Tuple[Tuple[float, float], ...]

    def __post_init__(self) -> None:
        if not self.schedule:
            raise CircuitError(f"source on {self.node!r} needs a schedule")
        times = [t for t, _ in self.schedule]
        if times != sorted(times):
            raise CircuitError(f"source on {self.node!r}: schedule must be sorted")

    @classmethod
    def constant(cls, node: str, value: float) -> "PiecewiseConstantSource":
        return cls(node=node, schedule=((0.0, value),))


@dataclasses.dataclass(frozen=True)
class SwitchSpec:
    """A named switch with an open/close schedule.

    ``schedule`` holds ``(time, closed)`` pairs sorted by time; the first
    entry defines the initial state.
    """

    name: str
    schedule: Tuple[Tuple[float, bool], ...]

    def __post_init__(self) -> None:
        if not self.schedule:
            raise CircuitError(f"switch {self.name!r} needs a schedule")
        times = [t for t, _ in self.schedule]
        if times != sorted(times):
            raise CircuitError(f"switch {self.name!r}: schedule must be sorted")


@dataclasses.dataclass(frozen=True)
class Branch:
    """A resistive branch from an RC node to ``other`` (a driven node or
    ground), optionally gated by a switch."""

    other: str
    resistance: float
    switch: Optional[str] = None

    def __post_init__(self) -> None:
        if self.resistance <= 0:
            raise CircuitError(f"branch resistance must be positive, got {self.resistance!r}")


@dataclasses.dataclass(frozen=True)
class RCNodeSpec:
    """A capacitor to ground charged through resistive branches."""

    node: str
    capacitance: float
    branches: Tuple[Branch, ...]
    v0: float = 0.0

    def __post_init__(self) -> None:
        if self.capacitance <= 0:
            raise CircuitError(
                f"RC node {self.node!r}: capacitance must be positive, "
                f"got {self.capacitance!r}"
            )
        if not self.branches:
            raise CircuitError(f"RC node {self.node!r} needs at least one branch")


@dataclasses.dataclass(frozen=True)
class SampleHold:
    """Ideal sample-and-hold: at each trigger time the input node's value
    is captured and drives ``output_node`` until the next trigger."""

    input_node: str
    output_node: str
    sample_times: Tuple[float, ...]
    initial: float = 0.0

    def __post_init__(self) -> None:
        times = list(self.sample_times)
        if times != sorted(times):
            raise CircuitError("sample times must be sorted ascending")


@dataclasses.dataclass(frozen=True)
class Comparator:
    """Continuous-time comparator: ``output`` is ``high`` while
    ``pos > neg`` and ``low`` otherwise.

    ``enable`` optionally restricts activity to a ``(start, stop)``
    window; outside it the output is held low.  The ReSiPE output stage
    only enables its comparator during S2 (paper Fig. 2: RST phases).
    """

    pos: str
    neg: str
    output: str
    high: float = 1.0
    low: float = 0.0
    enable: Optional[Tuple[float, float]] = None

    def __post_init__(self) -> None:
        if self.enable is not None and self.enable[0] >= self.enable[1]:
            raise CircuitError(
                f"comparator enable window must have start < stop, got {self.enable}"
            )

    def active_at(self, t: float) -> bool:
        """Whether the comparator is enabled at time ``t``."""
        if self.enable is None:
            return True
        return self.enable[0] <= t < self.enable[1]


@dataclasses.dataclass(frozen=True)
class PulseShaper:
    """Rising-edge-triggered one-shot: each rising edge on ``input_node``
    produces a pulse of ``width`` seconds on ``output_node``."""

    input_node: str
    output_node: str
    width: float
    high: float = 1.0

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise CircuitError(f"pulse width must be positive, got {self.width!r}")


# ----------------------------------------------------------------------
# Result container
# ----------------------------------------------------------------------
class TransientResult:
    """Waveforms recorded by a :class:`TransientEngine` run."""

    def __init__(self, waveforms: Dict[str, Waveform], t_stop: float) -> None:
        self._waveforms = waveforms
        self.t_stop = t_stop

    def __contains__(self, node: str) -> bool:
        return node in self._waveforms

    def nodes(self) -> List[str]:
        """Recorded node names."""
        return sorted(self._waveforms)

    def waveform(self, node: str) -> Waveform:
        """The recorded waveform of ``node``."""
        try:
            return self._waveforms[node]
        except KeyError:
            raise CircuitError(
                f"node {node!r} was not recorded; available: {self.nodes()}"
            ) from None

    def value_at(self, node: str, t: float) -> float:
        """Interpolated value of ``node`` at time ``t``."""
        return float(self.waveform(node)(t))

    def spike_times(self, node: str, threshold: float = _LOGIC_THRESHOLD) -> List[float]:
        """Rising-edge times of a logic/pulse node."""
        return self.waveform(node).rising_crossings(threshold)


# ----------------------------------------------------------------------
# Internal state records
# ----------------------------------------------------------------------
@dataclasses.dataclass
class _Segment:
    t0: float
    t1: float
    v0: float
    v_inf: float
    tau: float  # math.inf => frozen


@dataclasses.dataclass
class _DynState:
    spec: RCNodeSpec
    t0: float
    v0: float
    v_inf: float
    tau: float
    segments: List[_Segment] = dataclasses.field(default_factory=list)

    def value(self, t: float) -> float:
        dt = t - self.t0
        if dt < 0:
            raise CircuitError("cannot evaluate a dynamic node in the past")
        if math.isinf(self.tau):
            return self.v0
        return self.v_inf + (self.v0 - self.v_inf) * math.exp(-dt / self.tau)


# ----------------------------------------------------------------------
# Engine
# ----------------------------------------------------------------------
class TransientEngine:
    """Builds and runs one transient simulation.

    Typical use::

        eng = TransientEngine(t_stop=200e-9)
        eng.add_source(PiecewiseConstantSource.constant("vs", 1.0))
        eng.add_switch(SwitchSpec("rst", ((0.0, False), (99e-9, True))))
        eng.add_rc_node(RCNodeSpec("ramp", 100e-15,
                                   (Branch("vs", 100e3),
                                    Branch("gnd", 100.0, switch="rst"))))
        result = eng.run()
        result.waveform("ramp")
    """

    def __init__(
        self,
        t_stop: float,
        t_start: float = 0.0,
        points_per_segment: int = 64,
        record: Optional[Sequence[str]] = None,
    ) -> None:
        if t_stop <= t_start:
            raise CircuitError(f"need t_stop > t_start, got [{t_start}, {t_stop}]")
        if points_per_segment < 2:
            raise CircuitError("points_per_segment must be >= 2")
        self.t_start = t_start
        self.t_stop = t_stop
        self.points_per_segment = points_per_segment
        self._record = set(record) if record is not None else None

        self._sources: Dict[str, PiecewiseConstantSource] = {}
        self._switch_specs: Dict[str, SwitchSpec] = {}
        self._rc_specs: Dict[str, RCNodeSpec] = {}
        self._sample_holds: List[SampleHold] = []
        self._comparators: List[Comparator] = []
        self._shapers: List[PulseShaper] = []

    # ------------------------------------------------------------------
    # Netlist construction
    # ------------------------------------------------------------------
    def _claim_node(self, node: str) -> None:
        if node == GROUND:
            raise CircuitError("ground cannot be driven")
        owners = (
            node in self._sources
            or node in self._rc_specs
            or any(sh.output_node == node for sh in self._sample_holds)
            or any(c.output == node for c in self._comparators)
            or any(p.output_node == node for p in self._shapers)
        )
        if owners:
            raise CircuitError(f"node {node!r} already has a driver")

    def add_source(self, spec: PiecewiseConstantSource) -> None:
        """Register an ideally driven node."""
        self._claim_node(spec.node)
        self._sources[spec.node] = spec

    def add_switch(self, spec: SwitchSpec) -> None:
        """Register a switch usable by RC-node branches."""
        if spec.name in self._switch_specs:
            raise CircuitError(f"switch {spec.name!r} already defined")
        self._switch_specs[spec.name] = spec

    def add_rc_node(self, spec: RCNodeSpec) -> None:
        """Register a dynamic (capacitor) node."""
        self._claim_node(spec.node)
        self._rc_specs[spec.node] = spec

    def add_sample_hold(self, spec: SampleHold) -> None:
        """Register a sample-and-hold."""
        self._claim_node(spec.output_node)
        self._sample_holds.append(spec)

    def add_comparator(self, spec: Comparator) -> None:
        """Register a comparator."""
        self._claim_node(spec.output)
        self._comparators.append(spec)

    def add_pulse_shaper(self, spec: PulseShaper) -> None:
        """Register a rising-edge one-shot pulse generator."""
        self._claim_node(spec.output_node)
        self._shapers.append(spec)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def describe(self) -> str:
        """SPICE-flavoured listing of the registered netlist.

        Regenerates the content of a schematic (the paper's Fig. 2) as
        text: every source, switch schedule, RC node with its branches,
        sample-and-hold, comparator and pulse shaper.
        """
        lines: List[str] = [f"* transient netlist  (t = 0 .. {self.t_stop:g} s)"]
        for node, src in sorted(self._sources.items()):
            steps = ", ".join(f"{t:g}s->{v:g}V" for t, v in src.schedule)
            lines.append(f"V({node})        source   {steps}")
        for name, sw in sorted(self._switch_specs.items()):
            steps = ", ".join(
                f"{t:g}s->{'on' if s else 'off'}" for t, s in sw.schedule
            )
            lines.append(f"S({name})        switch   {steps}")
        for node, spec in sorted(self._rc_specs.items()):
            lines.append(
                f"C({node})        {spec.capacitance:g} F to gnd, "
                f"V0 = {spec.v0:g} V"
            )
            for branch in spec.branches:
                gate = f" via switch {branch.switch}" if branch.switch else ""
                lines.append(
                    f"  R {node} -> {branch.other}   {branch.resistance:g} Ohm{gate}"
                )
        for sh in self._sample_holds:
            times = ", ".join(f"{t:g}s" for t in sh.sample_times) or "(never)"
            lines.append(
                f"SH {sh.input_node} -> {sh.output_node}   samples @ {times}"
            )
        for comp in self._comparators:
            window = (
                f" enabled {comp.enable[0]:g}s..{comp.enable[1]:g}s"
                if comp.enable is not None else ""
            )
            lines.append(
                f"CMP +{comp.pos} -{comp.neg} -> {comp.output}{window}"
            )
        for shaper in self._shapers:
            lines.append(
                f"PULSE {shaper.input_node} -> {shaper.output_node}   "
                f"width {shaper.width:g} s"
            )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def run(self) -> TransientResult:
        """Execute the transient simulation and return recorded waveforms."""
        self._validate()
        t = self.t_start

        # --- mutable state ------------------------------------------------
        forced: Dict[str, float] = {GROUND: 0.0}
        forced_history: Dict[str, List[Tuple[float, float]]] = {}
        switches: Dict[str, bool] = {}
        dyn: Dict[str, _DynState] = {}
        comp_state: Dict[int, bool] = {}
        comp_gen: Dict[int, int] = {}

        seq = itertools.count()
        queue: List[Tuple[float, int, str, object]] = []

        def push(time: float, kind: str, payload: object) -> None:
            if time <= self.t_stop:
                heapq.heappush(queue, (time, next(seq), kind, payload))

        def record_forced(node: str, value: float, time: float) -> None:
            hist = forced_history.setdefault(node, [])
            if hist and hist[-1][1] != value:
                hist.append((time, hist[-1][1]))
            hist.append((time, value))
            forced[node] = value

        # --- initialise sources, switches, S/H, comparators, shapers -------
        for node, src in self._sources.items():
            first_time, first_value = src.schedule[0]
            record_forced(node, first_value if first_time <= t else 0.0, t)
            for step_t, step_v in src.schedule:
                if step_t > t:
                    push(step_t, "source", (node, step_v))
                else:
                    forced[node] = step_v
                    forced_history[node][-1] = (t, step_v)

        for name, spec in self._switch_specs.items():
            first_time, first_state = spec.schedule[0]
            switches[name] = first_state if first_time <= t else False
            for st, state in spec.schedule:
                if st > t:
                    push(st, "switch", (name, state))
                else:
                    switches[name] = state

        for sh in self._sample_holds:
            record_forced(sh.output_node, sh.initial, t)
            for st in sh.sample_times:
                if st >= t:
                    push(st, "sample", sh)

        for idx, comp in enumerate(self._comparators):
            comp_state[idx] = False
            comp_gen[idx] = 0
            record_forced(comp.output, comp.low, t)

        for shaper in self._shapers:
            record_forced(shaper.output_node, 0.0, t)

        # --- dynamic node helpers ------------------------------------------
        def value_of(node: str, time: float) -> float:
            if node in forced:
                return forced[node]
            if node in dyn:
                return dyn[node].value(time)
            raise CircuitError(f"node {node!r} has no driver and no capacitor")

        def retarget(time: float) -> None:
            """Freeze every dynamic node at ``time`` and recompute its
            asymptote/time-constant from the current topology."""
            for state in dyn.values():
                v_now = state.value(time)
                if state.t0 < time:
                    state.segments.append(
                        _Segment(state.t0, time, state.v0, state.v_inf, state.tau)
                    )
                voltages: List[float] = []
                conductances: List[float] = []
                for branch in state.spec.branches:
                    if branch.switch is not None and not switches.get(branch.switch, False):
                        continue
                    other = branch.other
                    if other in dyn:
                        raise CircuitError(
                            f"branch {state.spec.node!r} -> {other!r} couples two "
                            "dynamic nodes; not supported"
                        )
                    voltages.append(value_of(other, time))
                    conductances.append(1.0 / branch.resistance)
                state.t0 = time
                state.v0 = v_now
                if conductances:
                    eq = thevenin(voltages, conductances)
                    state.v_inf = eq.voltage
                    state.tau = eq.resistance * state.spec.capacitance
                else:
                    state.v_inf = v_now
                    state.tau = math.inf

        for node, spec in self._rc_specs.items():
            dyn[node] = _DynState(spec=spec, t0=t, v0=spec.v0, v_inf=spec.v0, tau=math.inf)
        retarget(t)

        # --- comparator handling -------------------------------------------
        def comparator_should_be_high(idx: int, time: float) -> bool:
            comp = self._comparators[idx]
            if not comp.active_at(time):
                return False
            return value_of(comp.pos, time) > value_of(comp.neg, time)

        def next_crossing(idx: int, time: float) -> Optional[float]:
            """First future time the comparator output must flip, found by
            dense sampling of the frozen analytic segment + bisection."""
            comp = self._comparators[idx]
            want_high = not comp_state[idx]
            if comp.enable is not None:
                start, stop = comp.enable
                if time >= stop:
                    return None
                if time < start:
                    # Re-evaluate once the window opens.
                    return start
                if comp_state[idx]:
                    # Output must drop no later than window close.
                    stop_cap = stop
                else:
                    stop_cap = None
            else:
                stop_cap = None

            def diff(dt: float) -> float:
                return value_of(comp.pos, time + dt) - value_of(comp.neg, time + dt)

            horizon = self.t_stop - time
            if comp.enable is not None:
                horizon = min(horizon, comp.enable[1] - time)
            if horizon <= 0:
                return None
            # Log-spaced probes resolve both ns-scale and slice-scale events.
            probes = np.concatenate(
                ([0.0], np.geomspace(max(horizon * 1e-9, 1e-18), horizon, 256))
            )
            prev_dt = probes[0]
            prev_f = diff(prev_dt)
            for dt in probes[1:]:
                f = diff(dt)
                crossed = (prev_f <= 0 < f) if want_high else (prev_f >= 0 > f)
                if crossed:
                    lo, hi = prev_dt, dt
                    for _ in range(80):
                        mid = 0.5 * (lo + hi)
                        fm = diff(mid)
                        if (fm > 0) == want_high:
                            hi = mid
                        else:
                            lo = mid
                    found = time + hi
                    return found if stop_cap is None else min(found, stop_cap)
                prev_dt, prev_f = dt, f
            return stop_cap

        def flip_comparator(idx: int, time: float) -> None:
            comp = self._comparators[idx]
            comp_state[idx] = not comp_state[idx]
            new_level = comp.high if comp_state[idx] else comp.low
            previous = forced[comp.output]
            record_forced(comp.output, new_level, time)
            if new_level > previous:
                fire_shapers(comp.output, time)

        def fire_shapers(node: str, time: float) -> None:
            for shaper in self._shapers:
                if shaper.input_node != node:
                    continue
                record_forced(shaper.output_node, shaper.high, time)
                push(time + shaper.width, "pulse_end", shaper)

        def reschedule_comparators(time: float) -> None:
            for idx in range(len(self._comparators)):
                comp_gen[idx] += 1
                # Immediate inconsistency (e.g. S/H just dropped below pos).
                guard = 0
                while comparator_should_be_high(idx, time) != comp_state[idx]:
                    flip_comparator(idx, time)
                    guard += 1
                    if guard > 4:
                        raise CircuitError("comparator oscillation at a single instant")
                crossing = next_crossing(idx, time)
                if crossing is not None:
                    push(crossing, "comp", (idx, comp_gen[idx]))

        reschedule_comparators(t)

        # --- main event loop -----------------------------------------------
        while queue:
            time, _, kind, payload = heapq.heappop(queue)
            if time > self.t_stop:
                break
            t = time
            if kind == "source":
                node, value = payload  # type: ignore[misc]
                record_forced(node, value, t)
            elif kind == "switch":
                name, state = payload  # type: ignore[misc]
                switches[name] = state
            elif kind == "sample":
                sh = payload  # type: ignore[assignment]
                sampled = value_of(sh.input_node, t)
                record_forced(sh.output_node, sampled, t)
            elif kind == "pulse_end":
                shaper = payload  # type: ignore[assignment]
                record_forced(shaper.output_node, 0.0, t)
            elif kind == "comp":
                idx, gen = payload  # type: ignore[misc]
                if gen != comp_gen[idx]:
                    continue  # stale prediction; a fresher one is queued
                if comparator_should_be_high(idx, t) != comp_state[idx]:
                    flip_comparator(idx, t)
                # Fall through to retarget/reschedule even without a flip:
                # window-open probes must chain the real crossing search.
            else:  # pragma: no cover - defensive
                raise CircuitError(f"unknown event kind {kind!r}")
            retarget(t)
            reschedule_comparators(t)

        # --- close segments and build waveforms ----------------------------
        retarget(self.t_stop)
        waveforms: Dict[str, Waveform] = {}
        for node, state in dyn.items():
            if self._record is not None and node not in self._record:
                continue
            waveforms[node] = self._dynamic_waveform(state)
        for node, hist in forced_history.items():
            if self._record is not None and node not in self._record:
                continue
            waveforms[node] = self._forced_waveform(hist)
        return TransientResult(waveforms, self.t_stop)

    # ------------------------------------------------------------------
    # Waveform assembly
    # ------------------------------------------------------------------
    def _dynamic_waveform(self, state: _DynState) -> Waveform:
        times: List[np.ndarray] = []
        values: List[np.ndarray] = []
        for seg in state.segments:
            if seg.t1 <= seg.t0:
                continue
            ts = np.linspace(seg.t0, seg.t1, self.points_per_segment)
            if math.isinf(seg.tau):
                vs = np.full_like(ts, seg.v0)
            else:
                vs = seg.v_inf + (seg.v0 - seg.v_inf) * np.exp(-(ts - seg.t0) / seg.tau)
            times.append(ts)
            values.append(vs)
        if not times:
            return Waveform.constant(state.v0, self.t_start, self.t_stop)
        t = np.concatenate(times)
        v = np.concatenate(values)
        if t[-1] < self.t_stop:
            t = np.append(t, self.t_stop)
            v = np.append(v, v[-1])
        return Waveform(t, v)

    def _forced_waveform(self, history: List[Tuple[float, float]]) -> Waveform:
        t = np.array([p[0] for p in history], dtype=float)
        v = np.array([p[1] for p in history], dtype=float)
        if t[0] > self.t_start:
            t = np.insert(t, 0, self.t_start)
            v = np.insert(v, 0, v[0])
        if t[-1] < self.t_stop:
            t = np.append(t, self.t_stop)
            v = np.append(v, v[-1])
        return Waveform(t, v)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        if not self._rc_specs and not self._sources:
            raise CircuitError("empty circuit: add at least one source or RC node")
        driven = set(self._sources) | set(self._rc_specs) | {GROUND}
        driven |= {sh.output_node for sh in self._sample_holds}
        driven |= {c.output for c in self._comparators}
        driven |= {p.output_node for p in self._shapers}
        for spec in self._rc_specs.values():
            for branch in spec.branches:
                if branch.switch is not None and branch.switch not in self._switch_specs:
                    raise CircuitError(
                        f"RC node {spec.node!r}: unknown switch {branch.switch!r}"
                    )
                if branch.other not in driven:
                    raise CircuitError(
                        f"RC node {spec.node!r}: branch target {branch.other!r} "
                        "has no driver"
                    )
        for sh in self._sample_holds:
            if sh.input_node not in driven:
                raise CircuitError(f"sample-hold input {sh.input_node!r} has no driver")
        for comp in self._comparators:
            for node in (comp.pos, comp.neg):
                if node not in driven:
                    raise CircuitError(f"comparator input {node!r} has no driver")
        for shaper in self._shapers:
            if shaper.input_node not in driven:
                raise CircuitError(f"pulse-shaper input {shaper.input_node!r} has no driver")
