"""Sampled waveforms.

A :class:`Waveform` is an immutable pair of monotonically increasing time
samples and values, with linear interpolation between samples.  The
transient engine emits waveforms; the experiment harnesses post-process
them (crossing detection, resampling, arithmetic) to regenerate the
paper's Fig. 3.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import CircuitError, ShapeError

__all__ = ["Waveform"]

Number = Union[int, float]


class Waveform:
    """A piecewise-linear signal ``v(t)`` defined on a finite interval."""

    __slots__ = ("_t", "_v")

    def __init__(self, times: Sequence[float], values: Sequence[float]) -> None:
        t = np.asarray(times, dtype=float)
        v = np.asarray(values, dtype=float)
        if t.ndim != 1 or v.ndim != 1:
            raise ShapeError("waveform times/values must be one-dimensional")
        if t.shape != v.shape:
            raise ShapeError(
                f"waveform times and values must match, got {t.shape} vs {v.shape}"
            )
        if t.size < 2:
            raise CircuitError("a waveform needs at least two samples")
        if np.any(np.diff(t) < 0):
            raise CircuitError("waveform times must be non-decreasing")
        self._t = t
        self._v = v

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_function(
        cls, func: Callable[[np.ndarray], np.ndarray], t0: float, t1: float, n: int = 512
    ) -> "Waveform":
        """Sample ``func`` uniformly on ``[t0, t1]`` with ``n`` points."""
        if t1 <= t0:
            raise CircuitError(f"need t1 > t0, got [{t0}, {t1}]")
        if n < 2:
            raise CircuitError("need at least two samples")
        t = np.linspace(t0, t1, n)
        return cls(t, np.asarray(func(t), dtype=float))

    @classmethod
    def constant(cls, value: float, t0: float, t1: float) -> "Waveform":
        """A flat waveform at ``value`` on ``[t0, t1]``."""
        return cls([t0, t1], [value, value])

    @classmethod
    def step(cls, t_step: float, t0: float, t1: float, low: float = 0.0,
             high: float = 1.0) -> "Waveform":
        """An ideal step from ``low`` to ``high`` at ``t_step``."""
        if not t0 <= t_step <= t1:
            raise CircuitError("step time must lie inside the interval")
        return cls([t0, t_step, t_step, t1], [low, low, high, high])

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def times(self) -> np.ndarray:
        """Time samples (read-only view)."""
        t = self._t.view()
        t.flags.writeable = False
        return t

    @property
    def values(self) -> np.ndarray:
        """Value samples (read-only view)."""
        v = self._v.view()
        v.flags.writeable = False
        return v

    @property
    def t_start(self) -> float:
        return float(self._t[0])

    @property
    def t_end(self) -> float:
        return float(self._t[-1])

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start

    def __len__(self) -> int:
        return int(self._t.size)

    def __repr__(self) -> str:
        return (
            f"Waveform({len(self)} samples on "
            f"[{self.t_start:.3e}, {self.t_end:.3e}] s, "
            f"range [{self._v.min():.3e}, {self._v.max():.3e}])"
        )

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def __call__(self, t: Union[Number, np.ndarray]) -> Union[float, np.ndarray]:
        """Linear interpolation at time(s) ``t`` (clamped to endpoints)."""
        out = np.interp(np.asarray(t, dtype=float), self._t, self._v)
        return float(out) if np.ndim(t) == 0 else out

    def sample(self, n: int) -> "Waveform":
        """Resample uniformly with ``n`` points over the full interval."""
        t = np.linspace(self.t_start, self.t_end, n)
        return Waveform(t, self(t))

    def window(self, t0: float, t1: float) -> "Waveform":
        """Restrict to ``[t0, t1]`` (endpoints interpolated in)."""
        if not (self.t_start <= t0 < t1 <= self.t_end):
            raise CircuitError(
                f"window [{t0}, {t1}] outside waveform span "
                f"[{self.t_start}, {self.t_end}]"
            )
        inside = (self._t > t0) & (self._t < t1)
        t = np.concatenate(([t0], self._t[inside], [t1]))
        return Waveform(t, self(t))

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def _binary(self, other: Union["Waveform", Number],
                op: Callable[[np.ndarray, np.ndarray], np.ndarray]) -> "Waveform":
        if isinstance(other, Waveform):
            t = np.union1d(self._t, other._t)
            return Waveform(t, op(self(t), other(t)))
        return Waveform(self._t, op(self._v, np.asarray(float(other))))

    def __add__(self, other: Union["Waveform", Number]) -> "Waveform":
        return self._binary(other, np.add)

    def __sub__(self, other: Union["Waveform", Number]) -> "Waveform":
        return self._binary(other, np.subtract)

    def __mul__(self, other: Union["Waveform", Number]) -> "Waveform":
        return self._binary(other, np.multiply)

    def __neg__(self) -> "Waveform":
        return Waveform(self._t, -self._v)

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------
    def minimum(self) -> float:
        return float(self._v.min())

    def maximum(self) -> float:
        return float(self._v.max())

    def mean(self) -> float:
        """Time-weighted mean value (trapezoidal)."""
        if self.duration == 0:
            return float(self._v[0])
        return self.integral() / self.duration

    def integral(self) -> float:
        """Trapezoidal integral over the full interval."""
        trapezoid = getattr(np, "trapezoid", None) or np.trapz
        return float(trapezoid(self._v, self._t))

    def rising_crossings(self, threshold: float) -> List[float]:
        """Times of upward crossings through ``threshold`` (interpolated)."""
        return self._crossings(threshold, rising=True)

    def falling_crossings(self, threshold: float) -> List[float]:
        """Times of downward crossings through ``threshold``."""
        return self._crossings(threshold, rising=False)

    def first_rising_crossing(self, threshold: float) -> Optional[float]:
        """First upward crossing, or ``None`` if there is none."""
        crossings = self.rising_crossings(threshold)
        return crossings[0] if crossings else None

    def _crossings(self, threshold: float, rising: bool) -> List[float]:
        v = self._v - threshold
        t = self._t
        out: List[float] = []
        for i in range(len(v) - 1):
            a, b = v[i], v[i + 1]
            crossed = (a < 0 <= b) if rising else (a > 0 >= b)
            if not crossed:
                continue
            if b == a:
                out.append(float(t[i]))
            else:
                frac = -a / (b - a)
                out.append(float(t[i] + frac * (t[i + 1] - t[i])))
        return out

    def pulse_edges(self, threshold: float = 0.5) -> List[Tuple[float, float]]:
        """(rise, fall) pairs for each pulse above ``threshold``."""
        rises = self.rising_crossings(threshold)
        falls = self.falling_crossings(threshold)
        pairs: List[Tuple[float, float]] = []
        fi = 0
        for r in rises:
            while fi < len(falls) and falls[fi] <= r:
                fi += 1
            if fi < len(falls):
                pairs.append((r, falls[fi]))
                fi += 1
            else:
                pairs.append((r, self.t_end))
        return pairs
