"""Command-line interface: regenerate any paper artefact from a shell.

Usage::

    python -m repro table2
    python -m repro fig5 --samples 200 --seed 3
    python -m repro fig7 --networks mlp-1 mlp-2 --sigmas 0 0.1 0.2
    python -m repro faults --rates 0 0.01 0.05 --trials 3 --seed 1
    python -m repro info

Each subcommand prints the same rendered artefact the corresponding
benchmark saves under ``benchmarks/results/``.

Every subcommand accepts ``--telemetry [DIR]``: the run executes under
an active telemetry session and writes ``manifest.json`` +
``spans.jsonl`` to DIR (default ``.telemetry``) on exit; ``repro
report DIR`` renders them.  Telemetry is an execution knob — stdout
and every persisted experiment artifact are byte-identical with it on
or off (the telemetry note goes to stderr).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import __version__, telemetry
from .config import CircuitParameters

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ReSiPE (DAC 2020) reproduction — regenerate paper artefacts",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    # Shared execution knobs, inherited by every subcommand.
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--telemetry", nargs="?", const=".telemetry", default=None,
        metavar="DIR",
        help="record metrics/spans/manifest and write them to DIR "
             "(default: .telemetry) when the run finishes",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", parents=[common],
                   help="show the operating points and library summary")

    fig3 = sub.add_parser("fig3", parents=[common],
                          help="transient MAC waveforms (Fig. 3)")
    fig3.add_argument("--spike-times", nargs=2, type=float,
                      default=[40e-9, 70e-9], metavar=("T0", "T1"),
                      help="input spike times in seconds")
    fig3.add_argument("--resistances", nargs=2, type=float,
                      default=[50e3, 200e3], metavar=("R0", "R1"),
                      help="cell resistances in ohms")

    fig5 = sub.add_parser("fig5", parents=[common], help="t_out vs input strength (Fig. 5)")
    fig5.add_argument("--samples", type=int, default=100)
    fig5.add_argument("--seed", type=int, default=0)
    fig5.add_argument("--paper-point", action="store_true",
                      help="use the literal published operating point")

    sub.add_parser("table1", parents=[common], help="data-format taxonomy (Table I)")

    table2 = sub.add_parser("table2", parents=[common], help="design comparison (Table II)")
    table2.add_argument("--rows", type=int, default=32)
    table2.add_argument("--cols", type=int, default=32)

    fig6 = sub.add_parser("fig6", parents=[common], help="throughput vs area budgets (Fig. 6)")
    fig6.add_argument("--budgets", nargs="+", type=float, default=None,
                      help="area budgets in mm^2")

    fig7 = sub.add_parser("fig7", parents=[common], help="accuracy under process variation (Fig. 7)")
    fig7.add_argument("--networks", nargs="+", default=None,
                      help="network keys (default: all six)")
    fig7.add_argument("--sigmas", nargs="+", type=float,
                      default=[0.0, 0.05, 0.10, 0.15, 0.20])
    fig7.add_argument("--trials", type=int, default=3)
    fig7.add_argument("--samples", type=int, default=1500,
                      help="synthetic dataset size per network")
    fig7.add_argument("--eval-samples", type=int, default=200)
    fig7.add_argument("--seed", type=int, default=0,
                      help="master seed for training and Monte-Carlo draws")
    fig7.add_argument("--stuck-on", type=float, default=0.0,
                      help="stuck-at-LRS cell fraction layered on each σ")
    fig7.add_argument("--stuck-off", type=float, default=0.0,
                      help="stuck-at-HRS cell fraction layered on each σ")
    fig7.add_argument("--workers", type=int, default=1, metavar="N",
                      help="worker processes (results byte-identical at "
                           "any count)")
    fig7.add_argument("--trial-batch", type=int, default=1, metavar="T",
                      help="Monte-Carlo trials per stacked forward pass")
    fig7.add_argument("--backend",
                      choices=["numpy", "numba", "cupy", "auto"],
                      default="numpy",
                      help="stacked-kernel compute backend (execution "
                           "knob; results byte-identical at any choice; "
                           "auto falls back to numpy when the perf extra "
                           "is missing)")
    fig7.add_argument("--fast", action="store_true",
                      help="small smoke preset (mlp-1, sigmas 0/0.10, "
                           "2 trials, 300 samples) for CI and demos")

    faults = sub.add_parser(
        "faults", parents=[common],
        help="fault-injection campaign with detect-and-remap recovery",
    )
    faults.add_argument("--network", default="mlp-1",
                        help="benchmark network key (e.g. mlp-1, cnn-1)")
    faults.add_argument("--rates", nargs="+", type=float,
                        default=[0.0, 0.01, 0.02, 0.05],
                        help="total stuck-at fault rates to sweep")
    faults.add_argument("--sigmas", nargs="+", type=float, default=[0.0],
                        help="variation sigmas to sweep")
    faults.add_argument("--ages", nargs="+", type=float, default=[0.0],
                        help="shelf ages in seconds to sweep")
    faults.add_argument("--trials", type=int, default=3,
                        help="Monte-Carlo draws per grid point")
    faults.add_argument("--seed", type=int, default=0,
                        help="master seed for every RNG stream")
    faults.add_argument("--samples", type=int, default=600,
                        help="synthetic dataset size for (cached) training")
    faults.add_argument("--eval-samples", type=int, default=100)
    faults.add_argument("--stuck-on-fraction", type=float, default=0.5,
                        help="portion of the fault rate pinned to LRS")
    faults.add_argument("--spare-fraction", type=float, default=0.2,
                        help="per-layer spare-column reserve")
    faults.add_argument("--threshold", type=float, default=0.05,
                        help="health-probe deviation threshold")
    faults.add_argument("--max-retries", type=int, default=2,
                        help="spare re-programming attempts before "
                             "software fallback")
    faults.add_argument("--backend", choices=["resipe", "ideal"],
                        default="resipe")
    faults.add_argument("--mode", choices=["linear", "exact"],
                        default="linear",
                        help="ReSiPE circuit fidelity")
    faults.add_argument("--no-remap", action="store_true",
                        help="skip detection/remapping (unprotected only)")
    faults.add_argument("--max-trials", type=int, default=None, metavar="N",
                        help="compute at most N new trials this run "
                             "(resume later from the store)")
    faults.add_argument("--workers", type=int, default=1, metavar="N",
                        help="worker processes (results byte-identical at "
                             "any count)")
    faults.add_argument("--trial-batch", type=int, default=1, metavar="T",
                        help="trials per stacked forward pass")
    faults.add_argument("--compute-backend",
                        choices=["numpy", "numba", "cupy", "auto"],
                        default="numpy",
                        help="stacked-kernel compute backend (execution "
                             "knob, distinct from the hardware --backend; "
                             "results byte-identical at any choice)")

    sub.add_parser("fig1", parents=[common], help="two-layer signal relation (Fig. 1)")

    scaling = sub.add_parser("scaling", parents=[common], help="technology-scaling projection")
    scaling.add_argument("--nodes", nargs="+", type=float,
                         default=[65, 45, 28, 16], help="nodes in nm")

    deploy = sub.add_parser("deploy", parents=[common],
                            help="chip-level deployment of a benchmark network")
    deploy.add_argument("--network", default="cnn-1",
                        help="network key (e.g. mlp-2, cnn-1)")
    deploy.add_argument("--samples", type=int, default=800,
                        help="synthetic dataset size for (cached) training")
    deploy.add_argument("--simulate", type=int, default=0, metavar="N",
                        help="also pipeline-simulate N samples (with Gantt)")
    deploy.add_argument("--save-report", metavar="PATH", default=None,
                        help="also write the report as JSON (atomic)")

    lint = sub.add_parser(
        "lint", parents=[common],
        help="check reproducibility invariants (seeded RNG, atomic IO, "
             "SI units, float-eq, error taxonomy)",
    )
    lint.add_argument("paths", nargs="*", default=None,
                      help="files/directories to lint "
                           "(default: src/ and tests/ under --root)")
    lint.add_argument("--root", default=None,
                      help="repo root for relative paths (default: cwd)")
    lint.add_argument("--format", choices=["text", "json", "sarif"],
                      default="text", dest="output_format",
                      help="report format (sarif for CI annotation)")
    lint.add_argument("--baseline", default=None, metavar="FILE",
                      help="suppress findings fingerprinted in FILE")
    lint.add_argument("--write-baseline", default=None, metavar="FILE",
                      help="snapshot current findings as a baseline and "
                           "exit 0")
    lint.add_argument("--rules", nargs="+", default=None, metavar="ID",
                      help="run only these rule ids (e.g. RNG001 IO001)")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the rule catalogue and exit")

    cache = sub.add_parser(
        "cache", parents=[common],
        help="inspect or maintain the model artifact store "
             "($REPRO_CACHE or .cache/models)",
    )
    cache.add_argument("--root", default=None,
                       help="store directory (default: $REPRO_CACHE or "
                            "<repo>/.cache/models)")
    action = cache.add_mutually_exclusive_group()
    action.add_argument("--verify", action="store_true",
                        help="scrub the store: quarantine entries that fail "
                             "integrity checks")
    action.add_argument("--clear", action="store_true",
                        help="delete all entries (including quarantined "
                             "files)")

    serve = sub.add_parser(
        "serve", parents=[common],
        help="serve predict requests over HTTP with cross-request "
             "micro-batching (drains gracefully on SIGINT/SIGTERM)",
    )
    serve.add_argument("--models", nargs="+", default=["mlp-1"],
                       help="benchmark network keys to load (store-cached)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8100,
                       help="bind port (0 = ephemeral)")
    serve.add_argument("--max-batch", type=int, default=32, metavar="N",
                       help="coalescing bound: requests per merged forward")
    serve.add_argument("--batch-window-ms", type=float, default=2.0,
                       metavar="MS",
                       help="coalescing window after the first request of "
                            "a batch")
    serve.add_argument("--queue-depth", type=int, default=128, metavar="N",
                       help="backpressure bound: pending requests beyond "
                            "this get HTTP 429")
    serve.add_argument("--no-batching", action="store_true",
                       help="serve each request alone (max_batch=1, "
                            "window=0) — the benchmark baseline")
    serve.add_argument("--compute-workers", type=int, default=1, metavar="N",
                       help="numpy compute threads (1 keeps per-request "
                            "energy accounting exact)")
    serve.add_argument("--compute-timeout-s", type=float, default=30.0,
                       metavar="S",
                       help="per-batch forward-pass timeout: a slower batch "
                            "is failed with 503 and the compute pool "
                            "rebuilt (0 disables)")
    serve.add_argument("--breaker-failures", type=int, default=5,
                       metavar="N",
                       help="consecutive batch failures that open a "
                            "model's circuit breaker (fail-fast 503s)")
    serve.add_argument("--breaker-cooldown-s", type=float, default=1.0,
                       metavar="S",
                       help="seconds an open breaker waits before letting "
                            "one half-open probe batch through")
    serve.add_argument("--chaos", default=None, metavar="SPEC",
                       help="inject seeded infrastructure faults, e.g. "
                            "'compute-exception:after=5,count=3;"
                            "conn-drop:p=0.05,seed=7' (see "
                            "docs/resilience.md for the catalogue)")
    serve.add_argument("--samples", type=int, default=600,
                       help="training-set size keying the model cache")
    serve.add_argument("--seed", type=int, default=0,
                       help="master seed keying the model cache")
    serve.add_argument("--ensemble-sigma", type=float, default=0.0,
                       help="serve the majority vote of a variation "
                            "ensemble at this sigma")
    serve.add_argument("--ensemble-trials", type=int, default=0,
                       help="realizations in the variation ensemble")

    report = sub.add_parser(
        "report", parents=[common],
        help="render a recorded telemetry run (manifest + span tree + "
             "metrics)",
    )
    report.add_argument("dir", nargs="?", default=".telemetry",
                        help="telemetry directory written by --telemetry "
                             "(default: .telemetry)")
    report.add_argument("--format", choices=["text", "json", "trace"],
                        default="text", dest="output_format",
                        help="report format (trace renders stitched "
                             "span trees grouped by trace id)")

    return parser


def _run_info() -> str:
    from .energy.components import COMPONENT_LIBRARY

    lines = [f"repro {__version__} — ReSiPE (DAC 2020) reproduction", ""]
    for label, params in (
        ("paper-literal operating point", CircuitParameters.paper()),
        ("calibrated operating point", CircuitParameters.calibrated()),
    ):
        lines.append(f"[{label}]")
        lines.append(params.describe())
        lines.append("")
    lines.append(f"component library: {len(COMPONENT_LIBRARY)} entries")
    for comp in COMPONENT_LIBRARY.values():
        lines.append(f"  {comp.name:<20} {comp.active_power * 1e6:7.1f} uW  "
                     f"{comp.area * 1e12:8.0f} um^2   {comp.note}")
    return "\n".join(lines)


def _run_fig3(args: argparse.Namespace) -> str:
    from .experiments.fig3_waveform import render_fig3, run_fig3

    result = run_fig3(
        spike_times=tuple(args.spike_times),
        resistances=tuple(args.resistances),
    )
    return render_fig3(result)


def _run_fig5(args: argparse.Namespace) -> str:
    from .experiments.fig5_characterization import render_fig5, run_fig5

    params = CircuitParameters.paper() if args.paper_point else None
    return render_fig5(run_fig5(params=params, samples=args.samples,
                                seed=args.seed))


def _run_table1() -> str:
    from .experiments.table1_taxonomy import render_table1

    return render_table1()


def _run_table2(args: argparse.Namespace) -> str:
    from .experiments.table2_comparison import render_table2, run_table2

    return render_table2(run_table2(rows=args.rows, cols=args.cols))


def _run_fig6(args: argparse.Namespace) -> str:
    from .experiments.fig6_throughput import render_fig6, run_fig6

    budgets = None
    if args.budgets is not None:
        budgets = [b * 1e-6 for b in args.budgets]
    return render_fig6(run_fig6(budgets=budgets))


def _run_fig7(args: argparse.Namespace) -> str:
    from .experiments.fig7_accuracy import Fig7Config, render_fig7, run_fig7

    if args.fast:
        config = Fig7Config(
            sigmas=(0.0, 0.10),
            trials=2,
            networks=("mlp-1",),
            n_samples=300,
            eval_samples=50,
            seed=args.seed,
            stuck_on=args.stuck_on,
            stuck_off=args.stuck_off,
        )
    else:
        config = Fig7Config(
            sigmas=tuple(args.sigmas),
            trials=args.trials,
            networks=tuple(args.networks) if args.networks else None,
            n_samples=args.samples,
            eval_samples=args.eval_samples,
            seed=args.seed,
            stuck_on=args.stuck_on,
            stuck_off=args.stuck_off,
        )
    return render_fig7(run_fig7(config, workers=args.workers,
                                trial_batch=args.trial_batch,
                                compute_backend=args.backend))


def _run_faults(args: argparse.Namespace) -> str:
    from .faults import CampaignSpec, FaultCampaign, render_campaign

    spec = CampaignSpec(
        network=args.network,
        rates=tuple(args.rates),
        sigmas=tuple(args.sigmas),
        ages=tuple(args.ages),
        trials=args.trials,
        seed=args.seed,
        n_samples=args.samples,
        eval_samples=args.eval_samples,
        stuck_on_fraction=args.stuck_on_fraction,
        spare_fraction=args.spare_fraction,
        probe_threshold=args.threshold,
        max_retries=args.max_retries,
        backend=args.backend,
        mode=args.mode,
        remap=not args.no_remap,
    )
    campaign = FaultCampaign(spec)
    result = campaign.run(max_trials=args.max_trials, verbose=True,
                          workers=args.workers,
                          trial_batch=args.trial_batch,
                          compute_backend=args.compute_backend)
    return render_campaign(result)


def _run_fig1() -> str:
    from .experiments.fig1_signal_relation import render_fig1, run_fig1

    return render_fig1(run_fig1())


def _run_scaling(args: argparse.Namespace) -> str:
    from .experiments.scaling import render_scaling, run_scaling

    return render_scaling(run_scaling(nodes=[n * 1e-9 for n in args.nodes]))


_DEPLOY_INPUT_HW = {"mlp-1": None, "mlp-2": None, "cnn-1": (28, 28),
                    "cnn-2": (16, 16), "cnn-3": (16, 16), "cnn-4": (16, 16)}


def _run_deploy(args: argparse.Namespace) -> str:
    from .core.mvm import MVMMode
    from .experiments.networks import get_benchmark_networks
    from .mapping import ReSiPEBackend, compile_network, plan_deployment

    net = get_benchmark_networks(keys=[args.network], n_samples=args.samples)[0]
    mapped = compile_network(net.model, ReSiPEBackend(mode=MVMMode.LINEAR))
    report = plan_deployment(
        mapped, input_hw=_DEPLOY_INPUT_HW.get(args.network)
    )
    text = report.render()
    if args.save_report:
        report.save(args.save_report)
        text += f"\n\nreport saved to {args.save_report}"
    if args.simulate > 0:
        from .arch import PipelineSimulator, chip_from_deployment
        from .arch.trace import render_gantt, utilisation_report

        chip = chip_from_deployment(
            report, CircuitParameters.paper().slice_length
        )
        result = PipelineSimulator(chip).run(args.simulate)
        text += "\n\n" + utilisation_report(result)
        text += "\n\n" + render_gantt(result)
    return text


def _run_lint(args: argparse.Namespace) -> "tuple[str, int]":
    from .analysis.lint import (
        RULES,
        render_json,
        render_sarif,
        render_text,
        run_lint,
        write_baseline,
    )

    if args.list_rules:
        lines = []
        for rule in RULES.values():
            scopes = "/".join(rule.scopes)
            lines.append(f"{rule.id}  [{scopes}]  {rule.title}")
            lines.append(f"    {rule.rationale}")
        return "\n".join(lines), 0
    report = run_lint(
        paths=args.paths or None,
        root=args.root,
        baseline=args.baseline,
        rules=args.rules,
    )
    if args.write_baseline:
        write_baseline(args.write_baseline, report.findings)
        return (
            f"wrote baseline with {len(report.findings)} fingerprint(s) "
            f"to {args.write_baseline}",
            0,
        )
    renderers = {"json": render_json, "sarif": render_sarif,
                 "text": render_text}
    text = renderers[args.output_format](report)
    return text, report.exit_code


def _run_cache(args: argparse.Namespace) -> str:
    from .store import get_store

    store = get_store(args.root)
    lines = [f"artifact store: {store.root}"]
    if args.clear:
        removed = store.clear()
        lines.append(f"cleared {removed} file(s)")
        return "\n".join(lines)
    if args.verify:
        bad = store.verify()
        lines.append(
            f"verified store: quarantined {len(bad)} corrupt entr"
            f"{'y' if len(bad) == 1 else 'ies'}"
        )
        for key in bad:
            lines.append(f"  quarantined: {key}")
    entries = store.entries()
    if not entries:
        lines.append("store is empty")
    for entry in entries:
        spec = f"  spec={entry.spec_hash}" if entry.spec_hash else ""
        lines.append(
            f"  {entry.status:<13} {entry.size:>9d} B  {entry.key}{spec}"
        )
    lines.append(f"session counters: {store.stats.describe()}")
    return "\n".join(lines)


def _run_serve(args: argparse.Namespace) -> str:
    from .serving import ModelRegistry, ServingConfig, ServingDaemon
    from .units import MILLI

    config = ServingConfig(
        host=args.host,
        port=args.port,
        models=tuple(args.models),
        max_batch=1 if args.no_batching else args.max_batch,
        batch_window_s=(0.0 if args.no_batching
                        else args.batch_window_ms * MILLI),
        queue_depth=args.queue_depth,
        compute_workers=args.compute_workers,
        compute_timeout_s=args.compute_timeout_s,
        breaker_threshold=args.breaker_failures,
        breaker_cooldown_s=args.breaker_cooldown_s,
        n_samples=args.samples,
        seed=args.seed,
        ensemble_sigma=args.ensemble_sigma,
        ensemble_trials=args.ensemble_trials,
    )
    chaos = None
    if args.chaos:
        from .chaos import parse_chaos_spec

        chaos = parse_chaos_spec(args.chaos)
        print(f"[serve] {chaos.describe()}", file=sys.stderr)
    print(f"[serve] loading models {list(config.models)} "
          f"(n_samples={config.n_samples}, seed={config.seed})...",
          file=sys.stderr)
    registry = ModelRegistry.from_benchmarks(
        config.models,
        n_samples=config.n_samples,
        seed=config.seed,
        ensemble_sigma=config.ensemble_sigma,
        ensemble_trials=config.ensemble_trials,
        load_hook=None if chaos is None else chaos.on_model_load,
    )
    for name, reason in sorted(registry.failed.items()):
        print(f"[serve] model {name!r} failed to load ({reason}); "
              "serving 503 for it", file=sys.stderr)
    daemon = ServingDaemon(registry, config, chaos=chaos)

    def announce(d: ServingDaemon) -> None:
        mode = (f"batching up to {config.max_batch}/flush"
                if config.max_batch > 1 else "unbatched")
        print(f"[serve] listening on http://{config.host}:{d.port} "
              f"({mode}, queue_depth={config.queue_depth}) — "
              f"Ctrl-C drains and exits", file=sys.stderr)

    daemon.run_forever(announce=announce)
    snapshot = daemon.metrics_snapshot()
    totals = snapshot["totals"]
    shed = totals["shed_deadline"] + totals["shed_expired"]
    tail = ""
    if shed or totals["breaker_rejected"] or snapshot["drain_abandoned"]:
        tail = (
            f", {shed} shed, {totals['breaker_rejected']} breaker-rejected, "
            f"{snapshot['drain_abandoned']} abandoned"
        )
    if chaos is not None:
        tail += f" ({chaos.fired_total()} chaos injection(s))"
    return (
        f"serve: drained cleanly after {totals['requests']} request(s) — "
        f"{totals['batches']} batch(es), {totals['coalesced']} coalesced, "
        f"{totals['rejected']} rejected{tail}"
    )


def _run_report(args: argparse.Namespace) -> "tuple[str, int]":
    from .errors import ArtifactError
    from .telemetry.report import (
        load_run,
        render_report_json,
        render_report_text,
        render_report_trace,
    )

    try:
        manifest, spans = load_run(args.dir)
    except ArtifactError as exc:
        return f"report error: {exc}", 1
    if args.output_format == "json":
        return render_report_json(manifest, spans), 0
    if args.output_format == "trace":
        return render_report_trace(manifest, spans), 0
    return render_report_text(manifest, spans), 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    tel_dir = getattr(args, "telemetry", None)
    session = None
    if tel_dir is not None:
        config = {key: value for key, value in vars(args).items()
                  if key not in ("command", "telemetry")}
        session = telemetry.enable(
            command=args.command,
            argv=list(argv) if argv is not None else sys.argv[1:],
            config=config,
            seed=getattr(args, "seed", None),
        )
    try:
        with telemetry.span(f"cli.{args.command}"):
            if args.command == "lint":
                text, code = _run_lint(args)
            elif args.command == "report":
                text, code = _run_report(args)
            else:
                handlers = {
                    "info": lambda: _run_info(),
                    "fig1": lambda: _run_fig1(),
                    "fig3": lambda: _run_fig3(args),
                    "fig5": lambda: _run_fig5(args),
                    "table1": lambda: _run_table1(),
                    "table2": lambda: _run_table2(args),
                    "fig6": lambda: _run_fig6(args),
                    "fig7": lambda: _run_fig7(args),
                    "faults": lambda: _run_faults(args),
                    "scaling": lambda: _run_scaling(args),
                    "deploy": lambda: _run_deploy(args),
                    "cache": lambda: _run_cache(args),
                    "serve": lambda: _run_serve(args),
                }
                text, code = handlers[args.command](), 0
        print(text)
        return code
    finally:
        if session is not None:
            telemetry.disable()
            session.save(tel_dir)
            # stderr, so stdout stays byte-identical with telemetry off
            print(
                f"[telemetry] run manifest + spans written to {tel_dir}",
                file=sys.stderr,
            )


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
