"""Global circuit parameter bundle for the ReSiPE engine.

The paper (Section III-D / IV-A) fixes one operating point:

========================  ==========================
slice length              100 ns (1 GHz calibration)
computation stage ``Δt``  1 ns
spike width               1 ns
``V_s``                   1 V
``R_gd``                  100 kΩ
``C_gd``                  100 fF
``C_cog``                 100 fF
crossbar                  32 × 32, 1T1R
LRS / HRS                 10 kΩ / 1 MΩ
linear-regime bound       Σ G ≤ 1.6 mS (R ∈ 50 kΩ–1 MΩ)
========================  ==========================

:class:`CircuitParameters` carries this operating point plus the derived
quantities used throughout the library.  Two constructors are provided:

* :meth:`CircuitParameters.paper` — the literal published values.
* :meth:`CircuitParameters.calibrated` — same values except ``C_cog`` is
  enlarged so that the *stated* linear regime (``Σ G ≤ 1.6 mS``) actually
  keeps the column charging linear (``Δt ≤ ratio · R_eq C_cog``).  See the
  parameter-consistency note in DESIGN.md: with the literal 100 fF the
  column is ~16 time constants deep into saturation at Σ G = 1.6 mS.
"""

from __future__ import annotations

import dataclasses
import math

from .errors import ConfigurationError
from .units import FEMTO, KILO, MEGA, MILLI, NANO, si_format

__all__ = ["CircuitParameters", "default_parameters"]


@dataclasses.dataclass(frozen=True)
class CircuitParameters:
    """Operating point of a ReSiPE engine.

    All values are in base SI units.  Instances are immutable; use
    :func:`dataclasses.replace` to derive variants.

    Attributes
    ----------
    v_s:
        Supply of the ramp generator (volts).
    r_gd:
        Charging resistance of the global-decoder ramp (ohms).
    c_gd:
        Ramp capacitor of the global decoder (farads).
    c_cog:
        Column output-generator capacitor, one per bitline (farads).
    slice_length:
        Duration of one time slice S1/S2 (seconds).
    dt:
        Duration of the computation stage at the end of S1 (seconds).
    spike_width:
        Width of a single spike pulse (seconds).  Only affects driver
        energy, never the encoded value.
    rows, cols:
        Crossbar dimensions (wordlines × bitlines).
    r_lrs, r_hrs:
        Low/high resistance states of a ReRAM cell (ohms).
    g_column_linear_limit:
        Maximum total column conductance for which the design treats the
        column charge-up as linear (siemens); the paper uses 1.6 mS.
    t_in_min, t_in_max:
        Usable input-spike timing window within a slice (seconds).  The
        paper characterises 10 ns–80 ns on a 100 ns slice.
    """

    v_s: float = 1.0
    r_gd: float = 100 * KILO
    c_gd: float = 100 * FEMTO
    c_cog: float = 100 * FEMTO
    slice_length: float = 100 * NANO
    dt: float = 1 * NANO
    spike_width: float = 1 * NANO
    rows: int = 32
    cols: int = 32
    r_lrs: float = 10 * KILO
    r_hrs: float = 1 * MEGA
    g_column_linear_limit: float = 1.6 * MILLI
    t_in_min: float = 10 * NANO
    t_in_max: float = 80 * NANO

    def __post_init__(self) -> None:
        positive = {
            "v_s": self.v_s,
            "r_gd": self.r_gd,
            "c_gd": self.c_gd,
            "c_cog": self.c_cog,
            "slice_length": self.slice_length,
            "dt": self.dt,
            "spike_width": self.spike_width,
            "r_lrs": self.r_lrs,
            "r_hrs": self.r_hrs,
            "g_column_linear_limit": self.g_column_linear_limit,
        }
        for name, value in positive.items():
            if not (isinstance(value, (int, float)) and value > 0):
                raise ConfigurationError(f"{name} must be positive, got {value!r}")
        if self.rows < 1 or self.cols < 1:
            raise ConfigurationError(
                f"crossbar dimensions must be >= 1, got {self.rows}x{self.cols}"
            )
        if self.r_lrs >= self.r_hrs:
            raise ConfigurationError(
                f"LRS resistance ({self.r_lrs}) must be below HRS ({self.r_hrs})"
            )
        if self.dt >= self.slice_length:
            raise ConfigurationError(
                "computation stage dt must be shorter than the slice"
            )
        if not 0 <= self.t_in_min < self.t_in_max <= self.slice_length:
            raise ConfigurationError(
                "require 0 <= t_in_min < t_in_max <= slice_length, got "
                f"[{self.t_in_min}, {self.t_in_max}] on {self.slice_length}"
            )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def paper(cls) -> "CircuitParameters":
        """The literal operating point published in the paper."""
        return cls()

    @classmethod
    def calibrated(
        cls,
        linearity_ratio: float = 0.5,
        ramp_ratio: float = 0.1,
        **overrides: float,
    ) -> "CircuitParameters":
        """Operating point re-sized so the stated linear regime is real.

        Two adjustments relative to the literal published values (see the
        parameter-consistency note in DESIGN.md):

        * ``C_cog`` is chosen so that at the stated linear-regime bound
          (``Σ G = g_column_linear_limit``) the computation stage spans at
          most ``linearity_ratio`` column time constants:

              Δt = linearity_ratio · R_eq · C_cog
              ⇒ C_cog = Δt · Σ G / linearity_ratio

          With the paper's Δt = 1 ns, Σ G = 1.6 mS and ratio 0.5 this
          yields C_cog = 3.2 pF (literal value: 100 fF, i.e. 16 time
          constants — full saturation).

        * ``R_gd`` is enlarged so the latest usable spike samples the
          ramp at only ``ramp_ratio`` time constants:

              t_in_max = ramp_ratio · R_gd · C_gd

          With t_in_max = 80 ns and ratio 0.1 this gives τ_gd = 800 ns
          (R_gd = 8 MΩ at C_gd = 100 fF; the literal 100 kΩ gives
          τ_gd = 10 ns, i.e. 8 τ of curvature — mostly but not fully
          cancelled by the shared-ramp decode).
        """
        if not 0 < linearity_ratio < 5:
            raise ConfigurationError(
                f"linearity_ratio must be in (0, 5), got {linearity_ratio!r}"
            )
        if not 0 < ramp_ratio < 5:
            raise ConfigurationError(
                f"ramp_ratio must be in (0, 5), got {ramp_ratio!r}"
            )
        base = cls(**overrides) if overrides else cls()
        c_cog = base.dt * base.g_column_linear_limit / linearity_ratio
        r_gd = base.t_in_max / (ramp_ratio * base.c_gd)
        return dataclasses.replace(base, c_cog=c_cog, r_gd=r_gd)

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def tau_gd(self) -> float:
        """Time constant of the global-decoder ramp, ``R_gd · C_gd``."""
        return self.r_gd * self.c_gd

    @property
    def g_lrs(self) -> float:
        """Conductance of a cell in the low-resistance state."""
        return 1.0 / self.r_lrs

    @property
    def g_hrs(self) -> float:
        """Conductance of a cell in the high-resistance state."""
        return 1.0 / self.r_hrs

    @property
    def mac_gain(self) -> float:
        """Ideal linear MAC gain ``Δt / C_cog`` (ohms).

        In the linear regime ``t_out = mac_gain · Σ t_in,i G_i`` (Eq. 5).
        """
        return self.dt / self.c_cog

    @property
    def mvm_latency(self) -> float:
        """Latency of one complete single-spike MVM: two slices (S1+S2)."""
        return 2.0 * self.slice_length

    @property
    def max_column_conductance(self) -> float:
        """Largest possible total column conductance (all cells at LRS)."""
        return self.rows * self.g_lrs

    def column_time_constant(self, total_g: float) -> float:
        """Charging time constant of a column, ``C_cog / Σ G``."""
        if total_g <= 0:
            raise ConfigurationError(
                f"total column conductance must be positive, got {total_g!r}"
            )
        return self.c_cog / total_g

    def saturation_depth(self, total_g: float) -> float:
        """``Δt / (R_eq C_cog)`` — how many time constants the computation
        stage spans.  Values well below 1 mean linear charging; values
        above ~3 mean the column output has saturated to ``V_eq``."""
        return self.dt / self.column_time_constant(total_g)

    def is_linear_regime(self, total_g: float, threshold: float = 1.0) -> bool:
        """Whether a column with total conductance ``total_g`` charges
        approximately linearly during the computation stage."""
        return self.saturation_depth(total_g) <= threshold

    def ramp_voltage(self, t: float) -> float:
        """Global-decoder ramp voltage at time ``t`` into a slice (Eq. 1,
        exact exponential form)."""
        if t < 0:
            raise ConfigurationError(f"time into slice must be >= 0, got {t!r}")
        return self.v_s * (1.0 - math.exp(-t / self.tau_gd))

    def describe(self) -> str:
        """Human-readable multi-line summary of the operating point."""
        lines = [
            f"V_s           = {si_format(self.v_s, 'V')}",
            f"R_gd          = {si_format(self.r_gd, 'Ohm')}",
            f"C_gd          = {si_format(self.c_gd, 'F')}",
            f"C_cog         = {si_format(self.c_cog, 'F')}",
            f"slice         = {si_format(self.slice_length, 's')}",
            f"dt (compute)  = {si_format(self.dt, 's')}",
            f"crossbar      = {self.rows} x {self.cols} (1T1R)",
            f"LRS / HRS     = {si_format(self.r_lrs, 'Ohm')} / "
            f"{si_format(self.r_hrs, 'Ohm')}",
            f"MAC gain      = {si_format(self.mac_gain, 'Ohm')}",
            f"MVM latency   = {si_format(self.mvm_latency, 's')}",
        ]
        return "\n".join(lines)


def default_parameters() -> CircuitParameters:
    """The default operating point used across examples and benchmarks.

    This is the *calibrated* variant (see :meth:`CircuitParameters.calibrated`)
    because it realises the linear regime the paper's analysis assumes; the
    paper-literal point remains available via
    :meth:`CircuitParameters.paper`.
    """
    return CircuitParameters.calibrated()
