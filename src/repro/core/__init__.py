"""ReSiPE core: the paper's primary contribution.

* :mod:`repro.core.encoding` — the single-spiking data format: a value is
  the arrival time of one spike inside a slice (Section III-A).
* :mod:`repro.core.global_decoder` — GD module: spike timing → wordline
  voltage via the shared ramp (Eq. 1).
* :mod:`repro.core.cog` — column output generator: column charge-up and
  voltage → output spike timing (Eqs. 3–4).
* :mod:`repro.core.mvm` — the composed single-spike MVM (Eqs. 5–6) in
  exact and idealised-linear modes.
* :mod:`repro.core.mac` — the two-input MAC demonstrator circuit of
  Fig. 2, netlisted on the transient engine (regenerates Fig. 3).
* :mod:`repro.core.engine` — a full crossbar-scale ReSiPE engine.
* :mod:`repro.core.pipeline` — two-slice multi-layer pipelining.
* :mod:`repro.core.nonlinearity` — regime analysis and compensation.
* :mod:`repro.core.power` — ReSiPE power/latency/area model.
"""

from .encoding import SingleSpikeCodec
from .global_decoder import GlobalDecoder
from .cog import ColumnOutputGenerator, COGResult
from .mvm import SingleSpikeMVM, MVMMode
from .mac import SingleSpikeMAC, MACWaveforms
from .engine import ReSiPEEngine
from .pipeline import PipelineSchedule, LayerTask, schedule_pipeline
from .nonlinearity import (
    linear_mac_output,
    exact_mac_output,
    transfer_error,
    NonlinearityReport,
    analyse_nonlinearity,
)
from .power import ReSiPEPowerModel
from .timing_noise import (
    TimingNoiseReport,
    analyse_timing_noise,
    effective_bits,
    total_timing_noise,
)

__all__ = [
    "SingleSpikeCodec",
    "GlobalDecoder",
    "ColumnOutputGenerator",
    "COGResult",
    "SingleSpikeMVM",
    "MVMMode",
    "SingleSpikeMAC",
    "MACWaveforms",
    "ReSiPEEngine",
    "PipelineSchedule",
    "LayerTask",
    "schedule_pipeline",
    "linear_mac_output",
    "exact_mac_output",
    "transfer_error",
    "NonlinearityReport",
    "analyse_nonlinearity",
    "ReSiPEPowerModel",
    "TimingNoiseReport",
    "analyse_timing_noise",
    "effective_bits",
    "total_timing_noise",
]
