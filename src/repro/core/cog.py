"""Column output generator (COG): column charge-up → output spike time.

One COG per bitline (paper Section III-C).  During the computation
stage the column capacitor ``C_cog`` charges toward the column Thevenin
voltage (Eq. 3):

    V_out = V_eq (1 - exp(-Δt / (R_eq C_cog)))

During S2 the shared ramp runs again and a comparator fires when the
ramp crosses the held ``V_out`` (Eq. 4), i.e.

    t_out = -R_gd C_gd · ln(1 - V_out / V_s)

If ``t_out`` would land beyond the slice the comparator never fires and
the output saturates ("no spike within S2"); :class:`COGResult` reports
that per column.
"""

from __future__ import annotations

import dataclasses
from typing import Union

import numpy as np

from ..circuits.comparator import ComparatorModel
from ..config import CircuitParameters
from ..errors import CircuitError

ArrayLike = Union[float, np.ndarray]

__all__ = ["ColumnOutputGenerator", "COGResult"]


@dataclasses.dataclass(frozen=True)
class COGResult:
    """Per-column outcome of the output-generation stage.

    Attributes
    ----------
    times:
        Output spike times (seconds).  Saturated columns are clamped to
        the slice length.
    fired:
        Boolean mask — ``False`` where the comparator never crossed
        within S2 (saturated output).
    v_out:
        The held column voltages that produced the times.
    """

    times: np.ndarray
    fired: np.ndarray
    v_out: np.ndarray

    @property
    def any_saturated(self) -> bool:
        """Whether any column failed to fire inside the slice."""
        return bool(np.any(~self.fired))


class ColumnOutputGenerator:
    """Voltage-to-timing back end of a ReSiPE crossbar.

    Parameters
    ----------
    params:
        Circuit operating point.
    exact:
        ``True`` uses the exact exponential charge-up and ramp inversion;
        ``False`` the linear approximations of Eqs. 3–4.
    comparator:
        Optional comparator error model (offset shifts the effective
        threshold, delay shifts the output edge).
    """

    def __init__(
        self,
        params: CircuitParameters,
        exact: bool = True,
        comparator: "ComparatorModel | None" = None,
    ) -> None:
        self.params = params
        self.exact = exact
        self.comparator = comparator

    # ------------------------------------------------------------------
    # Stage 1: computation-stage charge-up (Eq. 3)
    # ------------------------------------------------------------------
    def column_voltage(self, v_eq: ArrayLike, r_eq: ArrayLike) -> ArrayLike:
        """Held column voltage after the computation stage.

        Parameters are the per-column Thevenin equivalents (Eq. 2).
        """
        v_eq_arr = np.asarray(v_eq, dtype=float)
        r_eq_arr = np.asarray(r_eq, dtype=float)
        if np.any(r_eq_arr <= 0):
            raise CircuitError("column equivalent resistance must be positive")
        depth = self.params.dt / (r_eq_arr * self.params.c_cog)
        if self.exact:
            v = v_eq_arr * (1.0 - np.exp(-depth))
        else:
            v = v_eq_arr * depth
        return v if np.ndim(v) else float(v)

    # ------------------------------------------------------------------
    # Stage 2: ramp comparison in S2 (Eq. 4)
    # ------------------------------------------------------------------
    def times_from_voltages(self, v_out: ArrayLike, backend=None) -> COGResult:
        """Output spike times for held column voltages.

        ``backend`` routes the hot elementwise transforms through a
        :class:`~repro.kernels.ComputeBackend` (default numpy — the
        byte-identical reference; the numba backend inherits the numpy
        transforms, so results never depend on the knob).
        """
        from ..kernels import get_backend

        be = get_backend(backend)
        v = np.atleast_1d(np.asarray(v_out, dtype=float))
        if np.any(v < 0):
            raise CircuitError("held column voltages must be >= 0")
        threshold = v
        if self.comparator is not None:
            threshold = np.asarray(
                self.comparator.effective_threshold(v), dtype=float
            )
            threshold = np.maximum(threshold, 0.0)

        p = self.params
        if self.exact:
            ratio = threshold / p.v_s
            reachable = ratio < 1.0
            with np.errstate(divide="ignore", invalid="ignore"):
                t = -p.tau_gd * be.log1p(-be.where(reachable, ratio, 0.0))
            t = be.where(reachable, t, np.inf)
        else:
            t = threshold * p.tau_gd / p.v_s

        if self.comparator is not None:
            t = np.asarray(self.comparator.output_edge_time(t), dtype=float)

        fired = t <= p.slice_length
        times = be.where(fired, t, p.slice_length)
        return COGResult(times=times, fired=fired, v_out=v)

    # ------------------------------------------------------------------
    # Composition
    # ------------------------------------------------------------------
    def generate(self, v_eq: ArrayLike, r_eq: ArrayLike) -> COGResult:
        """Full COG path: column charge-up then ramp comparison."""
        v_out = self.column_voltage(v_eq, r_eq)
        return self.times_from_voltages(v_out)

    def charging_energy(self, v_out: ArrayLike) -> ArrayLike:
        """Energy drawn per column per evaluation.

        Two contributions repeat every MVM (this is what makes the COG
        cluster dominate ReSiPE power — 98.1 % in the paper):

        * charging ``C_cog`` to ``V_out`` during the computation stage
          (and discharging it at reset): ``C_cog · V_out²``;
        * the COG's share of the S2 reference ramp swing.
        """
        v = np.asarray(v_out, dtype=float)
        cap = self.params.c_cog * v**2
        ramp_share = self.params.c_gd * self.params.v_s**2
        out = cap + ramp_share
        return out if np.ndim(out) else float(out)
