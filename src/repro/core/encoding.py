"""The single-spiking data format (paper Section III-A).

A datum is one spike per slice; its value is the duration from the
beginning of the slice to the spike's rising edge.  :class:`SingleSpikeCodec`
maps normalised values in ``[0, 1]`` to spike times in ``[0, t_max]``
linearly and back.  The codec is deliberately independent of spike width
and shape — exactly the property the paper highlights.

Two zero-handling modes exist:

* ``sparse_zero=True`` (default): a value of exactly zero emits *no*
  spike at all, saving driver energy; the decoder maps a missing spike
  back to zero.  (The GD samples 0 V for a never-arriving spike, so the
  electrical behaviour is identical.)
* ``sparse_zero=False``: zero is a spike at t = 0.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Union

import numpy as np

from ..circuits.spike import NO_SPIKE, SingleSpike
from ..errors import EncodingError
from ..units import NANO

ArrayLike = Union[float, np.ndarray]

__all__ = ["SingleSpikeCodec"]


@dataclasses.dataclass(frozen=True)
class SingleSpikeCodec:
    """Linear value ↔ spike-time codec on a slice.

    Attributes
    ----------
    t_max:
        Spike time representing the full-scale value 1.0 (seconds).
        Must not exceed the slice length; the paper leaves headroom for
        the computation stage (t_max = 80 ns on a 100 ns slice).
    slice_length:
        Slice duration (seconds), used for validation only.
    spike_width:
        Width given to emitted spikes (seconds).
    sparse_zero:
        Whether the value 0 is encoded as "no spike".
    """

    t_max: float = 80 * NANO
    slice_length: float = 100 * NANO
    spike_width: float = 1 * NANO
    sparse_zero: bool = True

    def __post_init__(self) -> None:
        if self.t_max <= 0:
            raise EncodingError(f"t_max must be positive, got {self.t_max!r}")
        if self.t_max > self.slice_length:
            raise EncodingError(
                f"t_max ({self.t_max}) cannot exceed the slice "
                f"({self.slice_length})"
            )
        if self.spike_width <= 0:
            raise EncodingError(f"spike width must be positive, got {self.spike_width!r}")

    # ------------------------------------------------------------------
    # Array interface (hot path)
    # ------------------------------------------------------------------
    def times_from_values(self, values: ArrayLike) -> ArrayLike:
        """Spike times for normalised values in ``[0, 1]``.

        Vectorised; raises on out-of-range values rather than silently
        clipping (callers own their normalisation).
        """
        v = np.asarray(values, dtype=float)
        if np.any(v < -1e-12) or np.any(v > 1 + 1e-9):
            raise EncodingError(
                f"values must lie in [0, 1]; got range "
                f"[{float(v.min())}, {float(v.max())}]"
            )
        out = np.clip(v, 0.0, 1.0) * self.t_max
        return out if np.ndim(out) else float(out)

    def values_from_times(self, times: ArrayLike) -> ArrayLike:
        """Normalised values for spike times (inverse map).

        Times beyond ``t_max`` decode to values > 1 — callers that need
        saturation apply it explicitly (see
        :meth:`saturating_values_from_times`).
        """
        t = np.asarray(times, dtype=float)
        if np.any(t < -1e-18):
            raise EncodingError("spike times must be >= 0")
        out = t / self.t_max
        return out if np.ndim(out) else float(out)

    def saturating_values_from_times(self, times: ArrayLike) -> ArrayLike:
        """Like :meth:`values_from_times` but clamped to ``[0, 1]``."""
        out = np.clip(np.asarray(self.values_from_times(times), dtype=float), 0.0, 1.0)
        return out if np.ndim(out) else float(out)

    # ------------------------------------------------------------------
    # Object interface (signal level)
    # ------------------------------------------------------------------
    def encode(self, value: float) -> SingleSpike:
        """Encode one value into a :class:`SingleSpike`."""
        if value == 0 and self.sparse_zero:
            return NO_SPIKE
        t = float(self.times_from_values(value))
        return SingleSpike(time=t, width=self.spike_width)

    def decode(self, spike: SingleSpike) -> float:
        """Decode one :class:`SingleSpike` back to a value."""
        if spike.time is None:
            return 0.0
        if spike.time > self.slice_length:
            raise EncodingError(
                f"spike at {spike.time} lies outside the slice "
                f"({self.slice_length})"
            )
        return float(self.values_from_times(spike.time))

    def encode_vector(self, values: Sequence[float]) -> List[SingleSpike]:
        """Encode a vector of values into spikes (one per element)."""
        return [self.encode(float(v)) for v in np.asarray(values, dtype=float)]

    def decode_vector(self, spikes: Sequence[SingleSpike]) -> np.ndarray:
        """Decode a list of spikes back into a value vector."""
        return np.array([self.decode(s) for s in spikes], dtype=float)

    def spike_times_or_nan(self, spikes: Sequence[SingleSpike]) -> np.ndarray:
        """Spike times with ``nan`` marking absent spikes (array form used
        by the vectorised engine; a ``nan`` time contributes 0)."""
        return np.array(
            [np.nan if s.time is None else s.time for s in spikes], dtype=float
        )
