"""Crossbar-scale ReSiPE engine (paper Fig. 4).

:class:`ReSiPEEngine` bundles a programmed crossbar, the single-spike
codec, the GD/COG stages and output calibration into a value-in /
value-out MVM operator:

    y = engine.mvm_values(x)      # x, y are normalised vectors

Internally: encode ``x`` into spike times, run the (exact or linear)
timing MVM, decode output times with the engine's calibrated output
scale.  The engine also supports Monte-Carlo process-variation clones —
the Fig. 7 protocol — and optional column-saturation compensation.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..config import CircuitParameters
from ..errors import MappingError, ShapeError
from ..reram.crossbar import CrossbarArray, StackedCrossbar
from ..reram.device import DeviceSpec
from ..reram.variation import StuckAtFaultModel, VariationModel
from .encoding import SingleSpikeCodec
from .mvm import MVMMode, SingleSpikeMVM
from .nonlinearity import compensate_column_saturation

__all__ = ["ReSiPEEngine"]


class ReSiPEEngine:
    """One crossbar tile operated in the single-spiking data format.

    Parameters
    ----------
    array:
        Programmed crossbar.
    params:
        Circuit operating point.
    mode:
        Evaluation fidelity (exact circuit equations by default).
    codec:
        Input codec; defaults to a codec on ``[0, t_in_max]`` from
        ``params``.
    output_scale:
        Time that decodes to an output value of 1.0.  Default: the
        time produced by Eq. 6 when **one** full-scale input drives a
        full-LRS cell, i.e. ``mac_gain · t_max · g_max``.  With this
        choice the decoded output is exactly ``Σ x_i w_i`` where
        ``w = G/g_max ∈ [0, 1]`` (in LINEAR mode).
    compensate:
        Apply per-column saturation compensation to decoded outputs
        (EXACT mode extension).
    """

    def __init__(
        self,
        array: CrossbarArray,
        params: CircuitParameters,
        mode: MVMMode = MVMMode.EXACT,
        codec: Optional[SingleSpikeCodec] = None,
        output_scale: Optional[float] = None,
        compensate: bool = False,
    ) -> None:
        self.array = array
        self.params = params
        self.mode = mode
        self.codec = codec if codec is not None else SingleSpikeCodec(
            t_max=params.t_in_max,
            slice_length=params.slice_length,
            spike_width=params.spike_width,
        )
        self.mvm = SingleSpikeMVM(array, params, mode=mode)
        if output_scale is None:
            output_scale = params.mac_gain * self.codec.t_max * array.spec.g_max
        if output_scale <= 0:
            raise MappingError(f"output scale must be positive, got {output_scale!r}")
        self.output_scale = output_scale
        self.compensate = compensate

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_normalised_weights(
        cls,
        weights: np.ndarray,
        params: CircuitParameters,
        spec: Optional[DeviceSpec] = None,
        **kwargs,
    ) -> "ReSiPEEngine":
        """Build an engine from a ``(rows, cols)`` weight matrix in
        ``[0, 1]`` (linearly mapped onto the conductance window)."""
        w = np.asarray(weights, dtype=float)
        if w.ndim != 2:
            raise ShapeError(f"weights must be 2-D, got shape {w.shape}")
        array = CrossbarArray(
            w.shape[0],
            w.shape[1],
            spec if spec is not None else DeviceSpec.paper_linear_range(),
        )
        array.program_normalised(w)
        return cls(array, params, **kwargs)

    def perturbed(
        self,
        rng: np.random.Generator,
        sigma: float,
        distribution: str = "normal",
        faults: Optional[StuckAtFaultModel] = None,
    ) -> "ReSiPEEngine":
        """A Monte-Carlo clone with process variation applied to the
        programmed conductances (the Fig. 7 protocol).  The original
        engine is untouched."""
        variation = VariationModel(sigma=sigma, distribution=distribution)
        array = self.array.perturb(rng, variation=variation, faults=faults)
        return ReSiPEEngine(
            array,
            self.params,
            mode=self.mode,
            codec=self.codec,
            output_scale=self.output_scale,
            compensate=self.compensate,
        )

    def faulted(
        self, injector, rng: np.random.Generator
    ) -> "ReSiPEEngine":
        """A clone whose conductances are disturbed by ``injector`` (a
        :class:`~repro.faults.injectors.FaultInjector` — stuck-at,
        drift, wear, or any composition).  The original engine is
        untouched, mirroring :meth:`perturbed`."""
        return ReSiPEEngine(
            self.array.injected(injector, rng),
            self.params,
            mode=self.mode,
            codec=self.codec,
            output_scale=self.output_scale,
            compensate=self.compensate,
        )

    def aged(
        self,
        retention,
        elapsed: float,
        rng: Optional[np.random.Generator] = None,
    ) -> "ReSiPEEngine":
        """A clone whose conductances have drifted for ``elapsed``
        seconds under ``retention`` (a
        :class:`repro.reram.retention.RetentionModel`).  The original
        engine is untouched."""
        array = retention.age_array(self.array, elapsed, rng)
        return ReSiPEEngine(
            array,
            self.params,
            mode=self.mode,
            codec=self.codec,
            output_scale=self.output_scale,
            compensate=self.compensate,
        )

    # ------------------------------------------------------------------
    # Value-domain MVM
    # ------------------------------------------------------------------
    def mvm_values(self, x: np.ndarray) -> np.ndarray:
        """Compute ``y ≈ x @ W`` in the single-spiking time domain.

        ``x`` is ``(rows,)`` or ``(batch, rows)`` with entries in
        ``[0, 1]``; the result is value-decoded output, ``(cols,)`` or
        ``(batch, cols)``.  Outputs that saturate the slice decode to
        the clamp value (the engine's dynamic-range ceiling).
        """
        x_arr = np.asarray(x, dtype=float)
        times_in = np.asarray(self.codec.times_from_values(x_arr), dtype=float)
        result = self.mvm.evaluate(times_in)
        t_out = result.times
        if self.compensate and self.mode is MVMMode.EXACT:
            total_g = self.array.column_total_conductance()
            t_out = np.asarray(
                compensate_column_saturation(t_out, total_g, self.params),
                dtype=float,
            )
        return t_out / self.output_scale

    def mvm_values_stacked(
        self, x: np.ndarray, stacked: StackedCrossbar, backend=None
    ) -> np.ndarray:
        """:meth:`mvm_values` over ``T`` conductance realizations at once.

        ``stacked`` carries the Monte-Carlo trial tensor (built from
        perturbed clones of this engine's array); ``x`` is ``(rows,)``,
        ``(batch, rows)`` shared by every trial, or per-trial
        ``(T, batch, rows)``.  Returns ``(T, cols)`` or
        ``(T, batch, cols)``.  Codec, operating point, output scale and
        compensation are this engine's own — exactly the state every
        per-trial clone inherits — so each ``result[t]`` is bit-identical
        to ``clone_t.mvm_values(x)``.  ``backend`` selects the stacked
        compute kernels (:mod:`repro.kernels`; default numpy) and never
        changes results.
        """
        x_arr = np.asarray(x, dtype=float)
        times_in = np.asarray(self.codec.times_from_values(x_arr), dtype=float)
        result = self.mvm.evaluate_stacked(times_in, stacked, backend=backend)
        t_out = result.times
        if self.compensate and self.mode is MVMMode.EXACT:
            total_g = stacked.column_total_conductance()  # (T, cols)
            if t_out.ndim == 3:
                total_g = total_g[:, None, :]
            t_out = np.asarray(
                compensate_column_saturation(t_out, total_g, self.params),
                dtype=float,
            )
        return t_out / self.output_scale

    def output_times(self, x: np.ndarray) -> np.ndarray:
        """Raw output spike times for normalised input values."""
        x_arr = np.asarray(x, dtype=float)
        times_in = np.asarray(self.codec.times_from_values(x_arr), dtype=float)
        return self.mvm.output_times(times_in)

    @property
    def normalised_weights(self) -> np.ndarray:
        """The stored weights as ``G / g_max`` (the matrix ``W`` such that
        LINEAR-mode :meth:`mvm_values` returns exactly ``x @ W``)."""
        return np.asarray(self.array.conductances) / self.array.spec.g_max

    def dynamic_range_ceiling(self) -> float:
        """Largest decodable output value before slice saturation."""
        return self.params.slice_length / self.output_scale
