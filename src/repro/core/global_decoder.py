"""Global decoder (GD): spike timing → wordline voltage.

One GD serves a crossbar (paper Section III-C).  During S1 it runs the
shared ramp ``V(C_gd)`` and, as each input spike arrives, a per-row
sample-and-hold captures the instantaneous ramp voltage (Eq. 1):

    V_in,i = V_s (1 - exp(-t_in,i / (R_gd C_gd)))
           ≈ V_s · t_in,i / (R_gd C_gd)          (linear approximation)

Inputs that never spike sample nothing and drive 0 V.  The class is
vectorised over rows and over batches.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from ..config import CircuitParameters
from ..errors import EncodingError
from ..circuits.sample_hold import SampleHoldModel

ArrayLike = Union[float, np.ndarray]

__all__ = ["GlobalDecoder"]


class GlobalDecoder:
    """Timing-to-voltage front end of a ReSiPE crossbar.

    Parameters
    ----------
    params:
        Circuit operating point (supplies ``V_s``, ``R_gd``, ``C_gd``,
        slice length).
    exact:
        ``True`` applies the exact exponential ramp (default); ``False``
        the linearised Eq. 1 approximation (used for idealised studies
        and for quantifying the ramp non-linearity).
    sample_hold:
        Optional static S/H error model applied to the captured voltage.
    """

    def __init__(
        self,
        params: CircuitParameters,
        exact: bool = True,
        sample_hold: "SampleHoldModel | None" = None,
    ) -> None:
        self.params = params
        self.exact = exact
        self.sample_hold = sample_hold

    def voltages_from_times(self, times: ArrayLike) -> ArrayLike:
        """Held wordline voltages for spike arrival times.

        ``nan`` entries mean "no spike" and produce 0 V.  Times must lie
        within ``[0, slice_length]``.
        """
        t = np.asarray(times, dtype=float)
        present = ~np.isnan(t)
        if np.any((t[present] < 0) | (t[present] > self.params.slice_length)):
            raise EncodingError(
                "spike times must lie within the slice "
                f"[0, {self.params.slice_length}]"
            )
        safe_t = np.where(present, t, 0.0)
        if self.exact:
            v = self.params.v_s * (1.0 - np.exp(-safe_t / self.params.tau_gd))
        else:
            v = self.params.v_s * safe_t / self.params.tau_gd
        v = np.where(present, v, 0.0)
        if self.sample_hold is not None:
            v = np.asarray(self.sample_hold.sample(v), dtype=float)
        return v if np.ndim(v) else float(v)

    def max_voltage(self, t_max: float) -> float:
        """Held voltage for the latest usable spike time (full scale)."""
        return float(self.voltages_from_times(t_max))

    def ramp_nonlinearity(self, t: ArrayLike) -> ArrayLike:
        """Relative deviation of the exact ramp from the linear ramp at
        time ``t``: ``(linear - exact) / linear``.  Grows with ``t``
        (paper Section III-D, "non-linearity of V(C_gd)")."""
        t_arr = np.asarray(t, dtype=float)
        if np.any(t_arr <= 0):
            raise EncodingError("nonlinearity defined for t > 0")
        linear = self.params.v_s * t_arr / self.params.tau_gd
        exact = self.params.v_s * (1.0 - np.exp(-t_arr / self.params.tau_gd))
        out = (linear - exact) / linear
        return out if np.ndim(out) else float(out)
