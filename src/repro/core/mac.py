"""The single-spiking MAC demonstrator circuit (paper Fig. 2 / Fig. 3).

Netlists the simplified MAC of Section III-B on the event-driven
transient engine and runs the full two-slice protocol:

* S1 ``[0, T)``: the shared ramp charges; per-input S/H circuits capture
  it at each spike arrival.
* computation stage ``[T-Δt, T)``: the column capacitor ``C_cog``
  charges from the held voltages through the ReRAM conductances; the
  ramp is reset.
* S2 ``[T, 2T)``: the ramp re-runs; a comparator fires when it crosses
  the held ``V_out`` and the pulse shaper emits the output spike.

The run produces real waveforms for every node — the reproduction of
Fig. 3 — and the measured output spike time, which the tests check
against the closed-form model in :mod:`repro.core.mvm`.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Sequence

import numpy as np

from ..circuits.transient import (
    Branch,
    Comparator,
    PiecewiseConstantSource,
    PulseShaper,
    RCNodeSpec,
    SampleHold,
    SwitchSpec,
    TransientEngine,
    TransientResult,
)
from ..circuits.waveform import Waveform
from ..config import CircuitParameters
from ..errors import CircuitError, EncodingError, ShapeError

__all__ = ["SingleSpikeMAC", "MACWaveforms"]

_RAMP_DISCHARGE_R = 10.0  # ohms; M_gd pull-down during reset


@dataclasses.dataclass
class MACWaveforms:
    """Waveform bundle of one MAC transient run (Fig. 3 content).

    Attributes
    ----------
    ramp:
        The shared ``V(C_gd)`` ramp across both slices.
    held_inputs:
        Per-input held voltages ``V_in,i`` out of the S/H stages.
    column:
        The ``V(C_cog)`` column-capacitor voltage.
    comparator:
        The comparator logic output in S2.
    output_spike:
        The shaped output pulse.
    t_out:
        Measured output spike time relative to the start of S2, or
        ``None`` if the comparator never fired (saturated).
    result:
        The raw transient result for further inspection.
    """

    ramp: Waveform
    held_inputs: Dict[int, Waveform]
    column: Waveform
    comparator: Waveform
    output_spike: Waveform
    t_out: Optional[float]
    result: TransientResult


class SingleSpikeMAC:
    """Circuit-level single-spiking MAC with ``M`` inputs.

    Parameters
    ----------
    params:
        Circuit operating point.
    conductances:
        Cell conductances ``G_i`` of the column (siemens), one per input.
    """

    def __init__(self, params: CircuitParameters, conductances: Sequence[float]) -> None:
        g = np.asarray(conductances, dtype=float)
        if g.ndim != 1 or g.size == 0:
            raise ShapeError("conductances must be a non-empty 1-D sequence")
        if np.any(g <= 0):
            raise CircuitError("cell conductances must be positive")
        self.params = params
        self.conductances = g

    # ------------------------------------------------------------------
    def netlist_text(
        self, spike_times: Sequence[Optional[float]]
    ) -> str:
        """The Fig. 2 schematic as a SPICE-flavoured netlist listing."""
        return self._build_engine(list(spike_times), 8).describe()

    def run(
        self,
        spike_times: Sequence[Optional[float]],
        points_per_segment: int = 64,
    ) -> MACWaveforms:
        """Simulate the full two-slice MAC for the given input spikes.

        ``spike_times`` holds per-input arrival times within S1 (seconds)
        or ``None`` for "no spike" (0 V wordline).
        """
        eng = self._build_engine(spike_times, points_per_segment)
        result = eng.run()
        p = self.params
        slice_len = p.slice_length
        spikes = result.spike_times("spike_out")
        t_out = spikes[0] - slice_len if spikes else None
        held = {
            i: result.waveform(f"vin{i}") for i in range(self.conductances.size)
        }
        return MACWaveforms(
            ramp=result.waveform("ramp"),
            held_inputs=held,
            column=result.waveform("cog"),
            comparator=result.waveform("comp_out"),
            output_spike=result.waveform("spike_out"),
            t_out=t_out,
            result=result,
        )

    def _build_engine(
        self,
        spike_times: Sequence[Optional[float]],
        points_per_segment: int,
    ) -> TransientEngine:
        """Netlist the Fig. 2 circuit for the given stimulus."""
        p = self.params
        if len(spike_times) != self.conductances.size:
            raise ShapeError(
                f"{len(spike_times)} spike times for "
                f"{self.conductances.size} conductances"
            )
        slice_len = p.slice_length
        comp_start = slice_len - p.dt
        for t in spike_times:
            if t is None:
                continue
            if not 0 <= t <= comp_start:
                raise EncodingError(
                    f"input spike at {t} must land in [0, {comp_start}] "
                    "(before the computation stage)"
                )

        eng = TransientEngine(t_stop=2 * slice_len, points_per_segment=points_per_segment)
        eng.add_source(PiecewiseConstantSource.constant("vs", p.v_s))

        # Shared ramp: charges in S1 and S2, hard-reset during the
        # computation stage (M_gd, paper Fig. 2).
        eng.add_switch(
            SwitchSpec("mgd", ((0.0, False), (comp_start, True), (slice_len, False)))
        )
        eng.add_rc_node(
            RCNodeSpec(
                "ramp",
                p.c_gd,
                (
                    Branch("vs", p.r_gd),
                    Branch("gnd", _RAMP_DISCHARGE_R, switch="mgd"),
                ),
            )
        )

        # Per-input S/H capturing the ramp at spike arrival.
        branches = []
        for i, t in enumerate(spike_times):
            node = f"vin{i}"
            samples = () if t is None else (float(t),)
            eng.add_sample_hold(SampleHold("ramp", node, samples, initial=0.0))
            branches.append(Branch(node, 1.0 / self.conductances[i], switch="rst1"))

        # Column capacitor charged through the cells during the
        # computation stage only (RST phases, Fig. 2); it holds its
        # voltage through S2 and is reset in the *next* cycle.
        eng.add_switch(
            SwitchSpec("rst1", ((0.0, False), (comp_start, True), (slice_len, False)))
        )
        eng.add_rc_node(RCNodeSpec("cog", p.c_cog, tuple(branches), v0=0.0))

        # S2 comparator + spike shaper.
        eng.add_comparator(
            Comparator(
                pos="ramp",
                neg="cog",
                output="comp_out",
                enable=(slice_len, 2 * slice_len),
            )
        )
        eng.add_pulse_shaper(PulseShaper("comp_out", "spike_out", width=p.spike_width))
        return eng

    # ------------------------------------------------------------------
    def predicted_t_out(self, spike_times: Sequence[Optional[float]]) -> Optional[float]:
        """Closed-form prediction of the output spike time (exact model).

        Returns ``None`` when the output saturates beyond the slice.
        Serves as the oracle the transient run is validated against.
        """
        p = self.params
        times = np.array(
            [np.nan if t is None else float(t) for t in spike_times], dtype=float
        )
        v_in = np.where(
            np.isnan(times), 0.0, p.v_s * (1.0 - np.exp(-np.where(np.isnan(times), 0.0, times) / p.tau_gd))
        )
        total_g = float(self.conductances.sum())
        v_eq = float((v_in * self.conductances).sum() / total_g)
        v_out = v_eq * (1.0 - np.exp(-p.dt * total_g / p.c_cog))
        if v_out >= p.v_s:
            return None
        t_out = -p.tau_gd * np.log1p(-v_out / p.v_s)
        return float(t_out) if t_out <= p.slice_length else None
