"""Single-spike matrix-vector multiplication (paper Eqs. 5–6).

Composes the global decoder, the crossbar column Thevenin reduction and
the column output generators into one vectorised operator:

    t_out,j = (Δt / C_cog) Σ_i t_in,i G_ij          (LINEAR mode, Eq. 6)

    t_out,j = -τ_gd ln(1 - V_out,j / V_s)            (EXACT mode)
      with V_out,j = V_eq,j (1 - e^{-Δt Σ_i G_ij / C_cog})
      and  V_eq,j  = Σ_i V_s (1 - e^{-t_in,i/τ_gd}) G_ij / Σ_i G_ij

EXACT mode carries the two non-linearities analysed in Section III-D
(ramp curvature and column saturation); LINEAR mode is the idealised
algebra.  Batched evaluation over many input vectors is a single numpy
expression.
"""

from __future__ import annotations

import enum
from typing import Optional, Union

import numpy as np

from ..config import CircuitParameters
from ..errors import ConfigurationError, ShapeError
from ..reram.crossbar import CrossbarArray, StackedCrossbar
from ..telemetry import session as _telemetry
from .cog import COGResult, ColumnOutputGenerator
from .global_decoder import GlobalDecoder

__all__ = ["MVMMode", "SingleSpikeMVM"]


class MVMMode(enum.Enum):
    """Fidelity of the single-spike MVM evaluation."""

    EXACT = "exact"
    LINEAR = "linear"


class SingleSpikeMVM:
    """The timing-domain MVM operator of one ReSiPE crossbar.

    Parameters
    ----------
    array:
        The programmed crossbar.
    params:
        Circuit operating point; its ``rows/cols`` need not match the
        array (the array's own shape governs).
    mode:
        :class:`MVMMode.EXACT` (default) or :class:`MVMMode.LINEAR`.
    decoder / cog:
        Optional pre-built front/back ends (e.g. carrying S/H or
        comparator error models); by default ideal exact stages are
        constructed from ``params``.
    parasitic_thevenin:
        Optional precomputed wire-parasitic column equivalents
        (:meth:`repro.reram.nonideal.IRDropSolver.column_thevenin`).
        When given, EXACT mode charges each column from the
        IR-drop-degraded Thevenin source instead of the ideal one.
    """

    def __init__(
        self,
        array: CrossbarArray,
        params: CircuitParameters,
        mode: MVMMode = MVMMode.EXACT,
        decoder: Optional[GlobalDecoder] = None,
        cog: Optional[ColumnOutputGenerator] = None,
        parasitic_thevenin=None,
    ) -> None:
        self.array = array
        self.params = params
        self.mode = mode
        exact = mode is MVMMode.EXACT
        self.decoder = decoder if decoder is not None else GlobalDecoder(params, exact=exact)
        self.cog = cog if cog is not None else ColumnOutputGenerator(params, exact=exact)
        self.parasitic_thevenin = parasitic_thevenin

    # ------------------------------------------------------------------
    def output_times(self, input_times: np.ndarray) -> np.ndarray:
        """Output spike times for input spike times.

        ``input_times`` is ``(rows,)`` or ``(batch, rows)`` with ``nan``
        marking absent spikes; the result is ``(cols,)`` or
        ``(batch, cols)``, clamped to the slice for saturated columns.
        """
        return self.evaluate(input_times).times

    def evaluate(self, input_times: np.ndarray) -> COGResult:
        """Full evaluation returning times, fired mask and held voltages."""
        t_in = np.asarray(input_times, dtype=float)
        squeeze = t_in.ndim == 1
        t_in = np.atleast_2d(t_in)
        if t_in.shape[1] != self.array.rows:
            raise ShapeError(
                f"input vector length {t_in.shape[1]} != crossbar rows "
                f"{self.array.rows}"
            )

        if self.mode is MVMMode.LINEAR:
            result = self._evaluate_linear(t_in)
        else:
            result = self._evaluate_exact(t_in)

        session = _telemetry.active()
        if session is not None:
            batch = t_in.shape[0]
            session.count("mvm.count", batch)
            session.count(
                "mvm.elements", batch * self.array.rows * self.array.cols
            )

        if squeeze:
            return COGResult(
                times=result.times[0], fired=result.fired[0], v_out=result.v_out[0]
            )
        return result

    # ------------------------------------------------------------------
    def _evaluate_exact(self, t_in: np.ndarray) -> COGResult:
        p = self.params
        g = self.array.conductances

        v_in = np.asarray(self.decoder.voltages_from_times(t_in), dtype=float)
        if self.parasitic_thevenin is not None:
            v_eq = self.parasitic_thevenin.v_eq(v_in)  # (batch, cols)
            depth = p.dt / (self.parasitic_thevenin.r_eq * p.c_cog)
        else:
            total_g = self.array.column_total_conductance()  # (cols,)
            v_eq = (v_in @ g) / total_g  # (batch, cols)
            depth = p.dt * total_g / p.c_cog  # (cols,)
        v_out = v_eq * (1.0 - np.exp(-depth))

        batch_result = self.cog.times_from_voltages(v_out.ravel())
        shape = v_out.shape
        return COGResult(
            times=batch_result.times.reshape(shape),
            fired=batch_result.fired.reshape(shape),
            v_out=batch_result.v_out.reshape(shape),
        )

    def evaluate_stacked(
        self, input_times: np.ndarray, stacked: StackedCrossbar,
        backend=None,
    ) -> COGResult:
        """Evaluate ``T`` Monte-Carlo conductance realizations at once.

        ``stacked`` holds the trial tensor ``(T, rows, cols)``;
        ``input_times`` is ``(rows,)`` / ``(batch, rows)`` (same inputs
        for every trial) or ``(T, batch, rows)`` (per-trial inputs, the
        shape deeper layers see once trials have diverged).  Returns a
        :class:`COGResult` of ``(T, cols)`` or ``(T, batch, cols)``
        arrays.

        The trial axis rides through one broadcast batched matmul plus
        elementwise codec stages — both provided by ``backend`` (a
        :class:`~repro.kernels.ComputeBackend`; default numpy) — so
        each ``result[t]`` is bit-identical to :meth:`evaluate` on the
        lone realization ``t`` at *any* backend choice — the property
        that lets the reproducibility suite compare persisted records
        byte for byte across serial and stacked paths.
        """
        from ..kernels import get_backend

        backend = get_backend(backend)
        t_in = np.asarray(input_times, dtype=float)
        squeeze = t_in.ndim == 1
        if t_in.ndim == 1:
            t_in = t_in[None, :]
        if t_in.ndim == 3 and t_in.shape[0] != stacked.trials:
            raise ShapeError(
                f"per-trial inputs carry {t_in.shape[0]} trials, "
                f"stack holds {stacked.trials}"
            )
        if t_in.shape[-1] != stacked.rows:
            raise ShapeError(
                f"input vector length {t_in.shape[-1]} != crossbar rows "
                f"{stacked.rows}"
            )
        if self.parasitic_thevenin is not None:
            raise ConfigurationError(
                "parasitic_thevenin is per-realization state; the stacked "
                "trial path only supports the ideal column model"
            )

        if self.mode is MVMMode.LINEAR:
            result = self._evaluate_linear_stacked(t_in, stacked, backend)
        else:
            result = self._evaluate_exact_stacked(t_in, stacked, backend)

        session = _telemetry.active()
        if session is not None:
            batch = t_in.shape[-2] if t_in.ndim == 3 else t_in.shape[0]
            products = stacked.trials * batch
            session.count("mvm.count", products)
            session.count(
                "mvm.elements", products * stacked.rows * stacked.cols
            )

        if squeeze:
            return COGResult(
                times=result.times[:, 0],
                fired=result.fired[:, 0],
                v_out=result.v_out[:, 0],
            )
        return result

    def _evaluate_exact_stacked(
        self, t_in: np.ndarray, stacked: StackedCrossbar, backend
    ) -> COGResult:
        p = self.params
        v_in = np.asarray(self.decoder.voltages_from_times(t_in), dtype=float)
        total_g = stacked.column_total_conductance()  # (T, cols)
        v_eq = (
            stacked.mvm_currents(v_in, backend) / total_g[:, None, :]
        )  # (T, b, cols)
        depth = p.dt * total_g / p.c_cog  # (T, cols)
        v_out = v_eq * (1.0 - backend.exp(-depth))[:, None, :]

        batch_result = self.cog.times_from_voltages(
            v_out.ravel(), backend=backend
        )
        shape = v_out.shape
        return COGResult(
            times=batch_result.times.reshape(shape),
            fired=batch_result.fired.reshape(shape),
            v_out=batch_result.v_out.reshape(shape),
        )

    def _evaluate_linear_stacked(
        self, t_in: np.ndarray, stacked: StackedCrossbar, backend
    ) -> COGResult:
        p = self.params
        safe_t = backend.where(np.isnan(t_in), 0.0, t_in)
        times = p.mac_gain * stacked.mvm_currents(
            safe_t, backend
        )  # Eq. 6, (T, b, cols)
        fired = times <= p.slice_length
        clamped = backend.where(fired, times, p.slice_length)
        v_out = times * p.v_s / p.tau_gd
        return COGResult(times=clamped, fired=fired, v_out=v_out)

    def _evaluate_linear(self, t_in: np.ndarray) -> COGResult:
        p = self.params
        g = self.array.conductances
        safe_t = np.where(np.isnan(t_in), 0.0, t_in)
        times = p.mac_gain * (safe_t @ g)  # Eq. 6
        fired = times <= p.slice_length
        clamped = np.where(fired, times, p.slice_length)
        # Back out the voltage a COG would have held (linear Eq. 4).
        v_out = times * p.v_s / p.tau_gd
        return COGResult(times=clamped, fired=fired, v_out=v_out)

    # ------------------------------------------------------------------
    def linear_full_scale_time(self, t_in_max: float) -> float:
        """Worst-case linear output time: every input at ``t_in_max`` into
        the all-LRS column.  Useful for choosing output normalisation."""
        g_col_max = float(self.array.column_total_conductance().max())
        return self.params.mac_gain * t_in_max * g_col_max

    def saturation_mask(self) -> np.ndarray:
        """Columns operating beyond the paper's linear bound (Σ G >
        ``g_column_linear_limit``)."""
        return self.array.exceeds_linear_limit(self.params.g_column_linear_limit)
