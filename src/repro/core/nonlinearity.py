"""Non-linearity analysis of the single-spiking MAC (paper Section III-D).

Two effects pull the exact transfer away from the ideal Eq. 6 line:

1. **Ramp curvature** — ``V(C_gd)`` is exponential, so late spikes
   sample proportionally less voltage.  Because the *same* ramp encodes
   the output in S2, the effect partially cancels (the paper calls it
   "subtle").
2. **Column saturation** — when ``Σ G`` is large, ``C_cog`` charges to
   ``V_eq`` within the computation stage and the output collapses from
   the *sum* toward the *weighted mean*; the paper bounds operation at
   ``Σ G ≤ 1.6 mS``.

This module provides the closed-form transfers, error metrics, the
regime report used by the Fig. 5 harness, and a saturation-compensation
decoder (an extension the paper's conclusion hints at).
"""

from __future__ import annotations

import dataclasses
from typing import Union

import numpy as np

from ..config import CircuitParameters
from ..errors import CircuitError, ShapeError

ArrayLike = Union[float, np.ndarray]

__all__ = [
    "linear_mac_output",
    "exact_mac_output",
    "transfer_error",
    "compensate_column_saturation",
    "NonlinearityReport",
    "analyse_nonlinearity",
]


def _as_2d(times: np.ndarray, conductances: np.ndarray):
    t = np.atleast_2d(np.asarray(times, dtype=float))
    g = np.asarray(conductances, dtype=float)
    if g.ndim != 1:
        raise ShapeError("conductances must be 1-D (one column)")
    if t.shape[1] != g.size:
        raise ShapeError(
            f"times row length {t.shape[1]} != number of cells {g.size}"
        )
    if np.any(g <= 0):
        raise CircuitError("conductances must be positive")
    return t, g


def linear_mac_output(
    times: ArrayLike, conductances: ArrayLike, params: CircuitParameters
) -> ArrayLike:
    """Ideal Eq. 6 output time: ``(Δt/C_cog) Σ t_i G_i``.

    ``times`` may be ``(M,)`` or ``(batch, M)``; ``nan`` entries (no
    spike) contribute zero.
    """
    t, g = _as_2d(np.asarray(times, dtype=float), np.asarray(conductances, dtype=float))
    safe = np.where(np.isnan(t), 0.0, t)
    out = params.mac_gain * (safe @ g)
    return out if np.ndim(times) > 1 else float(out[0])


def exact_mac_output(
    times: ArrayLike, conductances: ArrayLike, params: CircuitParameters
) -> ArrayLike:
    """Exact output time through the full exponential chain (unclamped —
    may exceed the slice; the engine clamps)."""
    t, g = _as_2d(np.asarray(times, dtype=float), np.asarray(conductances, dtype=float))
    present = ~np.isnan(t)
    safe = np.where(present, t, 0.0)
    v_in = np.where(present, params.v_s * (1.0 - np.exp(-safe / params.tau_gd)), 0.0)
    total_g = float(g.sum())
    v_eq = (v_in @ g) / total_g
    depth = params.dt * total_g / params.c_cog
    v_out = v_eq * (1.0 - np.exp(-depth))
    out = -params.tau_gd * np.log1p(-v_out / params.v_s)
    return out if np.ndim(times) > 1 else float(out[0])


def transfer_error(
    times: ArrayLike, conductances: ArrayLike, params: CircuitParameters
) -> ArrayLike:
    """Relative deviation ``(t_linear - t_exact) / t_linear``.

    Positive values mean the exact output falls *below* the ideal line —
    the behaviour of the light-blue high-G points in Fig. 5.
    """
    lin = np.asarray(linear_mac_output(times, conductances, params), dtype=float)
    exact = np.asarray(exact_mac_output(times, conductances, params), dtype=float)
    with np.errstate(divide="ignore", invalid="ignore"):
        err = np.where(lin > 0, (lin - exact) / lin, 0.0)
    return err if np.ndim(times) > 1 else float(err)


def compensate_column_saturation(
    t_out: ArrayLike, total_g: ArrayLike, params: CircuitParameters
) -> ArrayLike:
    """Invert the dominant (column-saturation) non-linearity.

    Given a measured output time and the column's known total
    conductance, recover an estimate of the ideal linear output time by
    exactly inverting Eq. 4 and the Eq. 3 charge-up::

        V_out = V_s (1 - e^{-t_out/τ_gd})
        V_eq  = V_out / (1 - e^{-Δt ΣG / C_cog})
        t_lin ≈ (Δt/C_cog) · τ_gd/V_s · V_eq · ΣG

    The residual error is only the (self-cancelling) ramp curvature.
    This is the "elaborated circuit designs ... toward better
    robustness" extension: a digital post-correction using per-column
    constants.
    """
    t = np.asarray(t_out, dtype=float)
    g = np.asarray(total_g, dtype=float)
    if np.any(g <= 0):
        raise CircuitError("total conductance must be positive")
    v_out = params.v_s * (1.0 - np.exp(-t / params.tau_gd))
    depth = params.dt * g / params.c_cog
    v_eq = v_out / (1.0 - np.exp(-depth))
    t_lin = (params.dt / params.c_cog) * (params.tau_gd / params.v_s) * v_eq * g
    return t_lin if np.ndim(t_lin) else float(t_lin)


@dataclasses.dataclass(frozen=True)
class NonlinearityReport:
    """Summary of the operating regime of one column configuration.

    Attributes
    ----------
    total_g:
        Column total conductance analysed (siemens).
    saturation_depth:
        ``Δt / (R_eq C_cog)`` — time constants spanned by the
        computation stage.
    linear:
        Whether the configuration is inside the paper's linear regime
        (``Σ G ≤ g_column_linear_limit``).
    max_relative_error:
        Worst ``(t_lin - t_exact)/t_lin`` over the sampled input grid.
    mean_relative_error:
        Mean of the same quantity.
    """

    total_g: float
    saturation_depth: float
    linear: bool
    max_relative_error: float
    mean_relative_error: float


def analyse_nonlinearity(
    params: CircuitParameters,
    total_g: float,
    cells: int = 32,
    grid: int = 24,
) -> NonlinearityReport:
    """Characterise one column's deviation from the ideal transfer.

    A ``cells``-input column with uniform per-cell conductance
    ``total_g / cells`` is swept over a grid of common input times in
    ``[t_in_min, t_in_max]``.
    """
    if total_g <= 0:
        raise CircuitError("total conductance must be positive")
    if cells < 1 or grid < 2:
        raise CircuitError("need cells >= 1 and grid >= 2")
    g = np.full(cells, total_g / cells)
    t_grid = np.linspace(params.t_in_min, params.t_in_max, grid)
    times = np.repeat(t_grid[:, None], cells, axis=1)
    err = np.asarray(transfer_error(times, g, params), dtype=float)
    depth = params.saturation_depth(total_g)
    return NonlinearityReport(
        total_g=total_g,
        saturation_depth=depth,
        linear=total_g <= params.g_column_linear_limit,
        max_relative_error=float(err.max()),
        mean_relative_error=float(err.mean()),
    )
