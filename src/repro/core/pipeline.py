"""Two-slice multi-layer pipelining (paper Fig. 1 and conclusion).

The single-spiking format makes the output slice of layer *n* literally
the input slice of layer *n+1*: "the output of layer n will be generated
in the second slice (S2), which can be directly used as the input of its
subsequent layer".  With one ReSiPE engine per layer this yields a
pipeline with an initiation interval of **two slices** per sample and a
fill latency of ``L + 1`` slices for ``L`` layers (S2ₙ ≡ S1ₙ₊₁ overlap),
versus ``2L`` slices per sample without pipelining.

:func:`schedule_pipeline` produces the explicit slice-level schedule and
verifies that no engine is double-booked — the scheduler is what the
conclusion's "post-spike latency could be potentially reduced by
multi-layer pipelining" claim rests on, so we make it concrete and
testable.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

from ..errors import ConfigurationError

__all__ = ["LayerTask", "PipelineSchedule", "schedule_pipeline"]


@dataclasses.dataclass(frozen=True)
class LayerTask:
    """One slice of work on one engine.

    Attributes
    ----------
    layer:
        Layer index (0-based).
    sample:
        Sample index (0-based).
    stage:
        ``"S1"`` (input decode) or ``"S2"`` (output generation).  The
        computation stage rides the tail of S1.
    slot:
        Global slice index occupied.
    """

    layer: int
    sample: int
    stage: str
    slot: int


@dataclasses.dataclass(frozen=True)
class PipelineSchedule:
    """A validated slice-level schedule for a layered network.

    Attributes
    ----------
    tasks:
        All tasks ordered by slot.
    num_layers, num_samples:
        Workload dimensions.
    slice_length:
        Duration of one slice (seconds).
    pipelined:
        Whether cross-layer overlap was applied.
    """

    tasks: Tuple[LayerTask, ...]
    num_layers: int
    num_samples: int
    slice_length: float
    pipelined: bool

    @property
    def total_slices(self) -> int:
        """Number of slices from first S1 to last S2 (makespan)."""
        return max(t.slot for t in self.tasks) + 1

    @property
    def makespan(self) -> float:
        """Wall-clock duration of the whole batch (seconds)."""
        return self.total_slices * self.slice_length

    @property
    def sample_latency_slices(self) -> int:
        """Slices from a sample's first S1 to its last S2 (inclusive)."""
        first = min(t.slot for t in self.tasks if t.sample == 0)
        last = max(t.slot for t in self.tasks if t.sample == 0)
        return last - first + 1

    @property
    def sample_latency(self) -> float:
        """Per-sample latency (seconds)."""
        return self.sample_latency_slices * self.slice_length

    @property
    def initiation_interval_slices(self) -> int:
        """Slices between consecutive sample launches."""
        if self.num_samples < 2:
            return self.sample_latency_slices
        starts = sorted(
            min(t.slot for t in self.tasks if t.sample == s)
            for s in range(self.num_samples)
        )
        return starts[1] - starts[0]

    @property
    def throughput(self) -> float:
        """Steady-state samples per second."""
        return 1.0 / (self.initiation_interval_slices * self.slice_length)

    def engine_occupancy(self) -> Dict[int, float]:
        """Fraction of the makespan each layer's engine is busy."""
        busy: Dict[int, int] = {}
        for t in self.tasks:
            busy[t.layer] = busy.get(t.layer, 0) + 1
        return {layer: count / self.total_slices for layer, count in busy.items()}


def schedule_pipeline(
    num_layers: int,
    num_samples: int,
    slice_length: float,
    pipelined: bool = True,
) -> PipelineSchedule:
    """Build and validate the slice schedule.

    Pipelined placement: sample ``k``, layer ``n`` (0-based) runs S1 in
    slot ``2k + n`` and S2 in slot ``2k + n + 1``; layer ``n``'s S2 slot
    coincides with layer ``n+1``'s S1 slot (shared slice, different
    engines).  Non-pipelined placement serialises everything.

    Raises
    ------
    ConfigurationError
        On invalid dimensions or if validation detects an engine booked
        for two different samples in one slot (cannot happen with the
        built-in placements; guards future schedulers).
    """
    if num_layers < 1 or num_samples < 1:
        raise ConfigurationError(
            f"need >= 1 layer and sample, got {num_layers} layers, "
            f"{num_samples} samples"
        )
    if slice_length <= 0:
        raise ConfigurationError(f"slice length must be positive, got {slice_length!r}")

    tasks: List[LayerTask] = []
    for k in range(num_samples):
        for n in range(num_layers):
            if pipelined:
                s1 = 2 * k + n
            else:
                s1 = k * (2 * num_layers) + 2 * n
            tasks.append(LayerTask(layer=n, sample=k, stage="S1", slot=s1))
            tasks.append(LayerTask(layer=n, sample=k, stage="S2", slot=s1 + 1))

    # An engine may host S2 of sample k and S1 of sample k' in the same
    # slot only if they are the same physical activity; with the ReSiPE
    # two-slice protocol each engine does one thing per slot.
    seen: Dict[Tuple[int, int], Tuple[int, str]] = {}
    for t in tasks:
        key = (t.layer, t.slot)
        if key in seen and seen[key] != (t.sample, t.stage):
            raise ConfigurationError(
                f"engine {t.layer} double-booked in slot {t.slot}: "
                f"{seen[key]} vs {(t.sample, t.stage)}"
            )
        seen[key] = (t.sample, t.stage)

    tasks.sort(key=lambda t: (t.slot, t.layer, t.stage))
    return PipelineSchedule(
        tasks=tuple(tasks),
        num_layers=num_layers,
        num_samples=num_samples,
        slice_length=slice_length,
        pipelined=pipelined,
    )
