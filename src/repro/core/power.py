"""ReSiPE power / latency / area model (paper Section IV-B).

Assembles the engine's budget from the shared component library plus the
physics-derived contributions:

* **GD group** — shared ramp generator, per-row sample-and-holds and
  wordline buffers (buffers only drive during the Δt computation stage).
* **Crossbar group** — cell array area and the ohmic energy of the
  computation stage, ``Σ V² G · Δt`` averaged over inputs.
* **COG cluster** — per-column continuous-time comparator (enabled all
  of S2), the ``C_cog`` bank charge/discharge, the COG-side ramp
  replica and the pulse shapers.  This is the group the paper reports at
  98.1 % of total power.
* **Control** — sequencing logic.

Latency is two slices per MVM; the initiation interval equals the
latency for a single engine (both slices keep the engine busy).
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from ..config import CircuitParameters
from ..energy.components import capacitor_charge_energy, get_component
from ..energy.model import DesignBudget, PowerReport
from ..energy.technology import TechnologyParameters
from ..errors import ConfigurationError

__all__ = ["ReSiPEPowerModel"]

#: Default mean of squared normalised inputs (x ~ U[0, 1] → E[x²] = 1/3).
_DEFAULT_INPUT_MS = 1.0 / 3.0


@dataclasses.dataclass(frozen=True)
class ReSiPEPowerModel:
    """Parametric ReSiPE budget for one crossbar engine.

    Attributes
    ----------
    params:
        Circuit operating point (array size, capacitors, slice timing).
    tech:
        Process constants.
    mean_cell_conductance:
        Average programmed cell conductance (siemens); defaults to the
        midpoint of the paper's linear window (50 kΩ–1 MΩ).
    input_mean_square:
        ``E[V_in² ] / V_s²`` over the workload (default: uniform inputs).
    component_power_scale / component_area_scale:
        First-order multipliers applied to the 65 nm component-library
        entries (the physics-derived capacitor/crossbar terms re-compute
        exactly from ``params``).  Used by the technology-scaling study;
        leave at 1.0 for the paper's 65 nm node.
    """

    params: CircuitParameters
    tech: TechnologyParameters = TechnologyParameters.tsmc65()
    mean_cell_conductance: float = 0.5 * (1 / 50e3 + 1 / 1e6)
    input_mean_square: float = _DEFAULT_INPUT_MS
    component_power_scale: float = 1.0
    component_area_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.mean_cell_conductance <= 0:
            raise ConfigurationError("mean cell conductance must be positive")
        if not 0 < self.input_mean_square <= 1:
            raise ConfigurationError("input mean square must be in (0, 1]")
        if self.component_power_scale <= 0 or self.component_area_scale <= 0:
            raise ConfigurationError("component scales must be positive")

    # ------------------------------------------------------------------
    # Timing
    # ------------------------------------------------------------------
    @property
    def latency(self) -> float:
        """Latency of one MVM: two slices (S1 + S2)."""
        return self.params.mvm_latency

    @property
    def initiation_interval(self) -> float:
        """Time between MVM launches on one engine (both slices busy)."""
        return self.params.mvm_latency

    def ops_per_mvm(self) -> int:
        """Multiply-accumulate operations per MVM (2 ops per cell)."""
        return 2 * self.params.rows * self.params.cols

    def throughput(self) -> float:
        """Steady-state operations per second of one engine."""
        return self.ops_per_mvm() / self.initiation_interval

    # ------------------------------------------------------------------
    # Physics-derived contributions
    # ------------------------------------------------------------------
    def full_scale_input_voltage(self) -> float:
        """Wordline voltage sampled by the latest usable spike — the GD
        transfer evaluated at ``t_in_max`` (volts).  In the calibrated
        operating point this is ≈ 0.1 V_s; at the paper-literal point the
        ramp saturates and it is ≈ V_s."""
        return self.params.ramp_voltage(self.params.t_in_max)

    def crossbar_energy_per_mvm(self) -> float:
        """Ohmic energy during the computation stage (joules):
        ``E = Σ_ij E[V_i²] G_ij · Δt`` with ``V_i`` the *held GD output*,
        i.e. scaled by the actual ramp transfer."""
        p = self.params
        total_g = self.mean_cell_conductance * p.rows * p.cols
        mean_v_sq = self.input_mean_square * self.full_scale_input_voltage() ** 2
        return mean_v_sq * total_g * p.dt

    def cog_capacitor_energy_per_mvm(self) -> float:
        """Charge/discharge energy of the whole ``C_cog`` bank per MVM.

        Per the paper's Section IV-B remark ("the capacitor C_cog
        assigned to each bitline needs charging during S2"), each COG
        swings its capacitor through the full reference range every
        cycle, so one full ``C·V_s²`` is billed per column per MVM in
        addition to the (small) computation-stage charge.
        """
        p = self.params
        reference_swing = capacitor_charge_energy(p.c_cog, p.v_s)
        compute_charge = capacitor_charge_energy(
            p.c_cog, self.full_scale_input_voltage()
        ) * self.input_mean_square
        return p.cols * (reference_swing + compute_charge)

    def ramp_energy_per_mvm(self) -> float:
        """``C_gd`` swing energy for the two slices (S1 + S2 ramps)."""
        p = self.params
        return 2.0 * capacitor_charge_energy(p.c_gd, p.v_s)

    # ------------------------------------------------------------------
    # Budget
    # ------------------------------------------------------------------
    def _add_component(
        self, budget: DesignBudget, label: str, group: str, name: str,
        count: int, duty: float,
    ) -> None:
        """Add a library component with the model's technology scaling."""
        comp = get_component(name)
        budget.add_raw(
            label,
            group,
            power=count * comp.average_power(duty) * self.component_power_scale,
            area=count * comp.area * self.component_area_scale,
        )

    def budget(self) -> PowerReport:
        """Assemble the full per-engine budget."""
        p = self.params
        t_mvm = self.latency
        b = DesignBudget("ReSiPE")

        # --- GD -----------------------------------------------------------
        self._add_component(b, "input ramp", "GD", "ramp_generator", 1, 0.5)
        # Each S/H draws dynamic power only around its single sampling
        # event per slice; the duty is the aperture fraction.
        self._add_component(b, "row S/H", "GD", "sample_hold", p.rows, 0.02)
        self._add_component(b, "WL buffers", "GD", "wordline_driver",
                            p.rows, p.dt / t_mvm)
        b.add_raw("C_gd swing", "GD", power=self.ramp_energy_per_mvm() / t_mvm)

        # --- crossbar -----------------------------------------------------
        b.add_raw(
            "array compute", "crossbar",
            power=self.crossbar_energy_per_mvm() / t_mvm,
            area=self.tech.crossbar_area(p.rows, p.cols),
        )

        # --- COG cluster ----------------------------------------------------
        self._add_component(b, "column comparators", "COG cluster",
                            "comparator_ct", p.cols, 0.5)
        self._add_component(b, "pulse shapers", "COG cluster",
                            "pulse_shaper", p.cols, 0.5)
        self._add_component(b, "output ramp replica", "COG cluster",
                            "ramp_generator", 1, 0.5)
        b.add_raw(
            "C_cog bank", "COG cluster",
            power=self.cog_capacitor_energy_per_mvm() / t_mvm,
            area=p.cols * self.tech.mim_capacitor_area(p.c_cog),
        )

        # --- control --------------------------------------------------------
        self._add_component(b, "sequencer", "control", "control_logic", 1, 1.0)
        return b.report()

    # ------------------------------------------------------------------
    # Headline metrics
    # ------------------------------------------------------------------
    def power(self) -> float:
        """Total average power (watts)."""
        return self.budget().total_power

    def area(self) -> float:
        """Total area (m²)."""
        return self.budget().total_area

    def power_efficiency(self) -> float:
        """Operations per second per watt."""
        return self.throughput() / self.power()

    def cog_power_share(self) -> float:
        """Fraction of power burned in the COG cluster (paper: 98.1 %)."""
        return self.budget().group_power_share("COG cluster")
