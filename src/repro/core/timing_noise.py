"""Timing-noise analysis of the single-spiking readout.

The single-spiking format replaces the ADC with a comparator racing a
ramp, so every voltage-domain non-ideality becomes a *timing* error:

* comparator input-referred noise / offset ``σ_v`` maps through the
  ramp slope, ``σ_t = σ_v / (dV/dt)`` — and the exponential ramp's
  slope *decays* with time, so late (large-value) outputs are noisier;
* comparator delay jitter and clock/slice-boundary jitter add directly
  in time.

This module provides the closed-form error propagation, the effective
resolution ("how many ADC bits is a ReSiPE column worth?"), and a
Monte-Carlo validator built on the behavioral comparator model.  It
substantiates the Table I positioning of ReSiPE against ADC-based
designs with numbers instead of adjectives.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional, Union

import numpy as np

from ..circuits.comparator import ComparatorModel
from ..config import CircuitParameters
from ..errors import CircuitError
from .cog import ColumnOutputGenerator

ArrayLike = Union[float, np.ndarray]

__all__ = [
    "ramp_slope",
    "timing_noise_from_voltage_noise",
    "total_timing_noise",
    "effective_bits",
    "TimingNoiseReport",
    "analyse_timing_noise",
    "monte_carlo_timing_noise",
]


def ramp_slope(t: ArrayLike, params: CircuitParameters) -> ArrayLike:
    """Slope of the shared ramp at time ``t`` into a slice (V/s):
    ``dV/dt = (V_s / τ_gd) · e^{-t/τ_gd}``."""
    t_arr = np.asarray(t, dtype=float)
    if np.any(t_arr < 0):
        raise CircuitError("slope defined for t >= 0")
    out = params.v_s / params.tau_gd * np.exp(-t_arr / params.tau_gd)
    return out if np.ndim(out) else float(out)


def timing_noise_from_voltage_noise(
    sigma_v: float, t_out: ArrayLike, params: CircuitParameters
) -> ArrayLike:
    """Output-time standard deviation caused by comparator voltage noise
    ``sigma_v`` at a crossing happening at ``t_out``."""
    if sigma_v < 0:
        raise CircuitError("voltage noise must be >= 0")
    slope = np.asarray(ramp_slope(t_out, params), dtype=float)
    out = sigma_v / slope
    return out if np.ndim(out) else float(out)


def total_timing_noise(
    t_out: ArrayLike,
    params: CircuitParameters,
    sigma_v: float = 0.5e-3,
    sigma_delay: float = 10e-12,
    sigma_clock: float = 5e-12,
) -> ArrayLike:
    """RSS of the three timing-noise contributors at ``t_out``.

    Defaults are representative 65 nm figures: 0.5 mV comparator noise,
    10 ps delay jitter, 5 ps clock jitter.
    """
    for name, value in (("sigma_delay", sigma_delay), ("sigma_clock", sigma_clock)):
        if value < 0:
            raise CircuitError(f"{name} must be >= 0")
    from_voltage = np.asarray(
        timing_noise_from_voltage_noise(sigma_v, t_out, params), dtype=float
    )
    out = np.sqrt(from_voltage**2 + sigma_delay**2 + sigma_clock**2)
    return out if np.ndim(out) else float(out)


def effective_bits(
    params: CircuitParameters,
    sigma_v: float = 0.5e-3,
    sigma_delay: float = 10e-12,
    sigma_clock: float = 5e-12,
    t_full_scale: Optional[float] = None,
) -> float:
    """Effective output resolution in bits.

    The usable output range is ``[0, t_full_scale]`` (default
    ``t_in_max``); the worst-case (largest) timing noise over that range
    defines the least significant step ``q = σ·√12`` of an equivalent
    uniform quantiser, giving ``bits = log2(range / q)``.
    """
    full_scale = t_full_scale if t_full_scale is not None else params.t_in_max
    if full_scale <= 0:
        raise CircuitError("full-scale time must be positive")
    grid = np.linspace(full_scale * 1e-3, full_scale, 64)
    worst = float(
        np.max(total_timing_noise(grid, params, sigma_v, sigma_delay, sigma_clock))
    )
    q = worst * math.sqrt(12.0)
    if q >= full_scale:
        return 0.0
    return math.log2(full_scale / q)


@dataclasses.dataclass(frozen=True)
class TimingNoiseReport:
    """Summary of the timing-noise analysis at one operating point.

    Attributes
    ----------
    sigma_t_early / sigma_t_late:
        Timing noise at 10 % and 100 % of full scale (seconds) — the
        exponential ramp makes late crossings noisier.
    worst_value_noise:
        Worst-case noise expressed as a fraction of full scale.
    effective_bits:
        Equivalent uniform-quantiser resolution.
    """

    sigma_t_early: float
    sigma_t_late: float
    worst_value_noise: float
    effective_bits: float


def analyse_timing_noise(
    params: CircuitParameters,
    sigma_v: float = 0.5e-3,
    sigma_delay: float = 10e-12,
    sigma_clock: float = 5e-12,
) -> TimingNoiseReport:
    """Closed-form timing-noise summary for an operating point."""
    full_scale = params.t_in_max
    early = float(total_timing_noise(0.1 * full_scale, params, sigma_v,
                                     sigma_delay, sigma_clock))
    late = float(total_timing_noise(full_scale, params, sigma_v,
                                    sigma_delay, sigma_clock))
    return TimingNoiseReport(
        sigma_t_early=early,
        sigma_t_late=late,
        worst_value_noise=late / full_scale,
        effective_bits=effective_bits(params, sigma_v, sigma_delay, sigma_clock),
    )


def monte_carlo_timing_noise(
    params: CircuitParameters,
    v_out: float,
    sigma_v: float,
    trials: int,
    rng: np.random.Generator,
) -> float:
    """Empirical output-time std from randomised comparator offsets.

    Validates the closed-form ``σ_v / slope`` propagation: each trial
    draws a comparator offset ~ N(0, σ_v) and converts the same held
    voltage through the exact COG.
    """
    if trials < 2:
        raise CircuitError("need at least 2 trials")
    if not 0 <= v_out < params.v_s:
        raise CircuitError("held voltage must lie in [0, V_s)")
    times = np.empty(trials)
    for k in range(trials):
        comparator = ComparatorModel(offset_sigma=sigma_v).randomised(rng)
        cog = ColumnOutputGenerator(params, comparator=comparator)
        times[k] = cog.times_from_voltages(v_out).times[0]
    return float(times.std(ddof=1))
