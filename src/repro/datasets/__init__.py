"""Deterministic synthetic datasets.

Real MNIST / CIFAR-10 are not available offline, and the paper's Fig. 7
is a *relative* measurement (accuracy degradation of fixed pretrained
nets under circuit non-idealities), so any learnable classification
task of comparable difficulty exercises the identical code path — see
DESIGN.md §2.

* :mod:`repro.datasets.synthetic_mnist` — 28×28 grayscale digit glyphs
  (seven-segment-style strokes with affine jitter, blur and noise).
* :mod:`repro.datasets.synthetic_cifar` — multi-channel textured-class
  images (oriented sinusoid mixtures with class-specific colour).
* :mod:`repro.datasets.loaders` — splits and batch iteration.
"""

from .synthetic_mnist import SyntheticMNIST, make_mnist_like
from .synthetic_cifar import SyntheticCIFAR, make_cifar_like
from .loaders import (
    Dataset,
    train_test_split,
    batches,
    one_hot,
    save_dataset,
    load_dataset,
)

__all__ = [
    "SyntheticMNIST",
    "make_mnist_like",
    "SyntheticCIFAR",
    "make_cifar_like",
    "Dataset",
    "train_test_split",
    "batches",
    "one_hot",
    "save_dataset",
    "load_dataset",
]
