"""Dataset container, splitting, batching and (atomic) persistence."""

from __future__ import annotations

import dataclasses
import zipfile
from typing import Iterator, Optional, Tuple

import numpy as np

from ..errors import ArtifactError, ShapeError
from ..store.atomic import atomic_write_npz

__all__ = [
    "Dataset",
    "train_test_split",
    "batches",
    "one_hot",
    "save_dataset",
    "load_dataset",
]


@dataclasses.dataclass(frozen=True)
class Dataset:
    """A labelled dataset: ``images`` of shape ``(N, ...)`` in ``[0, 1]``
    and integer ``labels`` of shape ``(N,)``."""

    images: np.ndarray
    labels: np.ndarray
    num_classes: int
    name: str = "dataset"

    def __post_init__(self) -> None:
        if self.images.shape[0] != self.labels.shape[0]:
            raise ShapeError(
                f"{self.images.shape[0]} images vs {self.labels.shape[0]} labels"
            )
        if self.labels.ndim != 1:
            raise ShapeError("labels must be one-dimensional")
        if self.num_classes < 2:
            raise ShapeError("need at least two classes")

    def __len__(self) -> int:
        return int(self.images.shape[0])

    def subset(self, indices: np.ndarray) -> "Dataset":
        """A new dataset restricted to ``indices``."""
        return Dataset(
            images=self.images[indices],
            labels=self.labels[indices],
            num_classes=self.num_classes,
            name=self.name,
        )

    def flattened(self) -> "Dataset":
        """Images reshaped to ``(N, D)`` (for MLPs)."""
        return Dataset(
            images=self.images.reshape(len(self), -1),
            labels=self.labels,
            num_classes=self.num_classes,
            name=self.name,
        )


def train_test_split(
    data: Dataset,
    test_fraction: float = 0.2,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[Dataset, Dataset]:
    """Shuffle and split into train/test datasets."""
    if not 0 < test_fraction < 1:
        raise ShapeError(f"test fraction must be in (0, 1), got {test_fraction!r}")
    rng = rng if rng is not None else np.random.default_rng(0)
    order = rng.permutation(len(data))
    n_test = max(1, int(round(len(data) * test_fraction)))
    return data.subset(order[n_test:]), data.subset(order[:n_test])


def batches(
    data: Dataset,
    batch_size: int,
    rng: Optional[np.random.Generator] = None,
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Yield shuffled ``(images, labels)`` mini-batches."""
    if batch_size < 1:
        raise ShapeError(f"batch size must be >= 1, got {batch_size!r}")
    rng = rng if rng is not None else np.random.default_rng(0)
    order = rng.permutation(len(data))
    for start in range(0, len(data), batch_size):
        idx = order[start : start + batch_size]
        yield data.images[idx], data.labels[idx]


def save_dataset(data: Dataset, path: str) -> None:
    """Persist a dataset as an ``.npz`` archive, atomically.

    Goes through the artifact-store writer (temp file +
    ``os.replace``), so an interrupted export never leaves a truncated
    archive behind.
    """
    atomic_write_npz(path, {
        "images": data.images,
        "labels": data.labels,
        "num_classes": np.asarray(data.num_classes),
        "name": np.asarray(data.name),
    })


def load_dataset(path: str) -> Dataset:
    """Load a dataset saved by :func:`save_dataset`.

    Raises :class:`~repro.errors.ArtifactError` when the archive is
    missing, truncated, or lacks the expected fields.
    """
    try:
        with np.load(path, allow_pickle=False) as npz:
            images = np.asarray(npz["images"])
            labels = np.asarray(npz["labels"])
            num_classes = int(npz["num_classes"])
            name = str(npz["name"])
    except (OSError, ValueError, KeyError, EOFError,
            zipfile.BadZipFile) as exc:
        raise ArtifactError(f"cannot read dataset from {path!r}: {exc}") from exc
    return Dataset(images=images, labels=labels, num_classes=num_classes,
                   name=name)


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """One-hot encode integer labels."""
    labels = np.asarray(labels)
    if labels.min() < 0 or labels.max() >= num_classes:
        raise ShapeError(
            f"labels out of range [0, {num_classes}): "
            f"[{labels.min()}, {labels.max()}]"
        )
    out = np.zeros((labels.shape[0], num_classes), dtype=float)
    out[np.arange(labels.shape[0]), labels] = 1.0
    return out
