"""Synthetic CIFAR-like textured-class dataset.

Each of the 10 classes is defined by a seeded mixture of oriented
sinusoidal gratings (a Gabor-texture prototype) with a class-specific
colour transform; samples draw random phases, a random mixture
perturbation and additive noise.  Classes are therefore separable by
texture + colour statistics but not linearly trivial — the same regime
that makes CIFAR-10 demand convolutional depth.

Images are ``(N, 3, size, size)`` in ``[0, 1]``; the default size is 16
so the channel-reduced AlexNet/VGG-style networks (see
:mod:`repro.experiments.networks`) train in pure numpy within benchmark
time budgets.  The generator itself supports the full 32.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..errors import ConfigurationError
from .loaders import Dataset

__all__ = ["SyntheticCIFAR", "make_cifar_like"]


class SyntheticCIFAR:
    """Generator for the CIFAR-like dataset.

    Parameters
    ----------
    size:
        Image side (default 16; CIFAR native is 32).
    num_classes:
        Number of texture classes (default 10).
    gratings:
        Sinusoid components mixed per class prototype.
    noise:
        Pixel noise standard deviation.
    seed:
        Generation seed (also fixes the class prototypes).
    """

    def __init__(
        self,
        size: int = 16,
        num_classes: int = 10,
        gratings: int = 3,
        noise: float = 0.06,
        seed: int = 0,
    ) -> None:
        if size < 8:
            raise ConfigurationError(f"size must be >= 8, got {size!r}")
        if num_classes < 2:
            raise ConfigurationError("need at least two classes")
        if gratings < 1:
            raise ConfigurationError("need at least one grating per class")
        if noise < 0:
            raise ConfigurationError("noise must be >= 0")
        self.size = size
        self.num_classes = num_classes
        self.gratings = gratings
        self.noise = noise
        self.seed = seed
        self._prototypes = self._build_prototypes()

    def _build_prototypes(self) -> List[dict]:
        """Per-class grating parameters and colour mixing matrices."""
        rng = np.random.default_rng(self.seed + 7_777)
        prototypes = []
        for _ in range(self.num_classes):
            prototypes.append(
                {
                    "freq": rng.uniform(1.0, 4.0, self.gratings),
                    "angle": rng.uniform(0, np.pi, self.gratings),
                    "weight": rng.dirichlet(np.ones(self.gratings)),
                    # Colour transform: 3 channels from the texture plus a base tint.
                    "tint": rng.uniform(0.2, 0.8, 3),
                    "gain": rng.uniform(0.25, 0.6, 3),
                }
            )
        return prototypes

    def sample(self, label: int, rng: np.random.Generator) -> np.ndarray:
        """One ``(3, size, size)`` image of class ``label``."""
        if not 0 <= label < self.num_classes:
            raise ConfigurationError(
                f"label must be in [0, {self.num_classes}), got {label!r}"
            )
        proto = self._prototypes[label]
        ys, xs = np.mgrid[0 : self.size, 0 : self.size] / self.size
        texture = np.zeros((self.size, self.size), dtype=float)
        for k in range(self.gratings):
            angle = proto["angle"][k] + rng.normal(0, 0.08)
            freq = proto["freq"][k] * (1 + rng.normal(0, 0.05))
            phase = rng.uniform(0, 2 * np.pi)
            direction = xs * np.cos(angle) + ys * np.sin(angle)
            texture += proto["weight"][k] * np.sin(
                2 * np.pi * freq * direction + phase
            )
        texture = 0.5 + 0.5 * texture / max(1e-9, np.abs(texture).max())
        channels = [
            proto["tint"][c] + proto["gain"][c] * (texture - 0.5) for c in range(3)
        ]
        image = np.stack(channels)
        if self.noise:
            image = image + rng.normal(0.0, self.noise, image.shape)
        return np.clip(image, 0.0, 1.0)

    def generate(self, n: int) -> Dataset:
        """A balanced dataset of ``n`` images."""
        if n < self.num_classes:
            raise ConfigurationError(
                f"need at least {self.num_classes} samples, got {n}"
            )
        rng = np.random.default_rng(self.seed)
        labels = np.arange(n) % self.num_classes
        rng.shuffle(labels)
        images = np.stack([self.sample(int(lbl), rng) for lbl in labels])
        return Dataset(
            images=images.astype(float),
            labels=labels.astype(int),
            num_classes=self.num_classes,
            name=f"synthetic-cifar-{self.size}",
        )


def make_cifar_like(n: int = 2000, seed: int = 0, size: int = 16) -> Dataset:
    """One-call generation of the standard configuration."""
    return SyntheticCIFAR(size=size, seed=seed).generate(n)
