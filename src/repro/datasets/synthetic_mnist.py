"""Synthetic MNIST-like digit dataset.

Each class is a digit glyph assembled from straight strokes on a
seven-segment-plus-diagonals skeleton, rendered at 28×28 with per-sample
random translation, rotation, scale, stroke thickness, blur and pixel
noise.  The jitter makes the task non-trivial (a linear model tops out
well below a CNN, like real MNIST) while staying fully deterministic
for a given seed.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np
from scipy import ndimage

from ..errors import ConfigurationError
from .loaders import Dataset

__all__ = ["SyntheticMNIST", "make_mnist_like"]

# Segment endpoints on a unit glyph box (x, y in [0, 1], y down).
# Classic seven segments plus the two diagonals used by 1/2/7 styling.
_SEGMENTS: Dict[str, Tuple[Tuple[float, float], Tuple[float, float]]] = {
    "top": ((0.2, 0.15), (0.8, 0.15)),
    "mid": ((0.2, 0.5), (0.8, 0.5)),
    "bot": ((0.2, 0.85), (0.8, 0.85)),
    "tl": ((0.2, 0.15), (0.2, 0.5)),
    "tr": ((0.8, 0.15), (0.8, 0.5)),
    "bl": ((0.2, 0.5), (0.2, 0.85)),
    "br": ((0.8, 0.5), (0.8, 0.85)),
    "diag_down": ((0.8, 0.15), (0.2, 0.85)),
    "diag_up": ((0.2, 0.15), (0.8, 0.85)),
}

#: Which segments compose each digit glyph.
_DIGIT_SEGMENTS: Dict[int, List[str]] = {
    0: ["top", "tl", "tr", "bl", "br", "bot"],
    1: ["tr", "br"],
    2: ["top", "tr", "mid", "bl", "bot"],
    3: ["top", "tr", "mid", "br", "bot"],
    4: ["tl", "tr", "mid", "br"],
    5: ["top", "tl", "mid", "br", "bot"],
    6: ["top", "tl", "mid", "bl", "br", "bot"],
    7: ["top", "diag_down"],
    8: ["top", "mid", "bot", "tl", "tr", "bl", "br"],
    9: ["top", "tl", "tr", "mid", "br", "bot"],
}


def _render_strokes(
    segments: List[str],
    size: int,
    thickness: float,
    offset: Tuple[float, float],
    angle: float,
    scale: float,
) -> np.ndarray:
    """Rasterise strokes with an affine-jittered glyph box."""
    ys, xs = np.mgrid[0:size, 0:size]
    px = xs / (size - 1)
    py = ys / (size - 1)
    # Inverse-transform pixel coordinates into glyph space.
    cx = px - 0.5 - offset[0]
    cy = py - 0.5 - offset[1]
    cos_a, sin_a = np.cos(-angle), np.sin(-angle)
    gx = (cos_a * cx - sin_a * cy) / scale + 0.5
    gy = (sin_a * cx + cos_a * cy) / scale + 0.5

    image = np.zeros((size, size), dtype=float)
    for seg in segments:
        (x0, y0), (x1, y1) = _SEGMENTS[seg]
        dx, dy = x1 - x0, y1 - y0
        length_sq = dx * dx + dy * dy
        t = ((gx - x0) * dx + (gy - y0) * dy) / length_sq
        t = np.clip(t, 0.0, 1.0)
        dist = np.hypot(gx - (x0 + t * dx), gy - (y0 + t * dy))
        image = np.maximum(image, np.clip(1.0 - dist / thickness, 0.0, 1.0))
    return image


class SyntheticMNIST:
    """Generator for the MNIST-like dataset.

    Parameters
    ----------
    size:
        Image side (default 28, like MNIST).
    jitter:
        Magnitude of the per-sample affine jitter (0 = clean glyphs).
    noise:
        Pixel noise standard deviation.
    seed:
        Generation seed; a given (seed, n) pair is fully reproducible.
    """

    num_classes = 10

    def __init__(
        self,
        size: int = 28,
        jitter: float = 1.0,
        noise: float = 0.08,
        seed: int = 0,
    ) -> None:
        if size < 8:
            raise ConfigurationError(f"size must be >= 8, got {size!r}")
        if jitter < 0 or noise < 0:
            raise ConfigurationError("jitter and noise must be >= 0")
        self.size = size
        self.jitter = jitter
        self.noise = noise
        self.seed = seed

    def sample(self, label: int, rng: np.random.Generator) -> np.ndarray:
        """One ``(size, size)`` image of digit ``label``."""
        if label not in _DIGIT_SEGMENTS:
            raise ConfigurationError(f"label must be 0-9, got {label!r}")
        j = self.jitter
        offset = (rng.uniform(-0.08, 0.08) * j, rng.uniform(-0.08, 0.08) * j)
        angle = rng.uniform(-0.18, 0.18) * j
        scale = 1.0 + rng.uniform(-0.15, 0.15) * j
        thickness = rng.uniform(0.06, 0.11)
        image = _render_strokes(
            _DIGIT_SEGMENTS[label], self.size, thickness, offset, angle, scale
        )
        image = ndimage.gaussian_filter(image, sigma=rng.uniform(0.4, 0.8))
        if self.noise:
            image = image + rng.normal(0.0, self.noise, image.shape)
        return np.clip(image, 0.0, 1.0)

    def generate(self, n: int) -> Dataset:
        """A balanced dataset of ``n`` images."""
        if n < self.num_classes:
            raise ConfigurationError(
                f"need at least {self.num_classes} samples, got {n}"
            )
        rng = np.random.default_rng(self.seed)
        labels = np.arange(n) % self.num_classes
        rng.shuffle(labels)
        images = np.stack([self.sample(int(lbl), rng) for lbl in labels])
        return Dataset(
            images=images.astype(float),
            labels=labels.astype(int),
            num_classes=self.num_classes,
            name=f"synthetic-mnist-{self.size}",
        )


def make_mnist_like(n: int = 2000, seed: int = 0, size: int = 28) -> Dataset:
    """One-call generation of the standard configuration."""
    return SyntheticMNIST(size=size, seed=seed).generate(n)
