"""Power / area / latency estimation framework.

The paper's Table II compares ReSiPE with level-based, PWM-based and
rate-coding PIM designs on power, power efficiency, latency and area.
The absolute cells of that table come from published chips we cannot
re-measure; what this package provides instead is a *parametric 65 nm
component library* (ADC, DAC, S/H, comparators, spike circuitry,
capacitor banks) and an aggregation model, so each design's totals are
assembled from the same documented component inventory.  The resulting
*ratios* are what EXPERIMENTS.md compares against the paper.

* :mod:`repro.energy.technology` — process constants and scaling.
* :mod:`repro.energy.components` — the component library.
* :mod:`repro.energy.model` — per-design budgets and reports.
"""

from .technology import TechnologyParameters
from .components import (
    Component,
    capacitor_charge_energy,
    COMPONENT_LIBRARY,
    get_component,
)
from .model import BudgetLine, DesignBudget, PowerReport

__all__ = [
    "TechnologyParameters",
    "Component",
    "capacitor_charge_energy",
    "COMPONENT_LIBRARY",
    "get_component",
    "BudgetLine",
    "DesignBudget",
    "PowerReport",
]
