"""65 nm peripheral-component library.

Each :class:`Component` carries the three quantities the Table II
comparison needs: active power, idle (leakage) power and area.  Values
are representative 65 nm figures assembled from the literature the paper
cites (8-bit SAR ADC ≈ [20]; spike/neuron circuits ≈ [11, 13]; PWM
drivers ≈ [15]) and are deliberately kept as *named data*, not buried
constants, so every number in the reproduced table can be traced to one
entry here and adjusted in one place.

Energy helpers for capacitor charging — the physics that makes the COG
cluster dominate ReSiPE's power — live here too.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

from ..errors import ConfigurationError

__all__ = [
    "Component",
    "capacitor_charge_energy",
    "COMPONENT_LIBRARY",
    "get_component",
]


@dataclasses.dataclass(frozen=True)
class Component:
    """One peripheral circuit block.

    Attributes
    ----------
    name:
        Library key.
    active_power:
        Power while the block is enabled (watts).
    idle_power:
        Leakage while disabled (watts).
    area:
        Layout footprint (m²).
    note:
        Provenance / sizing assumption, one line.
    """

    name: str
    active_power: float
    idle_power: float
    area: float
    note: str = ""

    def __post_init__(self) -> None:
        if self.active_power < 0 or self.idle_power < 0 or self.area < 0:
            raise ConfigurationError(f"component {self.name!r}: negative figure")

    def average_power(self, duty: float) -> float:
        """Duty-cycle-weighted average power (watts)."""
        if not 0 <= duty <= 1:
            raise ConfigurationError(f"duty must be in [0, 1], got {duty!r}")
        return duty * self.active_power + (1 - duty) * self.idle_power

    def energy(self, active_time: float) -> float:
        """Energy for ``active_time`` seconds of activity (joules)."""
        if active_time < 0:
            raise ConfigurationError("active time must be >= 0")
        return self.active_power * active_time


def capacitor_charge_energy(capacitance: float, voltage: float) -> float:
    """Energy drawn from a supply to charge ``capacitance`` to
    ``voltage`` through a resistive path: ``C·V²`` (half stored, half
    dissipated; both are billed to the supply).
    """
    if capacitance <= 0:
        raise ConfigurationError(f"capacitance must be positive, got {capacitance!r}")
    if voltage < 0:
        raise ConfigurationError(f"voltage must be >= 0, got {voltage!r}")
    return capacitance * voltage**2


_UM2 = 1e-12  # m² per µm²

#: The 65 nm component library.  One entry per peripheral block used by
#: any of the four compared designs.
COMPONENT_LIBRARY: Dict[str, Component] = {
    comp.name: comp
    for comp in [
        # --- mixed-signal interface (level-based designs) --------------
        Component(
            "sar_adc_8b",
            active_power=128e-6,
            idle_power=2e-6,
            area=9500 * _UM2,
            note="8-bit SAR, ~50 MS/s class at 65 nm (cf. ref [20] ADC survey)",
        ),
        Component(
            "dac_6b_row",
            active_power=8e-6,
            idle_power=0.1e-6,
            area=180 * _UM2,
            note="per-wordline 6-bit resistive-ladder DAC driver",
        ),
        Component(
            "sample_hold",
            active_power=2e-6,
            idle_power=0.05e-6,
            area=25 * _UM2,
            note="per-row switched-cap S/H with unity buffer",
        ),
        # --- comparators ------------------------------------------------
        Component(
            "comparator_ct",
            active_power=12e-6,
            idle_power=0.1e-6,
            area=90 * _UM2,
            note="continuous-time comparator, ns-resolution crossing detect",
        ),
        Component(
            "comparator_clocked",
            active_power=3e-6,
            idle_power=0.05e-6,
            area=45 * _UM2,
            note="dynamic latched comparator at 1 GHz",
        ),
        # --- spike circuitry (rate-coding designs) -----------------------
        Component(
            "spike_modulator",
            active_power=6e-6,
            idle_power=0.1e-6,
            area=85 * _UM2,
            note="per-row spike-train generator (counter + driver), refs [11,13]",
        ),
        Component(
            "if_neuron",
            active_power=8e-6,
            idle_power=0.1e-6,
            area=85 * _UM2,
            note="per-column integrate-and-fire neuron (integrator + comparator + reset)",
        ),
        Component(
            "output_counter",
            active_power=2e-6,
            idle_power=0.05e-6,
            area=60 * _UM2,
            note="per-column spike counter register",
        ),
        # --- PWM circuitry (ref [15]) ------------------------------------
        Component(
            "pwm_modulator",
            active_power=38e-6,
            idle_power=0.2e-6,
            area=140 * _UM2,
            note="per-row PWM driver (ramp + comparator + level shifter)",
        ),
        # --- shared analog utilities -------------------------------------
        Component(
            "ramp_generator",
            active_power=5e-6,
            idle_power=0.1e-6,
            area=60 * _UM2,
            note="shared constant-current ramp (V_s/R_gd source + reset)",
        ),
        Component(
            "pulse_shaper",
            active_power=0.8e-6,
            idle_power=0.02e-6,
            area=12 * _UM2,
            note="inverter-delay + AND spike former (paper Fig. 2 output stage)",
        ),
        Component(
            "wordline_driver",
            active_power=1.5e-6,
            idle_power=0.02e-6,
            area=15 * _UM2,
            note="per-row analog wordline buffer",
        ),
        Component(
            "control_logic",
            active_power=4e-6,
            idle_power=0.2e-6,
            area=300 * _UM2,
            note="per-array sequencing FSM and clocking",
        ),
    ]
}


def get_component(name: str) -> Component:
    """Fetch a library entry by name.

    Raises
    ------
    ConfigurationError
        If the component is unknown (lists the available names).
    """
    try:
        return COMPONENT_LIBRARY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown component {name!r}; available: {sorted(COMPONENT_LIBRARY)}"
        ) from None
