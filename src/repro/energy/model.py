"""Design-level power/area aggregation.

A :class:`DesignBudget` is a named list of :class:`BudgetLine` items —
component, instance count, duty cycle, optional raw power/area adders
(for physics-derived contributions like capacitor-bank charging or
crossbar ohmic power that are not library components).  It aggregates to
a :class:`PowerReport` with per-group breakdowns, which is what the
Table II harness renders and what the "COG cluster contributes 98.1 % of
the power" claim is checked against.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from ..errors import ConfigurationError
from ..units import si_format
from .components import Component

__all__ = ["BudgetLine", "DesignBudget", "PowerReport"]


@dataclasses.dataclass(frozen=True)
class BudgetLine:
    """One contribution to a design's power/area budget.

    Exactly one of ``component`` or (``raw_power`` and/or ``raw_area``)
    supplies the figures.

    Attributes
    ----------
    label:
        Human-readable name for reports.
    group:
        Breakdown bucket (e.g. ``"COG cluster"``, ``"interface"``).
    component:
        Library component, multiplied by ``count`` and ``duty``.
    count:
        Instance count.
    duty:
        Fraction of time the instances are active.
    raw_power:
        Direct average-power contribution (watts), e.g. physics-derived
        capacitor or crossbar power.
    raw_area:
        Direct area contribution (m²).
    """

    label: str
    group: str
    component: Optional[Component] = None
    count: int = 1
    duty: float = 1.0
    raw_power: float = 0.0
    raw_area: float = 0.0

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ConfigurationError(f"{self.label}: count must be >= 0")
        if not 0 <= self.duty <= 1:
            raise ConfigurationError(f"{self.label}: duty must be in [0, 1]")
        if self.raw_power < 0 or self.raw_area < 0:
            raise ConfigurationError(f"{self.label}: raw figures must be >= 0")
        if self.component is None and self.raw_power == 0 and self.raw_area == 0:
            raise ConfigurationError(
                f"{self.label}: needs a component or a raw power/area figure"
            )

    @property
    def power(self) -> float:
        """Average power of this line (watts)."""
        total = self.raw_power
        if self.component is not None:
            total += self.count * self.component.average_power(self.duty)
        return total

    @property
    def area(self) -> float:
        """Area of this line (m²)."""
        total = self.raw_area
        if self.component is not None:
            total += self.count * self.component.area
        return total


@dataclasses.dataclass(frozen=True)
class PowerReport:
    """Aggregated budget of one design.

    Attributes
    ----------
    design:
        Design name.
    total_power / total_area:
        Sums over all lines.
    group_power / group_area:
        Per-group breakdowns.
    lines:
        The raw lines, for itemised reports.
    """

    design: str
    total_power: float
    total_area: float
    group_power: Dict[str, float]
    group_area: Dict[str, float]
    lines: Tuple[BudgetLine, ...]

    def group_power_share(self, group: str) -> float:
        """Fraction of total power attributed to ``group``."""
        if group not in self.group_power:
            raise ConfigurationError(
                f"unknown group {group!r}; available: {sorted(self.group_power)}"
            )
        if self.total_power == 0:
            return 0.0
        return self.group_power[group] / self.total_power

    def render(self) -> str:
        """Multi-line human-readable breakdown."""
        rows = [f"{self.design}: {si_format(self.total_power, 'W')}, "
                f"{self.total_area * 1e12:.0f} um^2"]
        for group in sorted(self.group_power):
            share = self.group_power_share(group)
            rows.append(
                f"  {group:<18} {si_format(self.group_power[group], 'W'):>10}"
                f"  ({share:6.1%})   {self.group_area[group] * 1e12:10.0f} um^2"
            )
        return "\n".join(rows)


class DesignBudget:
    """Mutable builder for a design's budget."""

    def __init__(self, design: str) -> None:
        self.design = design
        self._lines: List[BudgetLine] = []

    def add(self, line: BudgetLine) -> "DesignBudget":
        """Append a budget line (chainable)."""
        self._lines.append(line)
        return self

    def add_component(
        self,
        label: str,
        group: str,
        component: Component,
        count: int = 1,
        duty: float = 1.0,
    ) -> "DesignBudget":
        """Append a library-component line (chainable)."""
        return self.add(
            BudgetLine(label=label, group=group, component=component,
                       count=count, duty=duty)
        )

    def add_raw(
        self, label: str, group: str, power: float = 0.0, area: float = 0.0
    ) -> "DesignBudget":
        """Append a physics-derived line (chainable)."""
        return self.add(
            BudgetLine(label=label, group=group, raw_power=power, raw_area=area)
        )

    def report(self) -> PowerReport:
        """Aggregate into a :class:`PowerReport`."""
        if not self._lines:
            raise ConfigurationError(f"budget for {self.design!r} is empty")
        group_power: Dict[str, float] = {}
        group_area: Dict[str, float] = {}
        for line in self._lines:
            group_power[line.group] = group_power.get(line.group, 0.0) + line.power
            group_area[line.group] = group_area.get(line.group, 0.0) + line.area
        return PowerReport(
            design=self.design,
            total_power=sum(gp for gp in group_power.values()),
            total_area=sum(ga for ga in group_area.values()),
            group_power=group_power,
            group_area=group_area,
            lines=tuple(self._lines),
        )
