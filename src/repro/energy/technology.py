"""Process-technology constants (65 nm baseline) and scaling.

All designs in the paper are evaluated at 65 nm with a 1 GHz reference
clock (Section IV-A).  :class:`TechnologyParameters` collects the
constants the component library draws on, and provides first-order
Dennard-style scaling so the "future technology scaling ... could induce
further energy reduction" remark (Section IV-B) can be explored.
"""

from __future__ import annotations

import dataclasses

from ..errors import ConfigurationError
from ..units import FEMTO, MILLI

__all__ = ["TechnologyParameters"]


@dataclasses.dataclass(frozen=True)
class TechnologyParameters:
    """Constants of a CMOS process node used by the component models.

    Attributes
    ----------
    node:
        Feature size (metres).
    supply:
        Nominal core supply (volts).
    clock:
        Reference clock (hertz); the paper calibrates at 1 GHz.
    mim_cap_density:
        Metal-insulator-metal capacitor density (farads per m²);
        ~2 fF/µm² is typical at 65 nm.
    reram_cell_area_f2:
        1T1R cell footprint in units of F² (≈ 30 F² with the access
        transistor sized for write current).
    gate_cap:
        Representative minimum-gate capacitance (farads), anchors the
        digital-logic energy estimates.
    """

    node: float = 65e-9
    supply: float = 1.0
    clock: float = 1e9
    mim_cap_density: float = 2 * MILLI  # F/m^2  == 2 fF/µm²
    reram_cell_area_f2: float = 30.0
    gate_cap: float = 0.4 * FEMTO

    def __post_init__(self) -> None:
        for name in ("node", "supply", "clock", "mim_cap_density",
                     "reram_cell_area_f2", "gate_cap"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")

    @classmethod
    def tsmc65(cls) -> "TechnologyParameters":
        """The paper's 65 nm operating point."""
        return cls()

    # ------------------------------------------------------------------
    @property
    def reram_cell_area(self) -> float:
        """Physical 1T1R cell area (m²)."""
        return self.reram_cell_area_f2 * self.node**2

    def crossbar_area(self, rows: int, cols: int) -> float:
        """Cell-array area of a crossbar (m²), excluding periphery."""
        if rows < 1 or cols < 1:
            raise ConfigurationError("crossbar dimensions must be >= 1")
        return rows * cols * self.reram_cell_area

    def mim_capacitor_area(self, capacitance: float) -> float:
        """MIM capacitor footprint for ``capacitance`` farads (m²)."""
        if capacitance <= 0:
            raise ConfigurationError("capacitance must be positive")
        return capacitance / self.mim_cap_density

    def scaled(self, node: float) -> "TechnologyParameters":
        """First-order constant-field scaling to another node.

        Supply scales with the square root of the node ratio (practical,
        not ideal Dennard), capacitor density improves inversely with
        node, gate cap scales linearly.
        """
        if node <= 0:
            raise ConfigurationError("node must be positive")
        s = node / self.node
        return TechnologyParameters(
            node=node,
            supply=self.supply * s**0.5,
            clock=self.clock / s,
            mim_cap_density=self.mim_cap_density / s,
            reram_cell_area_f2=self.reram_cell_area_f2,
            gate_cap=self.gate_cap * s,
        )
