"""Exception hierarchy for the ReSiPE reproduction.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still being able to discriminate the failure domain (circuit, device,
mapping, ...) when they need to.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigurationError(ReproError, ValueError):
    """A parameter bundle is internally inconsistent or out of range.

    Also derives from :class:`ValueError` so long-standing callers that
    guard bad-argument paths with ``except ValueError`` keep working now
    that validation helpers (e.g. :mod:`repro.units`) raise from the
    taxonomy.
    """


class CircuitError(ReproError):
    """A circuit-level simulation failed (bad topology, no convergence)."""


class DeviceError(ReproError):
    """A ReRAM device or crossbar was driven outside its physical limits."""


class EncodingError(ReproError):
    """A value cannot be represented in the single-spiking data format."""


class ArtifactError(ReproError):
    """A persisted artifact is unreadable, corrupt, or locked."""


class MappingError(ReproError):
    """A neural network cannot be mapped onto the target hardware."""


class ShapeError(ReproError):
    """An array argument has an incompatible shape."""


class TrainingError(ReproError):
    """Neural-network training failed (divergence, bad loss, bad labels)."""


class ExecutionError(ReproError):
    """A campaign/runtime execution failed (worker crashes exhausted
    retries, inconsistent parallel state)."""


class BackpressureError(ReproError):
    """A serving queue refused new work: the bounded request queue is at
    capacity or the server is draining for shutdown.  Clients should
    back off and retry (the HTTP layer maps this to 429/503)."""


class DeadlineExceededError(ReproError):
    """A request was shed by deadline-aware admission control: the
    queue-wait estimate said it could not finish before its
    ``deadline_ms``, or it expired while waiting.  Carries
    ``retry_after_s`` — the earliest retry that could plausibly make the
    same deadline (the HTTP layer maps this to 503 + ``Retry-After``,
    distinct from the queue-depth 429)."""

    def __init__(self, message: str, retry_after_s: float = 0.0) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


class CircuitOpenError(ReproError):
    """A model's circuit breaker is open after consecutive compute
    failures: requests fail fast instead of queueing behind a broken
    forward path.  Carries ``retry_after_s`` — the remaining cooldown
    before the breaker half-opens for a probe (HTTP 503 +
    ``Retry-After``)."""

    def __init__(self, message: str, retry_after_s: float = 0.0) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


class ModelUnavailableError(ReproError):
    """A configured model failed to load (corrupt artifact that could
    not be recovered, training failure, unknown benchmark key): the
    daemon keeps serving its healthy models and answers this one with
    503 instead of crashing at startup."""
