"""Experiment harnesses — one module per paper table/figure.

========================  =========================================
:mod:`.fig3_waveform`     transient MAC waveforms (Fig. 3)
:mod:`.fig5_characterization`  t_out vs input strength (Fig. 5)
:mod:`.table1_taxonomy`   data-format taxonomy (Table I)
:mod:`.table2_comparison` power/latency/area comparison (Table II)
:mod:`.fig6_throughput`   throughput vs area trade-off (Fig. 6)
:mod:`.fig7_accuracy`     accuracy under process variation (Fig. 7)
:mod:`.networks`          the six benchmark networks of Section IV-C
========================  =========================================

Each module exposes ``run_*`` returning a structured result and a
``render`` helper producing the table/series the paper reports; the
``benchmarks/`` directory wraps them in pytest-benchmark entry points.
"""

from .networks import (
    NetworkSpec,
    TrainedNetwork,
    NETWORK_SPECS,
    get_benchmark_networks,
)
from .fig3_waveform import Fig3Result, run_fig3
from .fig5_characterization import Fig5Result, run_fig5
from .table1_taxonomy import render_table1
from .table2_comparison import Table2Result, run_table2
from .fig6_throughput import Fig6Result, run_fig6
from .fig7_accuracy import Fig7Config, Fig7Result, run_fig7
from .scaling import ScalingPoint, run_scaling

__all__ = [
    "NetworkSpec",
    "TrainedNetwork",
    "NETWORK_SPECS",
    "get_benchmark_networks",
    "Fig3Result",
    "run_fig3",
    "Fig5Result",
    "run_fig5",
    "render_table1",
    "Table2Result",
    "run_table2",
    "Fig6Result",
    "run_fig6",
    "Fig7Config",
    "Fig7Result",
    "run_fig7",
    "ScalingPoint",
    "run_scaling",
]
