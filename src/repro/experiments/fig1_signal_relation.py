"""Fig. 1 — signal relation of two sequential layers.

The paper's Fig. 1 shows the defining property of the single-spiking
format: layer *n* emits its output spike during its S2, and that same
slice *is* layer *n+1*'s S1 — the output spike needs no conversion to
become the next layer's input.  This harness runs the relation at the
circuit level: two chained MACs on the transient engine, with layer 2
consuming layer 1's measured output spike time verbatim, and validates
the chain against the closed-form model.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence, Tuple

from ..config import CircuitParameters
from ..core.mac import SingleSpikeMAC
from ..errors import CircuitError
from ..units import KILO, si_format

__all__ = ["Fig1Result", "run_fig1", "render_fig1"]


@dataclasses.dataclass
class Fig1Result:
    """The two-layer signal chain.

    Attributes
    ----------
    params:
        Operating point used.
    layer1_inputs:
        Input spike times of layer 1 (within its S1).
    layer1_output:
        Layer 1's output spike time within its S2 (measured, transient).
    layer2_output:
        Layer 2's output spike time within *its* S2, with layer 1's
        output driving every layer-2 input.
    layer1_predicted / layer2_predicted:
        Closed-form predictions of the same quantities.
    absolute_times:
        (t, label) global-timeline markers (layer 1 S1 start at 0).
    """

    params: CircuitParameters
    layer1_inputs: Tuple[float, ...]
    layer1_output: float
    layer2_output: float
    layer1_predicted: float
    layer2_predicted: float
    absolute_times: Tuple[Tuple[float, str], ...]

    @property
    def chain_error(self) -> float:
        """Worst |measured − predicted| across both layers (seconds)."""
        return max(
            abs(self.layer1_output - self.layer1_predicted),
            abs(self.layer2_output - self.layer2_predicted),
        )


def run_fig1(
    params: Optional[CircuitParameters] = None,
    layer1_spikes: Tuple[float, float] = (25e-9, 60e-9),
    layer1_resistances: Tuple[float, float] = (50 * KILO, 120 * KILO),
    layer2_resistances: Tuple[float, float] = (80 * KILO, 300 * KILO),
) -> Fig1Result:
    """Run the two-layer chained-MAC demonstration."""
    p = params if params is not None else CircuitParameters.calibrated()

    layer1 = SingleSpikeMAC(p, [1.0 / r for r in layer1_resistances])
    waves1 = layer1.run(list(layer1_spikes))
    if waves1.t_out is None:
        raise CircuitError("layer 1 output saturated; choose smaller inputs")

    # The hand-off: layer 1's S2 is layer 2's S1, so the measured output
    # time is *directly* layer 2's input time — no conversion circuitry.
    layer2 = SingleSpikeMAC(p, [1.0 / r for r in layer2_resistances])
    layer2_inputs = [waves1.t_out, waves1.t_out]
    waves2 = layer2.run(layer2_inputs)
    if waves2.t_out is None:
        raise CircuitError("layer 2 output saturated")

    predicted1 = layer1.predicted_t_out(list(layer1_spikes))
    predicted2 = layer2.predicted_t_out([predicted1, predicted1])

    slice_len = p.slice_length
    markers = []
    for t, label in sorted(
        [(t, f"layer-1 input spike @ {si_format(t, 's')}")
         for t in layer1_spikes]
        + [
            (slice_len, "layer-1 S2 begins == layer-2 S1 begins"),
            (slice_len + waves1.t_out,
             "layer-1 output spike == layer-2 input spike"),
            (2 * slice_len, "layer-2 S2 begins"),
            (2 * slice_len + waves2.t_out, "layer-2 output spike"),
        ]
    ):
        markers.append((t, label))

    return Fig1Result(
        params=p,
        layer1_inputs=tuple(layer1_spikes),
        layer1_output=waves1.t_out,
        layer2_output=waves2.t_out,
        layer1_predicted=predicted1,
        layer2_predicted=predicted2,
        absolute_times=tuple(markers),
    )


def render_fig1(result: Fig1Result) -> str:
    """Timeline rendering of the two-layer signal relation."""
    lines = [
        "Fig. 1 — signal relation of two sequential layers "
        "(pipelined two-slice protocol)",
        f"slice = {si_format(result.params.slice_length, 's')}; "
        "layer n's S2 IS layer n+1's S1",
        "",
    ]
    for t, label in result.absolute_times:
        lines.append(f"  t = {si_format(t, 's'):>9}  {label}")
    lines += [
        "",
        f"layer-1 t_out: measured {si_format(result.layer1_output, 's')}, "
        f"closed form {si_format(result.layer1_predicted, 's')}",
        f"layer-2 t_out: measured {si_format(result.layer2_output, 's')}, "
        f"closed form {si_format(result.layer2_predicted, 's')}",
        f"worst chain error: {si_format(result.chain_error, 's')}",
    ]
    return "\n".join(lines)
