"""Fig. 3 — transient waveforms of the single-spiking MAC.

Runs the paper's demonstrator: a two-input MAC over a full S1 /
computation-stage / S2 cycle on the event-driven transient engine, with
the published operating point (100 ns slices, Δt = 1 ns).  The result
carries every waveform of the figure plus the checkpoint values the
text calls out, and is validated against the closed-form model.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

from ..config import CircuitParameters
from ..core.mac import MACWaveforms, SingleSpikeMAC
from ..units import KILO, NANO, PICO, si_format

__all__ = ["Fig3Result", "run_fig3", "render_fig3"]


@dataclasses.dataclass
class Fig3Result:
    """Fig. 3 content: the waveform bundle plus checkpoint scalars.

    Attributes
    ----------
    waveforms:
        All recorded node waveforms.
    params:
        The operating point used.
    spike_times / conductances:
        The MAC stimulus.
    held_voltages:
        The S/H outputs after S1 (paper Eq. 1 values).
    v_out:
        Column voltage held at the end of the computation stage (Eq. 3).
    t_out_measured / t_out_predicted:
        Output spike time from the transient engine vs the closed form;
        their agreement is the engine's self-check.
    """

    waveforms: MACWaveforms
    params: CircuitParameters
    spike_times: Tuple[float, ...]
    conductances: Tuple[float, ...]
    held_voltages: Tuple[float, ...]
    v_out: float
    t_out_measured: Optional[float]
    t_out_predicted: Optional[float]

    @property
    def timing_error(self) -> float:
        """|measured - predicted| output spike time (seconds)."""
        if self.t_out_measured is None or self.t_out_predicted is None:
            return float("nan")
        return abs(self.t_out_measured - self.t_out_predicted)


def run_fig3(
    params: Optional[CircuitParameters] = None,
    spike_times: Tuple[float, float] = (40 * NANO, 70 * NANO),
    resistances: Tuple[float, float] = (50 * KILO, 200 * KILO),
    points_per_segment: int = 64,
) -> Fig3Result:
    """Reproduce Fig. 3 with the paper's two-input MAC.

    Defaults: spikes at 40 ns and 70 ns into S1, cells at 50 kΩ and
    200 kΩ (inside the linear window), paper-literal circuit values.
    """
    p = params if params is not None else CircuitParameters.paper()
    conductances = tuple(1.0 / r for r in resistances)
    mac = SingleSpikeMAC(p, conductances)
    waves = mac.run(list(spike_times), points_per_segment=points_per_segment)

    slice_end = p.slice_length
    held = tuple(
        float(waves.held_inputs[i](slice_end - p.dt - 1 * PICO))
        for i in range(len(spike_times))
    )
    v_out = float(waves.column(slice_end + 1 * PICO))
    return Fig3Result(
        waveforms=waves,
        params=p,
        spike_times=tuple(spike_times),
        conductances=conductances,
        held_voltages=held,
        v_out=v_out,
        t_out_measured=waves.t_out,
        t_out_predicted=mac.predicted_t_out(list(spike_times)),
    )


def render_fig3(result: Fig3Result) -> str:
    """Human-readable summary of the Fig. 3 run."""
    p = result.params
    lines = [
        "Fig. 3 — single-spiking MAC transient (S1 | compute | S2)",
        f"slice = {si_format(p.slice_length, 's')}, "
        f"dt = {si_format(p.dt, 's')}, "
        f"C_gd = C_cog = {si_format(p.c_gd, 'F')}",
    ]
    for i, (t, g) in enumerate(zip(result.spike_times, result.conductances)):
        lines.append(
            f"  input {i}: spike @ {si_format(t, 's')}, "
            f"G = {si_format(g, 'S')}  ->  V_in = "
            f"{si_format(result.held_voltages[i], 'V')}"
        )
    lines.append(f"  V(C_cog) after compute stage = {si_format(result.v_out, 'V')}")
    if result.t_out_measured is not None:
        lines.append(
            f"  output spike @ S2 + {si_format(result.t_out_measured, 's')} "
            f"(closed form: {si_format(result.t_out_predicted, 's')}, "
            f"delta {si_format(result.timing_error, 's')})"
        )
    else:
        lines.append("  output saturated: no spike within S2")
    return "\n".join(lines)
