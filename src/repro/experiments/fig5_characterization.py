"""Fig. 5 — input-output characterisation of the single-spike MVM.

The paper samples 100 random (t_in, G) points on a 32-cell column with
total conductance between 0.32 mS and 3.2 mS and input times between
10 ns and 80 ns, plotting the measured ``t_out`` against the input
strength ``Σ t_in G``.  Three curves summarise the behaviour:

* **Curve 1** — fit over the points with ``Σ G ≤ 1.6 mS`` (the linear
  regime): near-proportional transfer.
* **Curves 2 / 3** — fixed ``Σ G`` = 2.5 mS / 3.2 mS: the column
  saturates and ``t_out`` falls below Curve 1, "especially at big t_in".

We reproduce exactly that protocol with the exact circuit equations.
The default operating point is the calibrated one (which realises the
linear regime the figure shows — see DESIGN.md §1); passing
``CircuitParameters.paper()`` exposes the literal point's full
saturation, which the ablation bench quantifies.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

import numpy as np

from ..analysis.fitting import LinearFit, fit_linear
from ..config import CircuitParameters
from ..core.nonlinearity import exact_mac_output, linear_mac_output
from ..errors import ConfigurationError
from ..units import MILLI, si_format

__all__ = ["Fig5Result", "run_fig5", "render_fig5"]


@dataclasses.dataclass
class Fig5Result:
    """The Fig. 5 scatter and its three summary curves.

    Attributes
    ----------
    input_strength:
        ``Σ t_in,i G_i`` per sample (seconds·siemens).
    t_out:
        Exact output spike times (seconds).
    total_g:
        Per-sample column total conductance (siemens).
    curve1:
        Through-origin fit over the ``Σ G ≤ g_limit`` samples.
    curve2 / curve3:
        Through-origin fits over dedicated sweeps at the two high
        conductances (2.5 / 3.2 mS).
    curve2_strength, curve2_tout, curve3_strength, curve3_tout:
        The dedicated sweep series behind curves 2–3.
    params:
        Operating point used.
    """

    input_strength: np.ndarray
    t_out: np.ndarray
    total_g: np.ndarray
    curve1: LinearFit
    curve2: LinearFit
    curve3: LinearFit
    curve2_strength: np.ndarray
    curve2_tout: np.ndarray
    curve3_strength: np.ndarray
    curve3_tout: np.ndarray
    params: CircuitParameters

    @property
    def linear_mask(self) -> np.ndarray:
        """Samples inside the paper's Σ G ≤ 1.6 mS regime."""
        return self.total_g <= self.params.g_column_linear_limit

    def droop(self, curve: LinearFit) -> float:
        """Relative slope drop of ``curve`` versus Curve 1."""
        return 1.0 - curve.slope / self.curve1.slope


def _sweep_fixed_g(
    params: CircuitParameters, total_g: float, cells: int, points: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Common-input-time sweep at a fixed column conductance."""
    g = np.full(cells, total_g / cells)
    t_grid = np.linspace(params.t_in_min, params.t_in_max, points)
    times = np.repeat(t_grid[:, None], cells, axis=1)
    strength = times @ g
    t_out = np.asarray(exact_mac_output(times, g, params), dtype=float)
    return strength, t_out


def run_fig5(
    params: Optional[CircuitParameters] = None,
    samples: int = 100,
    cells: int = 32,
    g_total_range: Tuple[float, float] = (0.32 * MILLI, 3.2 * MILLI),
    curve_g: Tuple[float, float] = (2.5 * MILLI, 3.2 * MILLI),
    seed: int = 0,
) -> Fig5Result:
    """Run the Fig. 5 characterisation protocol."""
    p = params if params is not None else CircuitParameters.calibrated()
    if samples < 10:
        raise ConfigurationError("need at least 10 samples for the fits")
    rng = np.random.default_rng(seed)

    strengths = np.empty(samples)
    outputs = np.empty(samples)
    totals = np.empty(samples)
    for k in range(samples):
        total_g = rng.uniform(*g_total_range)
        raw = rng.random(cells)
        g = raw / raw.sum() * total_g
        times = rng.uniform(p.t_in_min, p.t_in_max, cells)
        strengths[k] = float(times @ g)
        outputs[k] = float(exact_mac_output(times, g, p))
        totals[k] = total_g

    linear_mask = totals <= p.g_column_linear_limit
    if linear_mask.sum() < 2:
        raise ConfigurationError(
            "not enough linear-regime samples; widen g_total_range"
        )
    curve1 = fit_linear(strengths[linear_mask], outputs[linear_mask],
                        through_origin=True)
    s2, o2 = _sweep_fixed_g(p, curve_g[0], cells, 25)
    s3, o3 = _sweep_fixed_g(p, curve_g[1], cells, 25)
    return Fig5Result(
        input_strength=strengths,
        t_out=outputs,
        total_g=totals,
        curve1=curve1,
        curve2=fit_linear(s2, o2, through_origin=True),
        curve3=fit_linear(s3, o3, through_origin=True),
        curve2_strength=s2,
        curve2_tout=o2,
        curve3_strength=s3,
        curve3_tout=o3,
        params=p,
    )


def render_fig5(result: Fig5Result) -> str:
    """Human-readable summary of the characterisation."""
    p = result.params
    ideal_slope = p.mac_gain
    lines = [
        "Fig. 5 — t_out vs input strength (Σ t_in G)",
        f"samples: {result.t_out.size}, linear regime "
        f"(ΣG <= {si_format(p.g_column_linear_limit, 'S')}): "
        f"{int(result.linear_mask.sum())}",
        f"ideal Eq.6 slope  dt/C_cog = {si_format(ideal_slope, 'Ohm')}",
        f"Curve 1 slope = {si_format(result.curve1.slope, 'Ohm')} "
        f"(R² = {result.curve1.r2:.4f}, "
        f"{result.curve1.slope / ideal_slope:.3f}x ideal)",
        f"Curve 2 (ΣG = 2.5 mS): slope {si_format(result.curve2.slope, 'Ohm')}, "
        f"droop vs Curve 1 = {result.droop(result.curve2):.1%}",
        f"Curve 3 (ΣG = 3.2 mS): slope {si_format(result.curve3.slope, 'Ohm')}, "
        f"droop vs Curve 1 = {result.droop(result.curve3):.1%}",
    ]
    return "\n".join(lines)
