"""Fig. 6 — the latency / area / throughput trade-off.

The paper's point: ReSiPE engines are small, so under a fixed *area
budget* many can run in parallel, and the aggregate throughput beats the
other designs even though a single ReSiPE MVM is slower than a
level-based one.  We reproduce the figure as, per design, the engine
count and aggregate throughput at each area budget (the dashed
iso-throughput lines of the figure fall out of throughput = ops/II ×
engines).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..analysis.tables import render_table
from ..baselines import all_designs
from ..errors import ConfigurationError

__all__ = ["Fig6Result", "run_fig6", "render_fig6"]

#: Default area budgets swept (m²): 0.01 mm² to 1 mm².
_DEFAULT_BUDGETS = tuple(float(b) * 1e-6 for b in
                         (0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0))


@dataclasses.dataclass
class Fig6Result:
    """Throughput-vs-area series for every design.

    Attributes
    ----------
    budgets:
        Area budgets swept (m²).
    engines:
        design name → engine counts per budget.
    throughput:
        design name → aggregate ops/s per budget.
    latency:
        design name → single-MVM latency (constant per design).
    engine_area:
        design name → per-engine area.
    """

    budgets: Tuple[float, ...]
    engines: Dict[str, np.ndarray]
    throughput: Dict[str, np.ndarray]
    latency: Dict[str, float]
    engine_area: Dict[str, float]

    def winner_at(self, budget_index: int) -> str:
        """Design with the highest throughput at one budget."""
        return max(self.throughput, key=lambda k: self.throughput[k][budget_index])

    def advantage_over(self, other: str, budget_index: int = -1) -> float:
        """ReSiPE aggregate-throughput multiple over ``other``."""
        resipe = self.throughput["ReSiPE (this work)"][budget_index]
        reference = self.throughput[other][budget_index]
        if reference == 0:
            return float("inf")
        return float(resipe / reference)


def run_fig6(
    budgets: Optional[Sequence[float]] = None,
    rows: int = 32,
    cols: int = 32,
) -> Fig6Result:
    """Sweep area budgets and collect per-design aggregate throughput."""
    budgets = tuple(budgets) if budgets is not None else _DEFAULT_BUDGETS
    if not budgets or any(b <= 0 for b in budgets):
        raise ConfigurationError("area budgets must be positive")
    designs = all_designs(rows, cols)

    engines: Dict[str, np.ndarray] = {}
    throughput: Dict[str, np.ndarray] = {}
    latency: Dict[str, float] = {}
    engine_area: Dict[str, float] = {}
    for name, design in designs.items():
        area = design.area
        per_engine_tp = design.throughput
        counts = np.array([int(b // area) for b in budgets], dtype=float)
        engines[name] = counts
        throughput[name] = counts * per_engine_tp
        latency[name] = design.latency
        engine_area[name] = area
    return Fig6Result(
        budgets=budgets,
        engines=engines,
        throughput=throughput,
        latency=latency,
        engine_area=engine_area,
    )


def render_fig6(result: Fig6Result) -> str:
    """ASCII rendering of the throughput-vs-area series."""
    headers = ["area budget (mm^2)"] + [
        f"{name} (GOPS)" for name in result.throughput
    ]
    rows = []
    for i, budget in enumerate(result.budgets):
        rows.append(
            [budget * 1e6]
            + [result.throughput[name][i] / 1e9 for name in result.throughput]
        )
    table = render_table(headers, rows,
                         title="Fig. 6 — aggregate throughput under area budgets")
    winner = result.winner_at(-1)
    extras = [
        table,
        f"winner at largest budget: {winner}",
    ]
    for other in result.throughput:
        if other != "ReSiPE (this work)":
            extras.append(
                f"ReSiPE advantage over {other}: "
                f"{result.advantage_over(other):.2f}x"
            )
    return "\n".join(extras)
