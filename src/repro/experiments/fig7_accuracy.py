"""Fig. 7 — classification accuracy under process variation.

The paper's protocol, reproduced end to end:

1. train the six benchmark networks (Section IV-C list);
2. map each onto ReSiPE crossbars (differential weights, tiling,
   exact circuit equations — the σ=0 column therefore carries the
   *non-linearity* accuracy drop the paper bounds at 2.5 %);
3. perturb every programmed conductance with Gaussian device variation
   at σ ∈ {0, 5, 10, 15, 20} %, several Monte-Carlo trials each;
4. report ideal (software) accuracy and the mean/min accuracy per σ.
"""

from __future__ import annotations

import dataclasses
import functools
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.tables import render_table
from ..config import CircuitParameters
from ..core.mvm import MVMMode
from ..errors import ConfigurationError, ExecutionError
from ..kernels import get_backend
from ..mapping import PIMExecutor, ReSiPEBackend, compile_network
from ..runtime import CampaignCell, CampaignScheduler, trial_rng
from ..telemetry import session as _telemetry
from .networks import TrainedNetwork, get_benchmark_networks

__all__ = ["Fig7Config", "Fig7Result", "run_fig7", "render_fig7"]


@dataclasses.dataclass(frozen=True)
class Fig7Config:
    """Knobs of the Fig. 7 study.

    Attributes
    ----------
    sigmas:
        Process-variation standard deviations (paper: 0–20 %).
    trials:
        Monte-Carlo draws per non-zero σ.
    networks:
        Which benchmark networks to include (default: all six).
    n_samples:
        Synthetic dataset size per network.
    eval_samples:
        Test images evaluated per trial (caps runtime).
    mode:
        Circuit fidelity (EXACT carries the non-linearity).
    seed:
        Master seed.
    stuck_on / stuck_off:
        Stuck-at fault rates (fraction of cells pinned to LRS/HRS)
        layered on top of the variation at every σ — extends the
        paper's study to hard defects.  0 (default) reproduces the
        paper exactly.
    """

    sigmas: Tuple[float, ...] = (0.0, 0.05, 0.10, 0.15, 0.20)
    trials: int = 3
    networks: Optional[Tuple[str, ...]] = None
    n_samples: int = 1500
    eval_samples: int = 200
    mode: MVMMode = MVMMode.EXACT
    seed: int = 0
    stuck_on: float = 0.0
    stuck_off: float = 0.0

    def __post_init__(self) -> None:
        if not self.sigmas:
            raise ConfigurationError("need at least one sigma")
        if any(s < 0 for s in self.sigmas):
            raise ConfigurationError("sigmas must be >= 0")
        if self.trials < 1:
            raise ConfigurationError("need at least one trial")
        if self.seed < 0:
            raise ConfigurationError(
                f"seed must be >= 0, got {self.seed!r}: trial streams "
                "derive from SeedSequence(seed + crc32(token)), which "
                "rejects negative entropy deep inside the sweep"
            )
        if self.eval_samples < 10:
            raise ConfigurationError("need at least 10 evaluation samples")
        if not 0 <= self.stuck_on <= 1 or not 0 <= self.stuck_off <= 1:
            raise ConfigurationError("stuck-at rates must be in [0, 1]")

    @property
    def has_faults(self) -> bool:
        """Whether any stuck-at defects are layered on the variation."""
        return self.stuck_on > 0 or self.stuck_off > 0


@dataclasses.dataclass
class NetworkAccuracy:
    """Per-network Fig. 7 row.

    Attributes
    ----------
    display:
        Network name (paper style).
    software_accuracy:
        The "ideal" bar of Fig. 7.
    by_sigma:
        σ → (mean accuracy, min accuracy) over trials.
    """

    display: str
    software_accuracy: float
    by_sigma: Dict[float, Tuple[float, float]]

    def drop(self, sigma: float) -> float:
        """Mean accuracy drop vs software at ``sigma``."""
        return self.software_accuracy - self.by_sigma[sigma][0]


@dataclasses.dataclass
class Fig7Result:
    """All Fig. 7 rows plus the configuration used."""

    config: Fig7Config
    rows: List[NetworkAccuracy]

    def row(self, display_prefix: str) -> NetworkAccuracy:
        """Look up a row by display-name prefix (e.g. ``"CNN-1"``)."""
        for r in self.rows:
            if r.display.startswith(display_prefix):
                return r
        raise ConfigurationError(
            f"no row starting with {display_prefix!r}; "
            f"have {[r.display for r in self.rows]}"
        )


def _make_injector(config: Fig7Config, sigma: float):
    """Stuck-at (+ optional variation) composite for one σ column."""
    from ..faults import CompositeInjector, StuckAtInjector, VariationInjector

    stuck = StuckAtInjector(
        stuck_on_rate=config.stuck_on, stuck_off_rate=config.stuck_off
    )
    if sigma == 0:
        return stuck
    return CompositeInjector(VariationInjector(sigma=sigma), stuck)


def _prepare_network(
    net: TrainedNetwork, config: Fig7Config
) -> Tuple[PIMExecutor, np.ndarray, np.ndarray]:
    """Map + calibrate one benchmark network (deterministic)."""
    backend = ReSiPEBackend(
        params=CircuitParameters.calibrated(), mode=config.mode
    )
    mapped = compile_network(net.model, backend)
    calibration = net.train.images[: min(64, len(net.train))]
    executor = PIMExecutor(mapped, calibration)
    x_eval = net.test.images[: config.eval_samples]
    y_eval = net.test.labels[: config.eval_samples]
    return executor, x_eval, y_eval


def _sigma_column(
    net: TrainedNetwork,
    executor: PIMExecutor,
    config: Fig7Config,
    sigma: float,
    x_eval: np.ndarray,
    y_eval: np.ndarray,
    trial_batch: int,
    backend=None,
) -> Tuple[float, float]:
    """(mean, min) accuracy of one σ column over the Monte-Carlo trials.

    Trials are seeded by identity (network key, σ, trial index) and
    evaluated ``trial_batch`` at a time through the stacked kernels —
    bit-identical to serial evaluation at any batch size and any
    compute ``backend`` (:mod:`repro.kernels`).
    """
    if sigma == 0 and not config.has_faults:
        acc = executor.accuracy(x_eval, y_eval)
        return (acc, acc)
    accs: List[float] = []
    for start in range(0, config.trials, trial_batch):
        stop = min(start + trial_batch, config.trials)
        trial_execs = []
        for trial in range(start, stop):
            token = f"{net.spec.key}|{sigma:.4f}|{trial}"
            rng = trial_rng(config.seed, token)
            if config.has_faults:
                trial_execs.append(
                    executor.faulted(_make_injector(config, sigma), rng)
                )
            else:
                trial_execs.append(executor.perturbed(rng, sigma))
        if len(trial_execs) > 1:
            stacked = executor.accuracy_trials(
                x_eval, y_eval, [e.network for e in trial_execs],
                backend=backend,
            )
            accs.extend(float(a) for a in stacked)
        else:
            accs.extend(e.accuracy(x_eval, y_eval) for e in trial_execs)
    return (float(np.mean(accs)), float(np.min(accs)))


def _evaluate_network(
    net: TrainedNetwork, config: Fig7Config, trial_batch: int = 1,
    backend=None,
) -> NetworkAccuracy:
    with _telemetry.span("fig7.network", network=net.spec.key):
        executor, x_eval, y_eval = _prepare_network(net, config)
        by_sigma: Dict[float, Tuple[float, float]] = {}
        for sigma in config.sigmas:
            with _telemetry.span(
                "fig7.sigma_column",
                network=net.spec.key, sigma=sigma, trials=config.trials,
            ):
                by_sigma[sigma] = _sigma_column(
                    net, executor, config, sigma, x_eval, y_eval,
                    trial_batch, backend,
                )
    software = float(
        np.mean(net.model.predict(x_eval, batch_size=128) == y_eval)
    )
    return NetworkAccuracy(
        display=net.spec.display,
        software_accuracy=software,
        by_sigma=by_sigma,
    )


# ----------------------------------------------------------------------
# Worker-process plumbing.  A task is one (network key, σ) column; each
# worker process lazily prepares (and caches) the executors of the
# networks it is handed.  Preparation is deterministic and trials are
# seeded by identity, so the column values are independent of which
# worker computes them.
_FIG7_STATE: Optional[Tuple[Fig7Config, int, object, Dict[str, tuple]]] = None


def _fig7_worker_init(
    config: Fig7Config, trial_batch: int,
    compute_backend: Optional[str] = None,
) -> None:
    """Install the study config in the worker (process-pool initializer)."""
    global _FIG7_STATE
    backend = (
        get_backend(compute_backend) if compute_backend is not None else None
    )
    _FIG7_STATE = (config, trial_batch, backend, {})


def _fig7_worker(task: Tuple[str, float]) -> Tuple[float, float]:
    """Evaluate one (network, σ) column inside a worker process."""
    if _FIG7_STATE is None:
        raise ExecutionError(
            "fig7 worker called before its initializer installed a config"
        )
    config, trial_batch, backend, cache = _FIG7_STATE
    key, sigma = task
    if key not in cache:
        net = get_benchmark_networks(
            keys=[key], n_samples=config.n_samples, seed=config.seed
        )[0]
        cache[key] = (net,) + _prepare_network(net, config)
    net, executor, x_eval, y_eval = cache[key]
    return _sigma_column(
        net, executor, config, sigma, x_eval, y_eval, trial_batch, backend
    )


def _fig7_prepare_local(config: Fig7Config, cell: CampaignCell) -> None:
    """Parent-side model-build cell of the fig7 DAG: train (or load)
    one benchmark network, warming the model store every dependent
    (network, σ) column cell reads."""
    get_benchmark_networks(
        keys=[cell.payload], n_samples=config.n_samples, seed=config.seed
    )
    return None


def run_fig7(config: Optional[Fig7Config] = None, workers: int = 1,
             trial_batch: int = 1, compute_backend=None) -> Fig7Result:
    """Run the full Fig. 7 study.

    Parameters
    ----------
    config:
        Study knobs (defaults to the paper's protocol).
    workers:
        Worker processes; 1 (default) runs in-process.  At ``workers >
        1`` the study becomes a :class:`~repro.runtime.CampaignScheduler`
        DAG: one parent-side model-build cell per network feeding its
        (network, σ) column cells on the pool; crashed workers are
        retried on a fresh pool.
    trial_batch:
        Monte-Carlo trials evaluated per stacked forward pass.
    compute_backend:
        Stacked-kernel engine (:func:`repro.kernels.get_backend` name
        or instance; default numpy).

    All three knobs are execution details: results are byte-identical
    for a fixed config at any worker count, batch size or backend.
    """
    config = config if config is not None else Fig7Config()
    if workers < 1:
        raise ConfigurationError(f"need workers >= 1, got {workers!r}")
    if trial_batch < 1:
        raise ConfigurationError(
            f"need trial_batch >= 1, got {trial_batch!r}"
        )
    backend = (
        get_backend(compute_backend) if compute_backend is not None else None
    )
    with _telemetry.span(
        "fig7.run",
        networks=len(config.networks) if config.networks else "all",
        sigmas=len(config.sigmas), trials=config.trials, workers=workers,
    ):
        return _run_fig7_inner(config, workers, trial_batch, backend)


def _run_fig7_inner(config: Fig7Config, workers: int, trial_batch: int,
                    backend=None) -> Fig7Result:
    keys: Optional[Sequence[str]] = config.networks
    if workers <= 1:
        networks = get_benchmark_networks(
            keys=keys, n_samples=config.n_samples, seed=config.seed
        )
        rows = [
            _evaluate_network(net, config, trial_batch, backend)
            for net in networks
        ]
        return Fig7Result(config=config, rows=rows)

    # The sweep as a DAG: a local model-build cell per network (runs in
    # the parent, warming the model store forked workers inherit) feeds
    # that network's (network, σ) column cells on the process pool.
    from .networks import NETWORK_SPECS

    resolved_keys = list(keys) if keys is not None else list(NETWORK_SPECS)
    cells = []
    for key in resolved_keys:
        cells.append(
            CampaignCell(key=f"prepare/{key}", payload=key, local=True)
        )
        cells.extend(
            CampaignCell(
                key=f"column/{key}/{sigma:.6f}",
                payload=(key, sigma),
                deps=(f"prepare/{key}",),
            )
            for sigma in config.sigmas
        )
    backend_name = backend.name if backend is not None else None
    scheduler = CampaignScheduler(
        _fig7_worker,
        workers=workers,
        initializer=_fig7_worker_init,
        initargs=(config, trial_batch, backend_name),
        local_fn=functools.partial(_fig7_prepare_local, config),
    )
    results = scheduler.run(cells)
    by_net: Dict[str, Dict[float, Tuple[float, float]]] = {}
    for key in resolved_keys:
        for sigma in config.sigmas:
            by_net.setdefault(key, {})[sigma] = results[
                f"column/{key}/{sigma:.6f}"
            ]
    # The store is warm (prepare cells trained in-parent), so this
    # reload only deserialises the models for the software rows.
    networks = get_benchmark_networks(
        keys=keys, n_samples=config.n_samples, seed=config.seed
    )
    rows = []
    for net in networks:
        x_eval = net.test.images[: config.eval_samples]
        y_eval = net.test.labels[: config.eval_samples]
        software = float(
            np.mean(net.model.predict(x_eval, batch_size=128) == y_eval)
        )
        rows.append(
            NetworkAccuracy(
                display=net.spec.display,
                software_accuracy=software,
                by_sigma=by_net[net.spec.key],
            )
        )
    return Fig7Result(config=config, rows=rows)


def render_fig7(result: Fig7Result) -> str:
    """ASCII rendering of the accuracy-vs-variation table."""
    sigmas = result.config.sigmas
    headers = ["network", "ideal"] + [f"σ={s:.0%}" for s in sigmas] + [
        f"drop@σ={sigmas[-1]:.0%}"
    ]
    rows = []
    for r in result.rows:
        rows.append(
            [r.display, r.software_accuracy]
            + [r.by_sigma[s][0] for s in sigmas]
            + [r.drop(sigmas[-1])]
        )
    title = "Fig. 7 — accuracy under process variation (ReSiPE, exact circuit)"
    if result.config.has_faults:
        title += (
            f" + stuck-at on={result.config.stuck_on:.1%} "
            f"off={result.config.stuck_off:.1%}"
        )
    return render_table(headers, rows, title=title)
