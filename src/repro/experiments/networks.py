"""The six benchmark networks of Section IV-C.

================  ================================  ==================
paper name        paper architecture                this repo
================  ================================  ==================
MLP-1             1-layer perceptron, MNIST         identical (784→10)
MLP-2             2-layer perceptron, MNIST         identical (784→128→10)
CNN-1             4-layer LeNet, MNIST              identical topology
CNN-2             AlexNet, CIFAR-10                 AlexNet-style, channel-reduced, 16×16 synthetic-CIFAR
CNN-3             VGG16, CIFAR-10                   VGG16-style (10 conv + 2 fc), channel-reduced
CNN-4             VGG19, CIFAR-10                   VGG19-style (12 conv + 2 fc), channel-reduced
================  ================================  ==================

The CNN-2/3/4 substitution preserves the property Fig. 7 depends on —
the *depth/parameter-count ordering* across the six networks — while
keeping pure-numpy training inside benchmark time budgets (DESIGN.md §2).

Trained weights are cached under ``.cache/models`` (override with
``$REPRO_CACHE``) through :mod:`repro.store` — writes are atomic, every
entry carries a SHA-256 manifest plus a hash of the producing spec, and
a corrupt or stale entry is quarantined and retrained instead of
crashing the run.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..datasets import Dataset, make_cifar_like, make_mnist_like, train_test_split
from ..errors import ConfigurationError, ReproError
from ..store import ArtifactStore, get_store, spec_hash
from ..telemetry.logging import get_logger
from ..nn import (
    Adam,
    AvgPool2D,
    Conv2D,
    Dense,
    Flatten,
    MaxPool2D,
    ReLU,
    Sequential,
    Trainer,
    evaluate_accuracy,
)

__all__ = [
    "NetworkSpec",
    "TrainedNetwork",
    "NETWORK_SPECS",
    "get_benchmark_networks",
    "model_cache_key",
    "model_spec_hash",
]


# ----------------------------------------------------------------------
# Architectures
# ----------------------------------------------------------------------
def _mlp1(rng: Optional[np.random.Generator] = None) -> Sequential:
    return Sequential([Dense(784, 10, rng=rng)], name="MLP-1")


def _mlp2(rng: Optional[np.random.Generator] = None) -> Sequential:
    return Sequential(
        [Dense(784, 128, rng=rng), ReLU(), Dense(128, 10, rng=rng)],
        name="MLP-2",
    )


def _lenet(rng: Optional[np.random.Generator] = None) -> Sequential:
    # Classic LeNet shape on 28x28: conv5 -> pool -> conv5 -> pool -> fc -> fc.
    return Sequential(
        [
            Conv2D(1, 6, kernel=5, pad=2, rng=rng), ReLU(), AvgPool2D(2),
            Conv2D(6, 16, kernel=5, pad=0, rng=rng), ReLU(), AvgPool2D(2),
            Flatten(),
            Dense(16 * 5 * 5, 84, rng=rng), ReLU(),
            Dense(84, 10, rng=rng),
        ],
        name="CNN-1",
    )


def _alexnet_style(rng: Optional[np.random.Generator] = None) -> Sequential:
    # AlexNet-style on 16x16x3: 3 conv stages + 2 fc, channel-reduced.
    # The first conv keeps AlexNet's large receptive field (11x11 at
    # full scale -> 5x5 here), which also carries its PV robustness:
    # a wide fan-in averages per-cell conductance variation.
    return Sequential(
        [
            Conv2D(3, 16, kernel=5, pad=2, rng=rng), ReLU(), MaxPool2D(2),
            Conv2D(16, 32, kernel=3, pad=1, rng=rng), ReLU(), MaxPool2D(2),
            Conv2D(32, 32, kernel=3, pad=1, rng=rng), ReLU(),
            Flatten(),
            Dense(32 * 4 * 4, 64, rng=rng), ReLU(),
            Dense(64, 10, rng=rng),
        ],
        name="CNN-2",
    )


def _vgg_style(
    conv_blocks: Sequence[Tuple[int, int]],
    name: str,
    rng: Optional[np.random.Generator] = None,
) -> Sequential:
    """VGG-style builder: blocks of (convs, channels) + pool each."""
    layers: list = []
    in_ch = 3
    for convs, channels in conv_blocks:
        for _ in range(convs):
            layers += [Conv2D(in_ch, channels, kernel=3, pad=1, rng=rng), ReLU()]
            in_ch = channels
        layers.append(MaxPool2D(2))
    layers.append(Flatten())
    # After len(conv_blocks) pools on a 16x16 input.
    spatial = 16 // (2 ** len(conv_blocks))
    layers += [Dense(in_ch * spatial * spatial, 64, rng=rng), ReLU(),
               Dense(64, 10, rng=rng)]
    return Sequential(layers, name=name)


def _vgg16_style(rng: Optional[np.random.Generator] = None) -> Sequential:
    # 10 conv + 2 fc (VGG16 is 13 + 3 at full scale).
    return _vgg_style([(2, 8), (2, 16), (3, 32), (3, 32)], "CNN-3", rng=rng)


def _vgg19_style(rng: Optional[np.random.Generator] = None) -> Sequential:
    # 12 conv + 2 fc (VGG19 is 16 + 3 at full scale).
    return _vgg_style([(2, 8), (2, 16), (4, 32), (4, 32)], "CNN-4", rng=rng)


# ----------------------------------------------------------------------
# Specifications
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class NetworkSpec:
    """One benchmark network: architecture + training recipe.

    Attributes
    ----------
    key:
        Identifier (e.g. ``"cnn-3"``).
    display:
        The paper's name (e.g. ``"CNN-3 (VGG16)"``).
    dataset:
        ``"mnist"`` or ``"cifar"`` (synthetic variants).
    build:
        Architecture factory; accepts an optional ``rng`` Generator so
        weight initialisation derives from the caller's master seed
        (no argument falls back to per-layer shape-derived seeds).
    epochs / lr / batch_size:
        Training recipe.
    flatten_input:
        Whether the model consumes flattened images.
    """

    key: str
    display: str
    dataset: str
    build: Callable[..., Sequential]
    epochs: int
    lr: float = 2e-3
    batch_size: int = 64
    flatten_input: bool = False


NETWORK_SPECS: Dict[str, NetworkSpec] = {
    spec.key: spec
    for spec in [
        NetworkSpec("mlp-1", "MLP-1 (1-layer perceptron)", "mnist", _mlp1,
                    epochs=10, flatten_input=True),
        NetworkSpec("mlp-2", "MLP-2 (2-layer perceptron)", "mnist", _mlp2,
                    epochs=10, flatten_input=True),
        NetworkSpec("cnn-1", "CNN-1 (LeNet)", "mnist", _lenet, epochs=6),
        NetworkSpec("cnn-2", "CNN-2 (AlexNet-style)", "cifar", _alexnet_style,
                    epochs=8),
        NetworkSpec("cnn-3", "CNN-3 (VGG16-style)", "cifar", _vgg16_style,
                    epochs=18),
        NetworkSpec("cnn-4", "CNN-4 (VGG19-style)", "cifar", _vgg19_style,
                    epochs=20),
    ]
}


@dataclasses.dataclass
class TrainedNetwork:
    """A trained benchmark network with its data splits.

    Attributes
    ----------
    spec:
        The network specification.
    model:
        Trained Sequential.
    train / test:
        Data splits (already flattened when the spec requires it).
    software_accuracy:
        Test accuracy of the software (ideal) model.
    """

    spec: NetworkSpec
    model: Sequential
    train: Dataset
    test: Dataset
    software_accuracy: float


# ----------------------------------------------------------------------
# Training with caching
# ----------------------------------------------------------------------
def _default_cache_dir() -> str:
    # Kept for backwards compatibility; the normalisation + REPRO_CACHE
    # handling lives in repro.store so experiments and the CLI agree.
    from ..store import default_model_cache_dir

    return default_model_cache_dir()


def model_cache_key(spec: NetworkSpec, n_samples: int, seed: int) -> str:
    """Human-readable cache key stem for one training run."""
    return f"{spec.key}-n{n_samples}-s{seed}-e{spec.epochs}"


def model_spec_hash(spec: NetworkSpec, model: Sequential) -> str:
    """Content hash binding a cache entry to its producing spec.

    Covers the training recipe *and* an architecture fingerprint
    (parameter names + shapes), so editing a network definition turns
    its old cache entries into misses instead of silent wrong answers.
    """
    return spec_hash({
        "key": spec.key,
        "dataset": spec.dataset,
        "epochs": spec.epochs,
        "lr": spec.lr,
        "batch_size": spec.batch_size,
        "flatten_input": spec.flatten_input,
        "parameters": [
            (p.name, tuple(p.value.shape)) for p in model.parameters()
        ],
    })


def _dataset_for(spec: NetworkSpec, n: int, seed: int) -> Tuple[Dataset, Dataset]:
    if spec.dataset == "mnist":
        data = make_mnist_like(n, seed=seed)
        if spec.flatten_input:
            data = data.flattened()
        else:
            data = Dataset(
                images=data.images[:, None, :, :],
                labels=data.labels,
                num_classes=data.num_classes,
                name=data.name,
            )
    elif spec.dataset == "cifar":
        data = make_cifar_like(n, seed=seed)
    else:
        raise ConfigurationError(f"unknown dataset {spec.dataset!r}")
    return train_test_split(data, rng=np.random.default_rng(seed + 1))


def _load_cached(
    store: ArtifactStore, key: str, fingerprint: str, model: Sequential
) -> Optional[float]:
    """Try to restore a cached training run; ``None`` means cache miss.

    Every failure mode — truncated archive, garbage JSON sidecar,
    missing manifest, hash mismatch, state dict that no longer fits
    the architecture — is a *miss* (with the bad entry quarantined),
    never an exception: the caller retrains and rewrites.
    """
    state = store.get_npz(key + ".npz", spec_hash=fingerprint)
    if state is None:
        return None
    meta = store.get_json(key + ".json", spec_hash=fingerprint)
    if not isinstance(meta, dict) or not isinstance(
        meta.get("software_accuracy"), (int, float)
    ):
        if meta is not None:
            store.quarantine(key + ".json", "sidecar missing software_accuracy")
        return None
    try:
        model.load_state_dict(state)
    except ReproError as exc:
        store.quarantine(key + ".npz", f"state dict incompatible: {exc}")
        return None
    return float(meta["software_accuracy"])


def _train_one(
    spec: NetworkSpec,
    n_samples: int,
    seed: int,
    cache_dir: Optional[str],
    verbose: bool,
) -> TrainedNetwork:
    train, test = _dataset_for(spec, n_samples, seed)
    # Weight init draws from the same master seed as data and training
    # (stream seed + 3; split uses seed + 1, the trainer seed + 2), so a
    # campaign seed pins the *whole* pipeline, not just the shuffles.
    model = spec.build(rng=np.random.default_rng(seed + 3))
    store = key = fingerprint = None
    if cache_dir:
        store = get_store(cache_dir)
        key = model_cache_key(spec, n_samples, seed)
        fingerprint = model_spec_hash(spec, model)
        accuracy = _load_cached(store, key, fingerprint, model)
        if accuracy is not None:
            return TrainedNetwork(
                spec=spec, model=model, train=train, test=test,
                software_accuracy=accuracy,
            )
    trainer = Trainer(
        model,
        Adam(model.parameters(), lr=spec.lr),
        batch_size=spec.batch_size,
        rng=np.random.default_rng(seed + 2),
    )
    trainer.fit(train.images, train.labels, epochs=spec.epochs,
                x_val=test.images, labels_val=test.labels, verbose=verbose)
    accuracy = evaluate_accuracy(model, test.images, test.labels)
    if store is not None:
        # Best-effort: an unusable cache (unwritable root, REPRO_CACHE
        # pointing at a file, disk full) must never lose a finished
        # training run.
        try:
            store.put_npz(key + ".npz", model.state_dict(),
                          spec_hash=fingerprint)
            store.put_json(key + ".json",
                           {"software_accuracy": float(accuracy)},
                           spec_hash=fingerprint)
        except (OSError, ReproError) as exc:
            get_logger("repro.store").warning(
                "could not persist %s to cache %s: %s", key, store.root, exc
            )
    return TrainedNetwork(
        spec=spec, model=model, train=train, test=test,
        software_accuracy=float(accuracy),
    )


def get_benchmark_networks(
    keys: Optional[Sequence[str]] = None,
    n_samples: int = 1500,
    seed: int = 0,
    cache: bool = True,
    verbose: bool = False,
) -> List[TrainedNetwork]:
    """Train (or load cached) benchmark networks.

    Parameters
    ----------
    keys:
        Which networks (default: all six, paper order).
    n_samples:
        Synthetic dataset size per network.
    seed:
        Data + training seed.
    cache:
        Reuse weights cached under ``.cache/models``.
    """
    if keys is None:
        keys = list(NETWORK_SPECS)
    unknown = [k for k in keys if k not in NETWORK_SPECS]
    if unknown:
        raise ConfigurationError(
            f"unknown networks {unknown}; available: {list(NETWORK_SPECS)}"
        )
    cache_dir = _default_cache_dir() if cache else None
    return [
        _train_one(NETWORK_SPECS[k], n_samples, seed, cache_dir, verbose)
        for k in keys
    ]
