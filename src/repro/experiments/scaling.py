"""Technology-scaling projection (paper Section IV-B, closing remark).

"Future technology scaling that enables smaller Metal-Insulator-Metal
(MIM) capacitors in COG clusters could induce further energy reduction."
This study makes the remark quantitative with first-order constant-field
scaling from the 65 nm baseline:

* supply scales with √(node ratio) (practical scaling),
* capacitors (C_gd, C_cog) scale linearly with the node,
* slices shrink with the faster clock (node ratio),
* digital/analog component power scales ~ s^1.5 (C·V²·f with C∝s,
  V²∝s, f∝1/s gives s; comparator/analog blocks scale worse, so the
  blended exponent is a deliberately conservative 1.5 — see
  :class:`repro.energy.technology.TechnologyParameters`),
* component area scales ~ s².

The COG capacitor bank — the dominant term — re-computes *exactly* from
the scaled parameters, so the headline (energy/MVM falls superlinearly
with node) rests on physics, not on the blended exponent.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

from ..analysis.tables import render_table
from ..config import CircuitParameters
from ..core.power import ReSiPEPowerModel
from ..energy.technology import TechnologyParameters
from ..errors import ConfigurationError

__all__ = ["ScalingPoint", "run_scaling", "render_scaling"]

_BASE_NODE = 65e-9


@dataclasses.dataclass(frozen=True)
class ScalingPoint:
    """ReSiPE projected to one technology node.

    Attributes
    ----------
    node:
        Feature size (metres).
    params:
        Scaled circuit operating point.
    power / area:
        Per-engine totals (watts, m²).
    energy_per_mvm:
        Joules per 2·R·C-op MVM.
    power_efficiency:
        Ops per second per watt.
    cog_share:
        COG-cluster fraction of power.
    """

    node: float
    params: CircuitParameters
    power: float
    area: float
    energy_per_mvm: float
    power_efficiency: float
    cog_share: float


def _scaled_params(base: CircuitParameters, s: float,
                   tech: TechnologyParameters) -> CircuitParameters:
    """Constant-field-scale a circuit operating point by ``s = node/65nm``."""
    return dataclasses.replace(
        base,
        v_s=tech.supply,
        c_gd=base.c_gd * s,
        c_cog=base.c_cog * s,
        r_gd=base.r_gd,  # ramp time constant shrinks via C_gd
        slice_length=base.slice_length * s,
        dt=base.dt * s,
        spike_width=base.spike_width * s,
        t_in_min=base.t_in_min * s,
        t_in_max=base.t_in_max * s,
    )


def run_scaling(
    nodes: Sequence[float] = (65e-9, 45e-9, 28e-9, 16e-9),
    base_params: Optional[CircuitParameters] = None,
) -> List[ScalingPoint]:
    """Project the ReSiPE engine across technology nodes."""
    if not nodes:
        raise ConfigurationError("need at least one node")
    if any(n <= 0 for n in nodes):
        raise ConfigurationError("nodes must be positive")
    base_tech = TechnologyParameters.tsmc65()
    base = base_params if base_params is not None else CircuitParameters.calibrated()

    points: List[ScalingPoint] = []
    for node in nodes:
        s = node / _BASE_NODE
        tech = base_tech.scaled(node)
        params = _scaled_params(base, s, tech)
        model = ReSiPEPowerModel(
            params,
            tech=tech,
            component_power_scale=s**1.5,
            component_area_scale=s**2,
        )
        report = model.budget()
        points.append(
            ScalingPoint(
                node=node,
                params=params,
                power=report.total_power,
                area=report.total_area,
                energy_per_mvm=report.total_power * model.latency,
                power_efficiency=model.power_efficiency(),
                cog_share=report.group_power_share("COG cluster"),
            )
        )
    return points


def render_scaling(points: List[ScalingPoint]) -> str:
    """ASCII rendering of the scaling projection."""
    rows = [
        [
            f"{p.node * 1e9:.0f} nm",
            p.power * 1e6,
            p.energy_per_mvm * 1e12,
            p.area * 1e12,
            p.power_efficiency / 1e12,
            f"{p.cog_share:.1%}",
        ]
        for p in points
    ]
    return render_table(
        ["node", "power (uW)", "E/MVM (pJ)", "area (um^2)",
         "PE (TOPS/W)", "COG share"],
        rows,
        title="Technology-scaling projection (ReSiPE engine, first order)",
    )
