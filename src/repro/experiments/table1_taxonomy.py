"""Table I — the data-format taxonomy of ReRAM PIM designs."""

from __future__ import annotations

from ..analysis.tables import render_table
from ..baselines.registry import design_taxonomy

__all__ = ["render_table1"]


def render_table1() -> str:
    """The Table I taxonomy as an ASCII table."""
    taxonomy = design_taxonomy()
    headers = [
        "Data format",
        "Shape",
        "Interface circuit",
        "Non-zero V duration",
        "In/out scale",
        "Latency",
    ]
    rows = [
        [
            name,
            row.shape,
            row.interface_circuit,
            row.nonzero_voltage_duration,
            row.in_out_scale,
            row.latency,
        ]
        for name, row in design_taxonomy().items()
    ]
    assert taxonomy  # the registry is static; guard against accidental emptiness
    return render_table(headers, rows, title="Table I — data formats in ReRAM PIM designs")
