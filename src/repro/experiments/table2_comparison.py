"""Table II — power, power efficiency, latency and area comparison.

Assembles the four designs' budgets from the shared 65 nm component
library and reports both absolute figures and the ratios the paper
headlines:

* 1.97× / 2.41× / 49.76× power-efficiency improvement vs the
  level-based / rate-coding / PWM designs;
* 67.1 % power reduction vs rate coding;
* 50 % / 68.8 % latency reduction vs rate coding / PWM;
* 14.2 % / 85.3 % area saving vs rate coding / level-based;
* COG cluster = 98.1 % of ReSiPE power.

EXPERIMENTS.md records measured vs paper for every cell.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

from ..analysis.tables import render_table
from ..baselines import all_designs
from ..baselines.base import DesignMetrics
from ..baselines.resipe_design import ReSiPEDesign
from ..errors import ConfigurationError

__all__ = ["Table2Result", "run_table2", "render_table2", "PAPER_HEADLINES"]

#: The paper's headline ratios, keyed like our measured ratios.
PAPER_HEADLINES: Dict[str, float] = {
    "pe_vs_level": 1.97,
    "pe_vs_rate": 2.41,
    "pe_vs_pwm": 49.76,
    "power_reduction_vs_rate": 0.671,
    "latency_reduction_vs_rate": 0.50,
    "latency_reduction_vs_pwm": 0.688,
    "area_reduction_vs_rate": 0.142,
    "area_reduction_vs_level": 0.853,
    "cog_power_share": 0.981,
}


@dataclasses.dataclass
class Table2Result:
    """Measured Table II content.

    Attributes
    ----------
    metrics:
        Per-design headline metrics (name → metrics).
    ratios:
        Measured ratios keyed like :data:`PAPER_HEADLINES`.
    cog_power_share:
        Fraction of ReSiPE power in the COG cluster.
    """

    metrics: Dict[str, DesignMetrics]
    ratios: Dict[str, float]
    cog_power_share: float

    def ratio_vs_paper(self, key: str) -> float:
        """Measured / paper for one headline (1.0 = exact match)."""
        if key not in PAPER_HEADLINES:
            raise ConfigurationError(
                f"unknown headline {key!r}; available: {sorted(PAPER_HEADLINES)}"
            )
        return self.ratios[key] / PAPER_HEADLINES[key]


def run_table2(rows: int = 32, cols: int = 32) -> Table2Result:
    """Compute Table II on a ``rows × cols`` array."""
    designs = all_designs(rows, cols)
    metrics = {name: d.metrics() for name, d in designs.items()}

    resipe = metrics["ReSiPE (this work)"]
    level = metrics["level-based [14,17]"]
    rate = metrics["rate-coding [11,13]"]
    pwm = metrics["PWM-based [15]"]

    resipe_design = designs["ReSiPE (this work)"]
    assert isinstance(resipe_design, ReSiPEDesign)

    ratios = {
        "pe_vs_level": resipe.power_efficiency / level.power_efficiency,
        "pe_vs_rate": resipe.power_efficiency / rate.power_efficiency,
        "pe_vs_pwm": resipe.power_efficiency / pwm.power_efficiency,
        "power_reduction_vs_rate": 1.0 - resipe.power / rate.power,
        "latency_reduction_vs_rate": 1.0 - resipe.latency / rate.latency,
        "latency_reduction_vs_pwm": 1.0 - resipe.latency / pwm.latency,
        "area_reduction_vs_rate": 1.0 - resipe.area / rate.area,
        "area_reduction_vs_level": 1.0 - resipe.area / level.area,
        "cog_power_share": resipe_design.cog_power_share(),
    }
    return Table2Result(
        metrics=metrics,
        ratios=ratios,
        cog_power_share=ratios["cog_power_share"],
    )


def render_table2(result: Table2Result) -> str:
    """ASCII rendering of the comparison plus headline checks."""
    headers = ["design", "power (uW)", "latency (ns)", "area (um^2)",
               "throughput (GOPS)", "power eff. (TOPS/W)"]
    rows = [
        [
            m.name,
            m.power * 1e6,
            m.latency * 1e9,
            m.area * 1e12,
            m.throughput / 1e9,
            m.power_efficiency / 1e12,
        ]
        for m in result.metrics.values()
    ]
    table = render_table(headers, rows, title="Table II — design comparison (32x32 array)")

    check_rows = [
        [key, result.ratios[key], PAPER_HEADLINES[key],
         result.ratio_vs_paper(key)]
        for key in sorted(PAPER_HEADLINES)
    ]
    checks = render_table(
        ["headline", "measured", "paper", "measured/paper"],
        check_rows,
        title="Headline ratios vs paper",
    )
    return table + "\n\n" + checks
