"""Unified fault injection, detection, and recovery.

One subsystem for every way ReSiPE silicon goes wrong, and for what a
deployed chip does about it:

* :mod:`repro.faults.injectors` — the :class:`FaultInjector` protocol
  unifying stuck-at defects, process variation, retention drift, and
  endurance wear behind one composable ``apply(g, rng, spec)`` call
  (:class:`CompositeInjector` chains them).
* :mod:`repro.faults.probe` — :class:`HealthProbe`, the single-spike
  analog of memory BIST: fire known calibration vectors through each
  mapped layer and flag columns whose response deviates from the
  pristine golden response.
* :mod:`repro.faults.campaign` — :class:`FaultCampaign`, a seeded,
  resumable Monte-Carlo sweep over fault rate × sigma × age whose
  per-trial records persist through the
  :class:`~repro.store.ArtifactStore`.

Recovery itself lives with the mapping layer
(:func:`repro.mapping.remap.detect_and_remap`) so the mapping package
stays importable without this one.
"""

from .injectors import (
    CompositeInjector,
    DriftInjector,
    FaultInjector,
    StuckAtInjector,
    VariationInjector,
    WearInjector,
)
from .probe import HealthProbe, LayerProbeReport
from .campaign import (
    CampaignResult,
    CampaignSpec,
    FaultCampaign,
    render_campaign,
)

__all__ = [
    "FaultInjector",
    "StuckAtInjector",
    "VariationInjector",
    "DriftInjector",
    "WearInjector",
    "CompositeInjector",
    "HealthProbe",
    "LayerProbeReport",
    "CampaignSpec",
    "CampaignResult",
    "FaultCampaign",
    "render_campaign",
]
