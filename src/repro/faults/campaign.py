"""Seeded, resumable Monte-Carlo fault-injection campaigns.

Extends the paper's Fig. 7 study (Gaussian variation only) across the
full defect landscape: stuck-at fault rate × variation sigma × shelf
age, each point sampled over several seeded trials.  Every trial

1. draws a fault pattern and clones the calibrated executor through
   :meth:`~repro.mapping.executor.PIMExecutor.faulted`;
2. measures the **unprotected** accuracy of the faulted chip;
3. runs detect-and-remap
   (:func:`~repro.mapping.remap.detect_and_remap`) — probe, spare
   columns, bounded retry, software fallback — and measures the
   **protected** accuracy;
4. persists a structured record through the
   :class:`~repro.store.ArtifactStore` under a key derived from the
   campaign fingerprint.

Because records are keyed by the spec fingerprint + grid point, an
interrupted campaign resumes exactly where it stopped: finished trials
are served from the store (``CampaignResult.cached``) and only missing
ones are recomputed (``CampaignResult.computed``).  Records are
bit-reproducible for a fixed seed — the per-trial RNG stream is
derived from ``(seed, rate, sigma, age, trial)`` exactly like the
Fig. 7 runner.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.tables import render_table
from ..config import CircuitParameters
from ..core.mvm import MVMMode
from ..errors import ConfigurationError, ExecutionError
from ..mapping import (
    IdealBackend,
    PIMExecutor,
    ReSiPEBackend,
    compile_network,
)
from ..kernels import get_backend
from ..mapping.remap import detect_and_remap
from ..runtime import CampaignCell, CampaignScheduler, trial_rng
from ..store import ArtifactStore, get_store, spec_hash
from ..telemetry import context as _trace
from ..telemetry import session as _telemetry
from .injectors import (
    CompositeInjector,
    DriftInjector,
    FaultInjector,
    StuckAtInjector,
    VariationInjector,
)
from .probe import HealthProbe

__all__ = [
    "CampaignSpec",
    "CampaignResult",
    "FaultCampaign",
    "render_campaign",
]


@dataclasses.dataclass(frozen=True)
class CampaignSpec:
    """Full description of one fault campaign (hashable → resumable).

    Attributes
    ----------
    network:
        Benchmark network key (``repro.experiments.networks``).
    rates:
        Total stuck-at fault rates to sweep (fraction of cells).
    sigmas:
        Variation sigmas to sweep (0 = none).
    ages:
        Shelf ages in seconds to sweep (0 = fresh).
    trials:
        Monte-Carlo draws per grid point.
    seed:
        Master seed; every RNG stream (injection, spare draws, probes)
        derives from it, so records are bit-reproducible.
    n_samples / eval_samples:
        Synthetic dataset size / evaluated test images per trial.
    stuck_on_fraction:
        Portion of the stuck-at rate that pins to LRS (the rest to
        HRS).
    spare_fraction:
        Per-layer spare-column reserve for the remap stage.
    probe_threshold / probe_vectors:
        Health-probe configuration.
    max_retries:
        Spare re-programming attempts before software fallback.
    backend:
        ``"resipe"`` (circuit-accurate) or ``"ideal"`` (fast numpy).
    mode:
        ReSiPE circuit fidelity, ``"exact"`` or ``"linear"``.
    remap:
        Also run the detect-and-remap stage (else unprotected only).
    """

    network: str = "mlp-1"
    rates: Tuple[float, ...] = (0.0, 0.01, 0.02, 0.05)
    sigmas: Tuple[float, ...] = (0.0,)
    ages: Tuple[float, ...] = (0.0,)
    trials: int = 3
    seed: int = 0
    n_samples: int = 600
    eval_samples: int = 100
    stuck_on_fraction: float = 0.5
    spare_fraction: float = 0.2
    probe_threshold: float = 0.05
    probe_vectors: int = 4
    max_retries: int = 2
    backend: str = "resipe"
    mode: str = "linear"
    remap: bool = True

    def __post_init__(self) -> None:
        if not self.rates:
            raise ConfigurationError("need at least one fault rate")
        if any(not 0 <= r <= 1 for r in self.rates):
            raise ConfigurationError("fault rates must be in [0, 1]")
        if any(s < 0 for s in self.sigmas) or not self.sigmas:
            raise ConfigurationError("need sigmas >= 0")
        if any(a < 0 for a in self.ages) or not self.ages:
            raise ConfigurationError("need ages >= 0")
        if self.trials < 1:
            raise ConfigurationError("need at least one trial")
        if self.seed < 0:
            raise ConfigurationError(
                f"seed must be >= 0, got {self.seed!r}: trial streams "
                "derive from SeedSequence(seed + crc32(token)), which "
                "rejects negative entropy deep inside the campaign"
            )
        if not 0 <= self.stuck_on_fraction <= 1:
            raise ConfigurationError("stuck_on_fraction must be in [0, 1]")
        if self.backend not in ("resipe", "ideal"):
            raise ConfigurationError(
                f"unknown backend {self.backend!r}; choose resipe or ideal"
            )
        if self.mode not in ("exact", "linear"):
            raise ConfigurationError(
                f"unknown mode {self.mode!r}; choose exact or linear"
            )
        if self.eval_samples < 10:
            raise ConfigurationError("need at least 10 evaluation samples")

    # ------------------------------------------------------------------
    def points(self) -> List[Tuple[float, float, float, int]]:
        """The full trial grid: (rate, sigma, age, trial) tuples."""
        return [
            (rate, sigma, age, trial)
            for rate in self.rates
            for sigma in self.sigmas
            for age in self.ages
            for trial in range(self.trials)
        ]

    def injector_for(self, rate: float, sigma: float,
                     age: float) -> Optional[FaultInjector]:
        """The composite fault model of one grid point (None = pristine)."""
        stages: List[FaultInjector] = []
        if age > 0:
            stages.append(DriftInjector(elapsed=age))
        if sigma > 0:
            stages.append(VariationInjector(sigma=sigma))
        if rate > 0:
            stages.append(StuckAtInjector(
                stuck_on_rate=rate * self.stuck_on_fraction,
                stuck_off_rate=rate * (1.0 - self.stuck_on_fraction),
            ))
        if not stages:
            return None
        return stages[0] if len(stages) == 1 else CompositeInjector(*stages)

    def fingerprint(self) -> str:
        """Content hash binding stored trial records to this spec."""
        return spec_hash(dataclasses.asdict(self))


@dataclasses.dataclass
class CampaignResult:
    """All trial records of one campaign run.

    Attributes
    ----------
    spec:
        The campaign description.
    records:
        One dict per trial (JSON shape identical to what the store
        holds).
    computed / cached:
        How many trials were run this call vs served from the
        artifact store — the resumability observability.
    pool_rebuilds:
        Worker-pool rebuilds the parallel runner performed after
        worker crashes during this run (0 on serial runs).
    """

    spec: CampaignSpec
    records: List[dict]
    computed: int
    cached: int
    pool_rebuilds: int = 0

    def curve(self) -> List[dict]:
        """Aggregate per grid point: mean/min accuracy with and
        without protection, mean repair counts."""
        grouped: Dict[Tuple[float, float, float], List[dict]] = {}
        for record in self.records:
            key = (record["rate"], record["sigma"], record["age"])
            grouped.setdefault(key, []).append(record)
        out = []
        for (rate, sigma, age), recs in sorted(grouped.items()):
            unprot = [r["unprotected_accuracy"] for r in recs]
            point = {
                "rate": rate,
                "sigma": sigma,
                "age": age,
                "trials": len(recs),
                "unprotected_mean": float(np.mean(unprot)),
                "unprotected_min": float(np.min(unprot)),
            }
            prot = [r["remapped_accuracy"] for r in recs
                    if r.get("remapped_accuracy") is not None]
            if prot:
                point["remapped_mean"] = float(np.mean(prot))
                point["remapped_min"] = float(np.min(prot))
                point["mean_flagged"] = float(
                    np.mean([r["flagged_cols"] for r in recs])
                )
                point["mean_spare"] = float(
                    np.mean([r["spare_cols"] for r in recs])
                )
                point["mean_software"] = float(
                    np.mean([r["software_cols"] for r in recs])
                )
            out.append(point)
        return out


class FaultCampaign:
    """Runs (and resumes) a :class:`CampaignSpec` through the store.

    Parameters
    ----------
    spec:
        The campaign description.
    store:
        Artifact store for trial records; defaults to the process-wide
        model store (``$REPRO_CACHE`` or ``.cache/models``).
    """

    def __init__(self, spec: CampaignSpec,
                 store: Optional[ArtifactStore] = None) -> None:
        self.spec = spec
        self.store = store if store is not None else get_store()
        self._prepared = None
        # Stacked-kernel compute backend (execution knob, never spec):
        # resolved per run(); None means the byte-identical numpy path.
        self._compute_backend = None

    # ------------------------------------------------------------------
    def trial_key(self, rate: float, sigma: float, age: float,
                  trial: int) -> str:
        """Store key of one trial record."""
        return (
            f"faults/{self.spec.fingerprint()}/"
            f"r{rate:.6f}-s{sigma:.6f}-a{age:.6g}-t{trial}.json"
        )

    def _trial_rng(self, rate: float, sigma: float, age: float,
                   trial: int) -> np.random.Generator:
        token = (
            f"{self.spec.network}|{rate:.6f}|{sigma:.6f}|{age:.6g}|{trial}"
        )
        return trial_rng(self.spec.seed, token)

    def _prepare(self):
        """Train + map + calibrate the pristine chip (once, lazily)."""
        if self._prepared is not None:
            return self._prepared
        from ..experiments.networks import get_benchmark_networks

        spec = self.spec
        net = get_benchmark_networks(
            keys=[spec.network], n_samples=spec.n_samples, seed=spec.seed
        )[0]
        if spec.backend == "ideal":
            backend = IdealBackend()
        else:
            backend = ReSiPEBackend(
                params=CircuitParameters.calibrated(),
                mode=MVMMode.EXACT if spec.mode == "exact" else MVMMode.LINEAR,
            )
        mapped = compile_network(net.model, backend)
        calibration = net.train.images[: min(64, len(net.train))]
        executor = PIMExecutor(mapped, calibration)
        probe = HealthProbe(
            vectors=spec.probe_vectors,
            threshold=spec.probe_threshold,
            seed=spec.seed,
        )
        x_eval = net.test.images[: spec.eval_samples]
        y_eval = net.test.labels[: spec.eval_samples]
        self._prepared = (net, backend, mapped, executor, probe,
                          x_eval, y_eval)
        return self._prepared

    def _compute_backend_name(self) -> Optional[str]:
        """The picklable backend selector worker initializers receive
        (resolved instances may hold unpicklable JIT state, so the name
        crosses the process boundary and each worker re-resolves it)."""
        if self._compute_backend is None:
            return None
        return self._compute_backend.name

    def _run_local_cell(self, cell) -> None:
        """Parent-side shared cell of the campaign DAG: train + map +
        calibrate the pristine chip once, warming the model cache that
        forked workers (and the in-process group cells) reuse."""
        self._prepare()
        return None

    # ------------------------------------------------------------------
    def _run_trial(self, rate: float, sigma: float, age: float,
                   trial: int) -> dict:
        """One trial record (serial path; the group path of one)."""
        return self._run_trial_group([(rate, sigma, age, trial)])[0]

    def _run_trial_group(
        self, points: Sequence[Tuple[float, float, float, int]]
    ) -> List[dict]:
        """Records for a batch of grid points, in ``points`` order.

        Trial-stacking: the faulted clones of the whole batch evaluate
        their unprotected accuracy through one stacked forward pass
        (:meth:`~repro.mapping.executor.PIMExecutor.accuracy_trials`),
        which is bit-identical to per-trial evaluation, so records do
        not depend on the batch size.  RNG streams are created per
        point from the trial token (never from batch position), and the
        remap stage — whose spare draws continue each trial's own
        stream — stays per-trial.

        Each group is one ``campaign.trial_group`` telemetry span (the
        scheduler cell granularity); on serial runs the spans land on
        the parent session, one per group.
        """
        rate0, sigma0, age0, _trial0 = points[0]
        with _telemetry.span(
            "campaign.trial_group",
            rate=rate0, sigma=sigma0, age=age0, trials=len(points),
        ):
            return self._run_trial_group_inner(points)

    def _run_trial_group_inner(
        self, points: Sequence[Tuple[float, float, float, int]]
    ) -> List[dict]:
        spec = self.spec
        _net, backend, mapped, executor, probe, x_eval, y_eval = (
            self._prepare()
        )
        prepared = []
        for rate, sigma, age, trial in points:
            rng = self._trial_rng(rate, sigma, age, trial)
            injector = spec.injector_for(rate, sigma, age)
            record = {
                "rate": rate,
                "sigma": sigma,
                "age": age,
                "trial": trial,
                "injector": injector.describe() if injector else None,
                "remapped_accuracy": None,
                "flagged_cols": 0,
                "spare_cols": 0,
                "software_cols": 0,
                "remap_events": [],
            }
            prepared.append((record, rng, injector))

        faulted_idx = [
            i for i, (_r, _g, injector) in enumerate(prepared)
            if injector is not None
        ]
        faulted_execs = [
            executor.faulted(prepared[i][2], prepared[i][1])
            for i in faulted_idx
        ]
        if len(faulted_execs) > 1:
            stacked_accs = executor.accuracy_trials(
                x_eval, y_eval, [fe.network for fe in faulted_execs],
                backend=self._compute_backend,
            )
            unprotected = [float(a) for a in stacked_accs]
        else:
            unprotected = [
                fe.accuracy(x_eval, y_eval) for fe in faulted_execs
            ]

        baseline: Optional[float] = None
        records: List[dict] = []
        for i, (record, rng, injector) in enumerate(prepared):
            if injector is None:
                if baseline is None:
                    baseline = executor.accuracy(x_eval, y_eval)
                record["unprotected_accuracy"] = baseline
                if spec.remap:
                    record["remapped_accuracy"] = baseline
                records.append(record)
                continue
            pos = faulted_idx.index(i)
            record["unprotected_accuracy"] = unprotected[pos]
            if spec.remap:
                result = detect_and_remap(
                    reference=mapped,
                    candidate=faulted_execs[pos].network,
                    backend=backend,
                    probe=probe,
                    injector=injector,
                    rng=rng,
                    spare_fraction=spec.spare_fraction,
                    max_retries=spec.max_retries,
                )
                protected = executor._clone_with_network(result.network)
                record["remapped_accuracy"] = protected.accuracy(
                    x_eval, y_eval
                )
                record["flagged_cols"] = result.flagged_cols
                record["spare_cols"] = result.spare_cols
                record["software_cols"] = result.software_cols
                record["remap_events"] = result.events()
            records.append(record)
        return records

    def run(self, max_trials: Optional[int] = None,
            verbose: bool = False, workers: int = 1,
            trial_batch: int = 1,
            compute_backend=None) -> CampaignResult:
        """Execute the campaign, resuming from stored records.

        Parameters
        ----------
        max_trials:
            Stop after computing this many *new* trials (stored ones do
            not count) — lets long sweeps run in bounded chunks; call
            :meth:`run` again to continue.
        verbose:
            Print one line per computed trial.
        workers:
            Worker processes; 1 (default) runs in-process.  Results are
            byte-identical at any worker count — trials are seeded by
            identity, computed records merge into the store as they
            land (interrupted parallel runs resume without recompute),
            and crashed workers are retried on a fresh pool.
        trial_batch:
            Trials evaluated per stacked forward pass (the
            trial-vectorized kernels); 1 evaluates serially.  Results
            are byte-identical at any batch size.
        compute_backend:
            Stacked-kernel engine (:func:`repro.kernels.get_backend`
            name or instance; default numpy).  An execution knob like
            ``workers``/``trial_batch``: fingerprints, persisted bytes
            and stdout are identical for any choice.
        """
        if workers < 1:
            raise ConfigurationError(f"need workers >= 1, got {workers!r}")
        if trial_batch < 1:
            raise ConfigurationError(
                f"need trial_batch >= 1, got {trial_batch!r}"
            )
        # Resolve eagerly so a bad name fails before any compute, and
        # keep the resolved engine for the in-process trial groups.
        self._compute_backend = (
            get_backend(compute_backend) if compute_backend is not None
            else None
        )
        # One deterministic trace id per campaign run: the campaign.run
        # span, every scheduler cell and the grafted worker-side span
        # trees all stitch under it (no-op without a telemetry session).
        with _trace.trace_scope():
            with _telemetry.span(
                "campaign.run",
                network=self.spec.network,
                points=len(self.spec.points()),
                workers=workers,
                trial_batch=trial_batch,
            ):
                return self._run_inner(
                    max_trials, verbose, workers, trial_batch
                )

    def _run_inner(self, max_trials: Optional[int], verbose: bool,
                   workers: int, trial_batch: int) -> CampaignResult:
        session = _telemetry.active()
        fingerprint = self.spec.fingerprint()
        stored_records: Dict[Tuple[float, float, float, int], dict] = {}
        pending: List[Tuple[float, float, float, int]] = []
        for point in self.spec.points():
            stored = self.store.get_json(
                self.trial_key(*point), spec_hash=fingerprint
            )
            if stored is not None:
                stored_records[point] = stored
            else:
                pending.append(point)
        if max_trials is not None:
            pending = pending[:max_trials]
        if session is not None:
            session.count("campaign.trials.started", len(pending))
            session.count("campaign.trials.cached", len(stored_records))

        computed_records: Dict[Tuple[float, float, float, int], dict] = {}

        def merge(group, group_records) -> None:
            """Parent-side store merge: persist as soon as computed."""
            for point, record in zip(group, group_records):
                self.store.put_json(
                    self.trial_key(*point), record, spec_hash=fingerprint
                )
                computed_records[point] = record
            if session is not None:
                session.count("campaign.trials.computed", len(group))

        pool_rebuilds = 0
        if pending:
            groups = [
                tuple(pending[i : i + trial_batch])
                for i in range(0, len(pending), trial_batch)
            ]
            # The grid as a DAG: one parent-side prepare cell (train +
            # map + calibrate, warming the model cache workers inherit
            # via fork) feeding one pooled cell per trial group.
            cells = [CampaignCell(key="prepare", local=True)]
            cells.extend(
                CampaignCell(
                    key=f"group/{i}", payload=group, deps=("prepare",)
                )
                for i, group in enumerate(groups)
            )
            if workers > 1:
                scheduler = CampaignScheduler(
                    _campaign_worker,
                    workers=workers,
                    initializer=_campaign_worker_init,
                    initargs=(self.spec, self._compute_backend_name()),
                    local_fn=self._run_local_cell,
                )
            else:
                # In-process: install *this* campaign (warm _prepared,
                # caller-chosen store, resolved backend) as the worker
                # state; the instance is never pickled at workers <= 1.
                scheduler = CampaignScheduler(
                    _campaign_worker,
                    workers=1,
                    initializer=_campaign_worker_install,
                    initargs=(self,),
                    local_fn=self._run_local_cell,
                )

            def cell_merge(cell: CampaignCell, group_records) -> None:
                if cell.payload is None:
                    return  # the prepare cell carries no records
                merge(cell.payload, group_records)

            scheduler.run(cells, on_result=cell_merge)
            pool_rebuilds = scheduler.pool_rebuilds

        records: List[dict] = []
        computed = cached = 0
        for point in self.spec.points():
            if point in stored_records:
                records.append(stored_records[point])
                cached += 1
            elif point in computed_records:
                record = computed_records[point]
                records.append(record)
                computed += 1
                if verbose:
                    rate, sigma, age, trial = point
                    prot = record["remapped_accuracy"]
                    print(
                        f"[faults] rate={rate:.3f} sigma={sigma:.2f} "
                        f"age={age:g} trial={trial}: "
                        f"unprotected={record['unprotected_accuracy']:.3f}"
                        + (f" remapped={prot:.3f}" if prot is not None
                           else "")
                    )
        return CampaignResult(
            spec=self.spec, records=records, computed=computed,
            cached=cached, pool_rebuilds=pool_rebuilds,
        )


# ----------------------------------------------------------------------
# Worker-process plumbing.  The pool initializer rebuilds the campaign
# from its (picklable) spec once per process; tasks are then just point
# groups.  Workers never write the store — the parent merges results —
# so the single-writer invariant of ArtifactStore holds.
_WORKER_CAMPAIGN: Optional[FaultCampaign] = None


def _campaign_worker_init(
    spec: CampaignSpec, compute_backend: Optional[str] = None
) -> None:
    """Build the per-process campaign (process-pool initializer)."""
    global _WORKER_CAMPAIGN
    _WORKER_CAMPAIGN = FaultCampaign(spec)
    if compute_backend is not None:
        _WORKER_CAMPAIGN._compute_backend = get_backend(compute_backend)


def _campaign_worker_install(campaign: FaultCampaign) -> None:
    """Serial-path initializer: serve groups from an existing campaign
    instance (its warm ``_prepared`` state, caller-chosen store and
    resolved compute backend) instead of rebuilding from the spec."""
    global _WORKER_CAMPAIGN
    _WORKER_CAMPAIGN = campaign


def _campaign_worker(
    task: Sequence[Tuple[float, float, float, int]],
) -> List[dict]:
    """Evaluate one trial group inside a worker process."""
    if _WORKER_CAMPAIGN is None:
        raise ExecutionError(
            "campaign worker called before its initializer installed a spec"
        )
    return _WORKER_CAMPAIGN._run_trial_group(list(task))


def render_campaign(result: CampaignResult) -> str:
    """ASCII accuracy-vs-fault-rate curves, with and without remap."""
    spec = result.spec
    show_remap = any("remapped_mean" in p for p in result.curve())
    headers = ["rate", "sigma", "age", "unprotected", "min"]
    if show_remap:
        headers += ["remapped", "min", "flagged", "spares", "software"]
    rows = []
    for point in result.curve():
        row = [
            f"{point['rate']:.3f}",
            f"{point['sigma']:.2f}",
            f"{point['age']:g}",
            point["unprotected_mean"],
            point["unprotected_min"],
        ]
        if show_remap:
            if "remapped_mean" in point:
                row += [
                    point["remapped_mean"],
                    point["remapped_min"],
                    point["mean_flagged"],
                    point["mean_spare"],
                    point["mean_software"],
                ]
            else:
                row += ["-"] * 5
        rows.append(row)
    title = (
        f"Fault campaign — {spec.network} ({spec.backend}/{spec.mode}), "
        f"{spec.trials} trial(s)/point, seed {spec.seed}"
    )
    table = render_table(headers, rows, title=title)
    footer = (
        f"resume: {result.cached} trial(s) from store, "
        f"{result.computed} computed this run"
    )
    if result.pool_rebuilds:
        footer += (
            f"; {result.pool_rebuilds} worker-pool rebuild(s) after crashes"
        )
    return table + "\n" + footer
