"""Composable fault injectors — one protocol over every non-ideality.

The device layer already models each defect mechanism in isolation
(:class:`~repro.reram.variation.StuckAtFaultModel`,
:class:`~repro.reram.variation.VariationModel`,
:class:`~repro.reram.retention.RetentionModel`,
:class:`~repro.reram.endurance.EnduranceModel`), but they are islands:
each has its own entry point and only Gaussian variation is reachable
from the mapped-network pipeline.  This module unifies them behind one
:class:`FaultInjector` interface —

    g_faulty = injector.apply(g, rng, spec)

— so any mechanism (or any composition of mechanisms) can be driven
through :meth:`CrossbarArray.injected`, :meth:`ReSiPEEngine.faulted`,
:meth:`ProgrammedTile.faulted`, :meth:`MappedNetwork.faulted` and
:meth:`PIMExecutor.faulted`, and swept by the
:class:`~repro.faults.campaign.FaultCampaign` Monte-Carlo runner.

Every injector serialises itself via :meth:`FaultInjector.describe`;
the campaign hashes that description into its artifact keys so a trial
record is bound to the exact fault model that produced it.

When ``spec`` is ``None`` the conductances are interpreted as
*normalised weights* in ``[0, 1]`` (the :class:`IdealBackend` path):
stuck-on pins to 1, stuck-off to 0, and window-dependent mechanisms
use the unit window.
"""

from __future__ import annotations

import abc
from typing import Optional, Sequence

import numpy as np

from ..errors import DeviceError
from ..reram.device import DeviceSpec
from ..units import TERA
from ..reram.endurance import EnduranceModel
from ..reram.retention import RetentionModel
from ..reram.variation import StuckAtFaultModel, VariationModel

__all__ = [
    "FaultInjector",
    "StuckAtInjector",
    "VariationInjector",
    "DriftInjector",
    "WearInjector",
    "CompositeInjector",
]


class FaultInjector(abc.ABC):
    """One conductance-disturbing mechanism (or a composition)."""

    @abc.abstractmethod
    def apply(
        self,
        conductances: np.ndarray,
        rng: np.random.Generator,
        spec: Optional[DeviceSpec] = None,
    ) -> np.ndarray:
        """Return disturbed conductances; the input is never modified.

        ``spec`` carries the device window; ``None`` means the values
        are normalised weights on the unit window.
        """

    @abc.abstractmethod
    def describe(self) -> dict:
        """JSON-serialisable description (stable, for artifact keys)."""

    @property
    def is_null(self) -> bool:
        """True when this injector can never disturb anything."""
        return False

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.describe()})"


class StuckAtInjector(FaultInjector):
    """Stuck-at-LRS / stuck-at-HRS cell defects.

    Wraps :class:`~repro.reram.variation.StuckAtFaultModel`; on the
    normalised unit window stuck-on pins to 1.0 and stuck-off to 0.0.
    """

    def __init__(self, stuck_on_rate: float = 0.0,
                 stuck_off_rate: float = 0.0) -> None:
        self.model = StuckAtFaultModel(
            stuck_on_rate=stuck_on_rate, stuck_off_rate=stuck_off_rate
        )

    def apply(self, conductances, rng, spec=None):
        g = np.asarray(conductances, dtype=float)
        if spec is None:
            return self.model.inject(g, rng, _UNIT_WINDOW)
        return self.model.inject(g, rng, spec)

    def describe(self) -> dict:
        return {
            "type": "stuck_at",
            "stuck_on_rate": self.model.stuck_on_rate,
            "stuck_off_rate": self.model.stuck_off_rate,
        }

    @property
    def is_null(self) -> bool:
        return self.model.total_rate == 0


class VariationInjector(FaultInjector):
    """Multiplicative device-to-device conductance variation (Fig. 7)."""

    def __init__(self, sigma: float, distribution: str = "normal") -> None:
        self.model = VariationModel(sigma=sigma, distribution=distribution)

    def apply(self, conductances, rng, spec=None):
        return self.model.perturb(
            np.asarray(conductances, dtype=float), rng, spec=spec
        )

    def describe(self) -> dict:
        return {
            "type": "variation",
            "sigma": self.model.sigma,
            "distribution": self.model.distribution,
        }

    @property
    def is_null(self) -> bool:
        return self.model.sigma == 0


class DriftInjector(FaultInjector):
    """Retention drift after ``elapsed`` seconds on the shelf."""

    def __init__(
        self,
        elapsed: float,
        nu: float = 0.01,
        nu_sigma: float = 0.2,
        t0: float = 1.0,
    ) -> None:
        if elapsed < 0:
            raise DeviceError(f"elapsed time must be >= 0, got {elapsed!r}")
        self.elapsed = float(elapsed)
        self.model = RetentionModel(nu=nu, nu_sigma=nu_sigma, t0=t0)

    def apply(self, conductances, rng, spec=None):
        g = np.asarray(conductances, dtype=float)
        factor = self.model.decay_factor(self.elapsed, shape=g.shape, rng=rng)
        out = g * factor
        if spec is not None:
            return np.clip(out, spec.g_min, spec.g_max)
        return np.clip(out, 0.0, 1.0)

    def describe(self) -> dict:
        return {
            "type": "drift",
            "elapsed": self.elapsed,
            "nu": self.model.nu,
            "nu_sigma": self.model.nu_sigma,
            "t0": self.model.t0,
        }

    @property
    def is_null(self) -> bool:
        return self.elapsed == 0 or self.model.nu == 0


class WearInjector(FaultInjector):
    """Endurance window closure after ``cycles`` programming cycles.

    The conductances are clipped into the degraded window — the
    write-verify loop can no longer reach the original extremes.
    """

    def __init__(
        self,
        cycles: float,
        endurance_cycles: float = 1e7,
        beta: float = 1.5,
    ) -> None:
        if cycles < 0:
            raise DeviceError(f"cycles must be >= 0, got {cycles!r}")
        self.cycles = float(cycles)
        self.model = EnduranceModel(
            endurance_cycles=endurance_cycles, beta=beta
        )

    def apply(self, conductances, rng, spec=None):
        g = np.asarray(conductances, dtype=float)
        window = spec if spec is not None else _UNIT_WINDOW
        degraded = self.model.degraded_spec(window, self.cycles)
        return np.clip(g, degraded.g_min, degraded.g_max)

    def describe(self) -> dict:
        return {
            "type": "wear",
            "cycles": self.cycles,
            "endurance_cycles": self.model.endurance_cycles,
            "beta": self.model.beta,
        }

    @property
    def is_null(self) -> bool:
        return self.cycles == 0


class CompositeInjector(FaultInjector):
    """Sequential composition: each stage disturbs the previous output.

    Order matters physically — e.g. wear narrows the window, then
    variation scatters within it, then stuck-at defects pin cells.
    """

    def __init__(self, *stages: FaultInjector) -> None:
        flat: list = []
        for stage in stages:
            if isinstance(stage, CompositeInjector):
                flat.extend(stage.stages)
            else:
                flat.append(stage)
        for stage in flat:
            if not isinstance(stage, FaultInjector):
                raise DeviceError(
                    f"composite stages must be FaultInjectors, "
                    f"got {type(stage).__name__}"
                )
        self.stages: Sequence[FaultInjector] = tuple(flat)

    def apply(self, conductances, rng, spec=None):
        g = np.asarray(conductances, dtype=float)
        for stage in self.stages:
            g = stage.apply(g, rng, spec)
        return g

    def describe(self) -> dict:
        return {
            "type": "composite",
            "stages": [stage.describe() for stage in self.stages],
        }

    @property
    def is_null(self) -> bool:
        return all(stage.is_null for stage in self.stages)


# The normalised-weight window used when no DeviceSpec is supplied:
# resistances 1 Ohm / 1e12 Ohm give conductances ~[0, 1] so stuck-on
# pins to 1.0 and stuck-off to (numerically) 0.
_UNIT_WINDOW = DeviceSpec(r_lrs=1.0, r_hrs=1 * TERA)
