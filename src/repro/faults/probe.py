"""Column-health detection — the single-spike analog of a memory BIST.

A deployed crossbar cannot be read back cell by cell without paying the
full write-verify machinery, but it *can* be exercised: fire known
calibration vectors through every mapped layer and compare the output
spike timing against the golden (pristine) response recorded at
deployment time.  A column whose response deviates beyond a threshold
is flagged as unhealthy; the remapper
(:func:`repro.mapping.remap.detect_and_remap`) then moves its logical
weights onto spare columns or into the software fallback path.

The probe stimulus is a small seeded set of vectors: the all-ones
"row-sum" vector (which sees every cell of every column, so a single
stuck-on LRS cell shifts the column output by a full weight unit) plus
uniform random vectors that break ties a structured pattern could miss.
Deviations are measured relative to the layer's full-scale response so
one threshold works across layers of very different fan-in.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Tuple

import numpy as np

from ..errors import MappingError

__all__ = ["HealthProbe", "LayerProbeReport"]


@dataclasses.dataclass(frozen=True)
class LayerProbeReport:
    """Probe verdict for one mapped layer.

    Attributes
    ----------
    layer:
        Layer name.
    deviations:
        Per-logical-column relative deviation (worst case over the
        probe vectors).
    flagged:
        Columns whose deviation exceeded the threshold, worst first.
    threshold:
        The relative-deviation threshold used.
    """

    layer: str
    deviations: np.ndarray
    flagged: Tuple[int, ...]
    threshold: float

    @property
    def healthy(self) -> bool:
        return not self.flagged

    def worst(self) -> float:
        """Largest observed relative deviation."""
        return float(self.deviations.max()) if self.deviations.size else 0.0


class HealthProbe:
    """Fires calibration vectors through mapped layers and flags columns.

    Parameters
    ----------
    vectors:
        Number of random probe vectors (the all-ones vector is always
        added on top).
    threshold:
        Relative deviation above which a column is flagged.  The
        reference scale is the pristine layer's full-scale response,
        so 0.05 means "5 % of the layer's dynamic range".
    amplitude:
        Drive level of the probe vectors in the ``[0, 1]`` input
        domain.  Kept below full scale so EXACT-mode tiles are probed
        inside their linear region (a saturated reference would mask
        faults).
    seed:
        Seed of the random probe vectors — the stimulus is part of the
        deployment contract and must be reproducible.
    """

    def __init__(
        self,
        vectors: int = 4,
        threshold: float = 0.05,
        amplitude: float = 0.5,
        seed: int = 0,
    ) -> None:
        if vectors < 0:
            raise MappingError(f"vectors must be >= 0, got {vectors!r}")
        if threshold <= 0:
            raise MappingError(f"threshold must be positive, got {threshold!r}")
        if not 0 < amplitude <= 1:
            raise MappingError(
                f"amplitude must be in (0, 1], got {amplitude!r}"
            )
        self.vectors = vectors
        self.threshold = threshold
        self.amplitude = amplitude
        self.seed = seed

    # ------------------------------------------------------------------
    def stimulus(self, width: int) -> np.ndarray:
        """The probe battery for a layer of input ``width``.

        Deterministic in (``seed``, ``width``): ``vectors`` uniform
        random vectors plus the all-ones vector, all at ``amplitude``.
        """
        if width < 1:
            raise MappingError(f"layer input width must be >= 1, got {width}")
        rng = np.random.default_rng(self.seed + width)
        random_part = rng.random((self.vectors, width))
        ones = np.ones((1, width))
        return self.amplitude * np.concatenate([random_part, ones], axis=0)

    def _input_width(self, layer) -> int:
        rows = layer.diff.rows
        return rows - 1 if layer.diff.has_bias_row else rows

    def probe_layer(self, reference, candidate) -> LayerProbeReport:
        """Compare ``candidate`` against the golden ``reference`` layer.

        Both must be mapped-layer-likes of the same geometry (the
        candidate is typically a faulted or remapped clone of the
        reference).  Returns the per-column verdict.
        """
        if reference.diff.positive.shape != candidate.diff.positive.shape:
            raise MappingError(
                f"layer geometry mismatch: {reference.diff.positive.shape} "
                f"vs {candidate.diff.positive.shape}"
            )
        x = self.stimulus(self._input_width(reference))
        golden = np.asarray(reference.matmul(x), dtype=float)
        observed = np.asarray(candidate.matmul(x), dtype=float)
        scale = max(float(np.abs(golden).max()), 1e-12)
        deviations = np.abs(observed - golden).max(axis=0) / scale
        flagged = [int(c) for c in np.where(deviations > self.threshold)[0]]
        flagged.sort(key=lambda c: -deviations[c])
        return LayerProbeReport(
            layer=reference.name,
            deviations=deviations,
            flagged=tuple(flagged),
            threshold=self.threshold,
        )

    def probe_network(self, reference, candidate) -> Dict[str, LayerProbeReport]:
        """Probe every mapped layer; keys are layer names."""
        ref_stages = reference.stages
        cand_stages = candidate.stages
        if len(ref_stages) != len(cand_stages):
            raise MappingError(
                f"network stage counts differ: {len(ref_stages)} vs "
                f"{len(cand_stages)}"
            )
        reports: Dict[str, LayerProbeReport] = {}
        for ref, cand in zip(ref_stages, cand_stages):
            if ref is None or cand is None:
                if (ref is None) != (cand is None):
                    raise MappingError("mapped/unmapped stages do not align")
                continue
            reports[ref.name] = self.probe_layer(ref, cand)
        return reports

    def describe(self) -> dict:
        """JSON-serialisable probe configuration (for artifact keys)."""
        return {
            "vectors": self.vectors,
            "threshold": self.threshold,
            "amplitude": self.amplitude,
            "seed": self.seed,
        }
