"""Pluggable compute backends for the trial-stacked MVM kernels.

The Monte-Carlo fast path (PR 4) funnels every hot array operation —
the broadcast batched matmul, the exp/log1p codec transforms, the
banded partial-sum accumulation — through a tiny set of primitives.
:class:`ComputeBackend` names those primitives; implementations swap
the execution engine without touching the physics:

* :class:`NumpyBackend` — the default; literally the numpy calls the
  serial reference path runs, so results are byte-identical to today.
* :class:`NumbaBackend` — JIT-compiled ``prange`` over trial slices,
  each slice dispatching to the same BLAS GEMM numpy uses (preserving
  per-slice bit-identity).  Lazily imported; selecting it without
  numba installed raises :class:`~repro.errors.ConfigurationError`.
* :class:`CupyBackend` — GPU stub behind the same capability check.

Backends are *execution knobs*, never spec: campaign fingerprints,
persisted store bytes and CLI stdout are identical across backends
(the kernels contract suite pins this down).  Select one per run via
:func:`get_backend` — ``"auto"`` degrades gracefully to numpy with a
single warning when the ``perf`` extra is missing.
"""

from .backend import ComputeBackend, available_backends, get_backend
from .cupy_backend import CupyBackend
from .numba_backend import NumbaBackend
from .numpy_backend import NumpyBackend

__all__ = [
    "ComputeBackend",
    "NumpyBackend",
    "NumbaBackend",
    "CupyBackend",
    "get_backend",
    "available_backends",
]
