"""The :class:`ComputeBackend` protocol and backend resolution.

A backend implements the handful of array primitives the EXACT/LINEAR
stacked MVM path actually executes.  Everything else in the signal
chain is glue around these four calls, so swapping a backend swaps the
entire hot loop:

``matmul``
    The broadcast trial product ``(..., rows) @ (T, rows, cols)`` —
    the single hottest operation of every Monte-Carlo sweep.
``exp`` / ``log1p``
    The COG charge-up and ramp-inversion column transforms (paper
    Eqs. 3–4).
``where``
    Masked selection (absent-spike zeroing, saturation clamping).
``accumulate``
    Banded partial-sum accumulation ``out[..., cols] += partial`` of
    the tile-grid digital adder.

Bit-identity contract: the default numpy implementations *are* the
expressions the serial reference path runs, so ``get_backend(None)``
changes nothing.  Alternative backends must keep per-trial-slice
bit-identity for ``matmul`` (the property the contract tests enforce);
elementwise transforms inherit the numpy implementations unless a
backend can guarantee last-ulp agreement.
"""

from __future__ import annotations

import abc
import importlib.util
import warnings
from typing import Optional, Union

import numpy as np

from ..errors import ConfigurationError
from ..telemetry import session as _telemetry

__all__ = ["ComputeBackend", "get_backend", "available_backends"]


def _module_available(name: str) -> bool:
    """Whether ``import name`` would succeed (without importing it)."""
    try:
        return importlib.util.find_spec(name) is not None
    except (ImportError, ValueError):
        return False


class ComputeBackend(abc.ABC):
    """Array-primitive provider for the trial-stacked kernels.

    Subclasses override :meth:`matmul` (mandatory) and may override the
    elementwise transforms; the numpy defaults here are exactly what the
    serial reference path computes, so partial overrides stay safe.
    """

    #: short identifier (``"numpy"``, ``"numba"``, ``"cupy"``)
    name: str = "abstract"

    @abc.abstractmethod
    def matmul(self, x: np.ndarray, w: np.ndarray) -> np.ndarray:
        """Broadcast product ``x @ w``.

        ``w`` is a trial stack ``(T, rows, cols)``; ``x`` is ``(rows,)``
        or ``(batch, rows)`` shared by every trial, or per-trial
        ``(T, batch, rows)``.  Every output slice ``t`` must be
        bit-identical to the 2-D product ``x[t] @ w[t]`` (numpy's
        broadcast ``np.matmul`` semantics).
        """

    def exp(self, x: np.ndarray) -> np.ndarray:
        """Elementwise ``e**x`` (COG charge-up, Eq. 3)."""
        return np.exp(x)

    def log1p(self, x: np.ndarray) -> np.ndarray:
        """Elementwise ``ln(1 + x)`` (ramp inversion, Eq. 4)."""
        return np.log1p(x)

    def where(self, mask: np.ndarray, a, b) -> np.ndarray:
        """Elementwise masked select ``mask ? a : b``."""
        return np.where(mask, a, b)

    def accumulate(self, out: np.ndarray, col_slice: slice,
                   partial: np.ndarray) -> None:
        """In-place banded accumulation ``out[..., col_slice] += partial``.

        The tile-grid digital adder; band order is the caller's, so
        float accumulation stays bit-identical to the serial path.
        """
        out[..., col_slice] += partial

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


# ----------------------------------------------------------------------
# Resolution
# ----------------------------------------------------------------------
_NUMPY_SINGLETON: Optional[ComputeBackend] = None
_AUTO_FALLBACK_WARNED = False


def _numpy_backend() -> ComputeBackend:
    global _NUMPY_SINGLETON
    if _NUMPY_SINGLETON is None:
        from .numpy_backend import NumpyBackend

        _NUMPY_SINGLETON = NumpyBackend()
    return _NUMPY_SINGLETON


def available_backends() -> dict:
    """Map backend name -> importability of its engine.

    ``numpy`` is always available; ``numba``/``cupy`` report whether
    the optional dependency is importable in this environment (the
    ``perf`` extra installs numba; cupy is a manual install).
    """
    return {
        "numpy": True,
        "numba": _module_available("numba"),
        "cupy": _module_available("cupy"),
    }


def get_backend(
    backend: Union[None, str, ComputeBackend] = None,
) -> ComputeBackend:
    """Resolve a backend selection to a :class:`ComputeBackend`.

    ``None`` / ``"numpy"`` return the shared numpy backend (the
    byte-identical default); a :class:`ComputeBackend` instance passes
    through unchanged; ``"numba"`` / ``"cupy"`` require the optional
    dependency and raise :class:`~repro.errors.ConfigurationError` when
    it is missing (an explicit request must not silently degrade);
    ``"auto"`` picks the fastest available engine, falling back to
    numpy with a single warning when the ``perf`` extra is absent.
    """
    global _AUTO_FALLBACK_WARNED
    if backend is None:
        return _numpy_backend()
    if isinstance(backend, ComputeBackend):
        return backend
    if backend == "numpy":
        return _numpy_backend()
    if backend == "numba":
        if not _module_available("numba"):
            raise ConfigurationError(
                "backend 'numba' requested but numba is not installed; "
                "install the perf extra (pip install 'repro[perf]') or "
                "use --backend auto to fall back to numpy"
            )
        from .numba_backend import NumbaBackend

        return NumbaBackend()
    if backend == "cupy":
        if not _module_available("cupy"):
            raise ConfigurationError(
                "backend 'cupy' requested but cupy is not installed; "
                "cupy is a manual install matched to your CUDA toolkit "
                "(see docs/performance.md)"
            )
        from .cupy_backend import CupyBackend

        return CupyBackend()
    if backend == "auto":
        if _module_available("numba"):
            from .numba_backend import NumbaBackend

            return NumbaBackend()
        if not _AUTO_FALLBACK_WARNED:
            _AUTO_FALLBACK_WARNED = True
            warnings.warn(
                "backend 'auto': numba is not installed, falling back to "
                "the numpy kernels (install the perf extra for the JIT "
                "backend)",
                RuntimeWarning,
                stacklevel=2,
            )
            session = _telemetry.active()
            if session is not None:
                session.count("kernels.backend.fallback")
        return _numpy_backend()
    raise ConfigurationError(
        f"unknown compute backend {backend!r}; "
        "choose numpy, numba, cupy or auto"
    )
