"""CuPy GPU backend stub (experimental, manual install).

Routes the broadcast trial product through a GPU GEMM with host↔device
round-trips per call.  This is a *capability stub*: the data movement
makes it slower than numpy for the repo's tile sizes, and GPU GEMM is
**not** guaranteed bit-identical to the CPU BLAS path — so the stub is
never auto-selected and the byte-identity contract tests only bind the
numpy/numba pair.  It exists so the scale-out items (multi-tile chip
simulation) have a working socket to grow into.

cupy is not part of any extra — it must be installed manually against
the local CUDA toolkit (see docs/performance.md).  Constructing the
backend without cupy raises :class:`~repro.errors.ConfigurationError`.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from .backend import ComputeBackend, _module_available

__all__ = ["CupyBackend"]


class CupyBackend(ComputeBackend):
    """GPU kernels via cupy (experimental; requires manual install)."""

    name = "cupy"

    def __init__(self) -> None:
        if not _module_available("cupy"):
            raise ConfigurationError(
                "CupyBackend requires cupy, which is a manual install "
                "matched to your CUDA toolkit (see docs/performance.md)"
            )
        import cupy

        self._cupy = cupy

    def matmul(self, x: np.ndarray, w: np.ndarray) -> np.ndarray:
        cp = self._cupy
        out = cp.matmul(cp.asarray(x), cp.asarray(w))
        return np.asarray(cp.asnumpy(out))
