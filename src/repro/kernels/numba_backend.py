"""Numba JIT backend — parallel ``prange`` over trial slices.

The broadcast trial product is embarrassingly parallel along the trial
axis: slice ``t`` of ``(..., rows) @ (T, rows, cols)`` is an ordinary
2-D GEMM.  The JIT kernels here run one ``numba.prange`` iteration per
trial, each calling ``np.dot`` on contiguous float64 slices — which
dispatches to the very BLAS kernel numpy's broadcast ``np.matmul``
uses, so every output slice stays *bit-identical* to the numpy backend
(the contract the kernels test suite enforces).

Elementwise transforms (``exp``/``log1p``/``where``) deliberately stay
on the inherited numpy implementations: numpy's SIMD transcendental
loops and libm (what numba would compile to) may disagree in the last
ulp, and the backend knob must never change persisted bytes.

numba is imported lazily on first use; constructing the backend without
numba installed raises :class:`~repro.errors.ConfigurationError` (the
``perf`` extra provides it).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..errors import ConfigurationError
from .backend import ComputeBackend, _module_available

__all__ = ["NumbaBackend"]


def _compile_kernels() -> Tuple[object, object]:
    """Build the JIT trial-loop kernels (one import + compile per process)."""
    import numba

    @numba.njit(parallel=True, cache=True)
    def matmul_shared(x, w):
        trials = w.shape[0]
        out = np.empty((trials, x.shape[0], w.shape[2]), dtype=np.float64)
        for t in numba.prange(trials):
            out[t] = np.dot(x, w[t])
        return out

    @numba.njit(parallel=True, cache=True)
    def matmul_pertrial(x, w):
        trials = w.shape[0]
        out = np.empty((trials, x.shape[1], w.shape[2]), dtype=np.float64)
        for t in numba.prange(trials):
            out[t] = np.dot(x[t], w[t])
        return out

    return matmul_shared, matmul_pertrial


class NumbaBackend(ComputeBackend):
    """JIT-compiled trial-parallel kernels (requires the ``perf`` extra)."""

    name = "numba"

    def __init__(self) -> None:
        if not _module_available("numba"):
            raise ConfigurationError(
                "NumbaBackend requires numba; install the perf extra "
                "(pip install 'repro[perf]')"
            )
        self._shared: Optional[object] = None
        self._pertrial: Optional[object] = None

    def _ensure(self) -> None:
        if self._shared is None:
            self._shared, self._pertrial = _compile_kernels()

    def matmul(self, x: np.ndarray, w: np.ndarray) -> np.ndarray:
        x = np.asarray(x)
        w = np.asarray(w)
        # The JIT path covers the hot Monte-Carlo shapes: float64 trial
        # stacks with shared (batch, rows) or per-trial (T, batch, rows)
        # inputs.  Anything else (1-D vectors, exotic dtypes, 2-D w) is
        # cold-path and runs through numpy unchanged.
        if (
            w.ndim != 3
            or x.dtype != np.float64
            or w.dtype != np.float64
            or x.ndim not in (2, 3)
        ):
            return np.matmul(x, w)
        self._ensure()
        xc = np.ascontiguousarray(x)
        wc = np.ascontiguousarray(w)
        if x.ndim == 2:
            return self._shared(xc, wc)  # type: ignore[misc]
        return self._pertrial(xc, wc)  # type: ignore[misc]
