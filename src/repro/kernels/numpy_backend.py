"""The default numpy backend — byte-identical to the reference path.

Every method is literally the numpy expression the pre-backend code
ran, so routing the stacked kernels through this backend is a no-op:
fingerprints, persisted store bytes and stdout cannot change.  numpy
evaluates the broadcast ``matmul`` slice-by-slice with the same 2-D
GEMM kernel used for a lone trial, which is what makes stacked results
bit-identical to serial per-trial evaluation (the PR 4 contract).
"""

from __future__ import annotations

import numpy as np

from .backend import ComputeBackend

__all__ = ["NumpyBackend"]


class NumpyBackend(ComputeBackend):
    """Pure-numpy kernels (the reproducibility reference)."""

    name = "numpy"

    def matmul(self, x: np.ndarray, w: np.ndarray) -> np.ndarray:
        return np.matmul(x, w)
