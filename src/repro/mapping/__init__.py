"""Neural-network → crossbar mapping compiler and executor.

Bridges the trained numpy networks and the PIM hardware models:

* :mod:`repro.mapping.weight_mapping` — signed weights → differential
  conductance pairs (positive/negative column groups, digital
  subtraction), bias folding, scale bookkeeping.
* :mod:`repro.mapping.tiling` — matrices larger than one crossbar are
  split into tiles; row-tile partials sum, column tiles concatenate.
* :mod:`repro.mapping.backends` — pluggable hardware backends: ideal,
  ReSiPE (exact circuit equations, Monte-Carlo process variation), or
  any Table II baseline design.
* :mod:`repro.mapping.compiler` — compiles a Sequential model into
  programmed tiles.
* :mod:`repro.mapping.executor` — runs inference through the mapped
  hardware with activation-scale calibration (the Fig. 7 pipeline).
* :mod:`repro.mapping.stacked` — trial-stacked network views: ``T``
  Monte-Carlo realizations collapse into ``(T, rows, cols)`` tile
  tensors so variation sweeps run all trials in one broadcast kernel.
* :mod:`repro.mapping.remap` — detect-and-remap graceful degradation:
  probe-flagged columns move onto spare column strips (or an exact
  software fallback) so a faulty chip keeps classifying.
"""

from .weight_mapping import DifferentialWeights, map_signed_weights
from .tiling import TileGrid, tile_matrix
from .backends import (
    HardwareBackend,
    ProgrammedTile,
    IdealBackend,
    ReSiPEBackend,
    DesignBackend,
    StackedTile,
    stack_tiles,
)
from .compiler import MappedLayer, MappedNetwork, compile_network
from .executor import PIMExecutor
from .stacked import StackedMappedLayer, StackedMappedNetwork, stack_networks
from .deployment import DeploymentReport, LayerDeployment, plan_deployment
from .bit_slicing import BitSlicingBackend, slice_weights
from .remap import (
    PatchedLayer,
    RemapRecord,
    RemapResult,
    detect_and_remap,
    spare_columns_for,
)

__all__ = [
    "DifferentialWeights",
    "map_signed_weights",
    "TileGrid",
    "tile_matrix",
    "HardwareBackend",
    "ProgrammedTile",
    "IdealBackend",
    "ReSiPEBackend",
    "DesignBackend",
    "StackedTile",
    "stack_tiles",
    "MappedLayer",
    "MappedNetwork",
    "compile_network",
    "PIMExecutor",
    "StackedMappedLayer",
    "StackedMappedNetwork",
    "stack_networks",
    "DeploymentReport",
    "LayerDeployment",
    "plan_deployment",
    "BitSlicingBackend",
    "slice_weights",
    "PatchedLayer",
    "RemapRecord",
    "RemapResult",
    "detect_and_remap",
    "spare_columns_for",
]
