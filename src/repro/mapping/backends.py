"""Pluggable hardware backends for the mapping executor.

A backend programs weight tiles in ``[0, 1]`` and returns
:class:`ProgrammedTile` objects that compute ``x @ w`` through the
hardware's signal chain.  Monte-Carlo process variation (the Fig. 7
protocol) happens at tile level via :meth:`ProgrammedTile.perturbed`.

Backends provided:

* :class:`IdealBackend` — exact numpy matmul (the software reference).
* :class:`ReSiPEBackend` — the single-spiking engine with exact circuit
  equations; supports variation and saturation compensation.
* :class:`DesignBackend` — any Table II :class:`~repro.baselines.base.PIMDesign`
  functional model (quantisation effects only; variation is a no-op).
"""

from __future__ import annotations

import abc
import dataclasses
from typing import Optional

import numpy as np

from ..baselines.base import PIMDesign
from ..config import CircuitParameters
from ..core.engine import ReSiPEEngine
from ..core.mvm import MVMMode
from ..errors import MappingError
from ..reram.crossbar import StackedCrossbar
from ..reram.device import DeviceSpec

__all__ = ["HardwareBackend", "ProgrammedTile", "IdealBackend",
           "ReSiPEBackend", "DesignBackend", "StackedTile", "stack_tiles"]


class ProgrammedTile(abc.ABC):
    """One programmed crossbar tile."""

    @abc.abstractmethod
    def matmul(self, x: np.ndarray) -> np.ndarray:
        """Compute ``x @ w`` through the hardware (``x`` in ``[0, 1]``)."""

    @abc.abstractmethod
    def perturbed(self, rng: np.random.Generator, sigma: float) -> "ProgrammedTile":
        """A Monte-Carlo clone with conductance variation ``sigma``."""

    def aged(
        self, retention, elapsed: float, rng: "np.random.Generator | None" = None
    ) -> "ProgrammedTile":
        """A clone after ``elapsed`` seconds of retention drift.

        Tiles whose backend has no device state (ideal / baseline
        functional models) return themselves.
        """
        return self

    def faulted(
        self, injector, rng: np.random.Generator
    ) -> "ProgrammedTile":
        """A clone disturbed by a
        :class:`~repro.faults.injectors.FaultInjector`.

        Tiles without device state (baseline functional models) return
        themselves — they model quantisation, not cell placement.
        """
        return self


class HardwareBackend(abc.ABC):
    """Factory for programmed tiles."""

    @abc.abstractmethod
    def program(self, weights01: np.ndarray) -> ProgrammedTile:
        """Program a tile with weights in ``[0, 1]``."""

    @property
    @abc.abstractmethod
    def max_tile_shape(self) -> tuple:
        """Largest ``(rows, cols)`` a single tile may have."""


# ----------------------------------------------------------------------
# Ideal software backend
# ----------------------------------------------------------------------
class _IdealTile(ProgrammedTile):
    def __init__(self, weights: np.ndarray) -> None:
        self._w = np.asarray(weights, dtype=float)

    def matmul(self, x: np.ndarray) -> np.ndarray:
        return np.asarray(x, dtype=float) @ self._w

    def perturbed(self, rng: np.random.Generator, sigma: float) -> "_IdealTile":
        if sigma == 0:
            return self
        return _IdealTile(self._w * rng.normal(1.0, sigma, self._w.shape))

    def faulted(self, injector, rng: np.random.Generator) -> "_IdealTile":
        # spec=None: the injector operates on the normalised unit window.
        return _IdealTile(injector.apply(self._w, rng, spec=None))


class IdealBackend(HardwareBackend):
    """Exact numpy matmul; optionally with unbounded tile size."""

    def __init__(self, max_rows: int = 32, max_cols: int = 32) -> None:
        if max_rows < 1 or max_cols < 1:
            raise MappingError("tile dimensions must be >= 1")
        self._shape = (max_rows, max_cols)

    @property
    def max_tile_shape(self) -> tuple:
        return self._shape

    def program(self, weights01: np.ndarray) -> ProgrammedTile:
        return _IdealTile(weights01)


# ----------------------------------------------------------------------
# ReSiPE backend
# ----------------------------------------------------------------------
class _ReSiPETile(ProgrammedTile):
    """Wraps one or more redundant :class:`ReSiPEEngine` copies,
    correcting the conductance-window offset so the tile computes
    against nominal ``[0, 1]`` weights.

    With ``redundancy > 1`` the same weights are programmed into R
    independent engines and outputs are averaged, cutting the standard
    deviation of device-variation error by √R (the mapping-redundancy
    robustness extension; see the redundancy ablation bench).
    """

    def __init__(self, engines: list) -> None:
        if not engines:
            raise MappingError("a tile needs at least one engine")
        self._engines = engines
        spec = engines[0].array.spec
        self._offset_ratio = spec.g_min / spec.g_max

    def matmul(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        y = np.mean(
            [np.asarray(e.mvm_values(x), dtype=float) for e in self._engines],
            axis=0,
        )
        x_sum = x.sum(axis=-1)
        corrected = (y - np.expand_dims(x_sum, -1) * self._offset_ratio) / (
            1.0 - self._offset_ratio
        )
        return corrected

    def perturbed(self, rng: np.random.Generator, sigma: float) -> "_ReSiPETile":
        if sigma == 0:
            return self
        return _ReSiPETile([e.perturbed(rng, sigma) for e in self._engines])

    def aged(
        self, retention, elapsed: float, rng: "np.random.Generator | None" = None
    ) -> "_ReSiPETile":
        if elapsed == 0:
            return self
        return _ReSiPETile(
            [e.aged(retention, elapsed, rng) for e in self._engines]
        )

    def faulted(self, injector, rng: np.random.Generator) -> "_ReSiPETile":
        return _ReSiPETile([e.faulted(injector, rng) for e in self._engines])


@dataclasses.dataclass
class ReSiPEBackend(HardwareBackend):
    """Single-spiking hardware backend.

    Parameters
    ----------
    params:
        Circuit operating point; defaults to the calibrated point (the
        regime the accuracy studies run in — see DESIGN.md §1).
    mode:
        EXACT (non-linear circuit equations, default) or LINEAR.
    spec:
        Device window; defaults to the paper's linear range.
    compensate:
        Apply per-column saturation compensation at decode.
    redundancy:
        Number of independent engine copies per tile whose outputs are
        averaged (1 = the paper's plain mapping).  Costs ``R×`` area and
        energy, buys ``√R`` lower variation error.
    """

    params: Optional[CircuitParameters] = None
    mode: MVMMode = MVMMode.EXACT
    spec: Optional[DeviceSpec] = None
    compensate: bool = False
    redundancy: int = 1

    def __post_init__(self) -> None:
        if self.params is None:
            self.params = CircuitParameters.calibrated()
        if self.spec is None:
            self.spec = DeviceSpec.paper_linear_range()
        if self.redundancy < 1:
            raise MappingError(f"redundancy must be >= 1, got {self.redundancy!r}")

    @property
    def max_tile_shape(self) -> tuple:
        return (self.params.rows, self.params.cols)

    def program(self, weights01: np.ndarray) -> ProgrammedTile:
        w = np.asarray(weights01, dtype=float)
        rows, cols = w.shape
        if rows > self.params.rows or cols > self.params.cols:
            raise MappingError(
                f"tile {w.shape} exceeds crossbar "
                f"{self.params.rows}x{self.params.cols}"
            )
        engines = [
            ReSiPEEngine.from_normalised_weights(
                w, self.params, spec=self.spec, mode=self.mode,
                compensate=self.compensate,
            )
            for _ in range(self.redundancy)
        ]
        return _ReSiPETile(engines)


# ----------------------------------------------------------------------
# Baseline-design backend
# ----------------------------------------------------------------------
class _DesignTile(ProgrammedTile):
    def __init__(self, design: PIMDesign, weights: np.ndarray) -> None:
        self._design = design
        self._w = np.asarray(weights, dtype=float)

    def matmul(self, x: np.ndarray) -> np.ndarray:
        return np.asarray(self._design.mvm_values(x, self._w), dtype=float)

    def perturbed(self, rng: np.random.Generator, sigma: float) -> "_DesignTile":
        # Baseline functional models capture quantisation, not device
        # placement; variation studies target ReSiPE (Fig. 7).
        return self


class DesignBackend(HardwareBackend):
    """Run tiles through a Table II baseline's functional model.

    The design factory is called per tile shape so each tile gets a
    correctly-sized design instance.
    """

    def __init__(self, design_factory, max_rows: int = 32, max_cols: int = 32) -> None:
        if max_rows < 1 or max_cols < 1:
            raise MappingError("tile dimensions must be >= 1")
        self._factory = design_factory
        self._shape = (max_rows, max_cols)

    @property
    def max_tile_shape(self) -> tuple:
        return self._shape

    def program(self, weights01: np.ndarray) -> ProgrammedTile:
        w = np.asarray(weights01, dtype=float)
        design = self._factory(w.shape[0], w.shape[1])
        if not isinstance(design, PIMDesign):
            raise MappingError("design_factory must return a PIMDesign")
        return _DesignTile(design, w)


# ----------------------------------------------------------------------
# Trial-stacked tiles (the Monte-Carlo fast path)
# ----------------------------------------------------------------------
class StackedTile(abc.ABC):
    """``T`` Monte-Carlo realizations of one tile position, evaluated as
    one broadcast kernel.

    ``matmul`` accepts inputs ``(batch, rows)`` shared by every trial or
    per-trial ``(T, batch, rows)`` and returns ``(T, batch, cols)``.
    Each output slice ``t`` is bit-identical to the corresponding
    per-trial :meth:`ProgrammedTile.matmul` — the contract the serial /
    stacked reproducibility suite enforces.  ``backend`` selects the
    stacked compute kernels (:mod:`repro.kernels`; default numpy) and
    never changes results.
    """

    @property
    @abc.abstractmethod
    def trials(self) -> int:
        """Number of stacked realizations."""

    @abc.abstractmethod
    def matmul(self, x: np.ndarray, backend=None) -> np.ndarray:
        """Compute ``x @ w_t`` for every trial ``t`` at once."""


class _StackedIdealTile(StackedTile):
    def __init__(self, weight_stack: np.ndarray) -> None:
        self._w = np.asarray(weight_stack, dtype=float)

    @property
    def trials(self) -> int:
        return self._w.shape[0]

    def matmul(self, x: np.ndarray, backend=None) -> np.ndarray:
        from ..kernels import get_backend

        return get_backend(backend).matmul(
            np.asarray(x, dtype=float), self._w
        )


class _StackedReSiPETile(StackedTile):
    """Trial stack of a :class:`_ReSiPETile`.

    Per redundancy slot the per-trial engine arrays collapse into one
    :class:`StackedCrossbar`; codec, operating point and output scale
    come from the first trial's engines (Monte-Carlo clones share them
    by construction), so the whole signal chain matches the serial tile
    bit for bit.
    """

    def __init__(self, tiles: list) -> None:
        redundancies = {len(t._engines) for t in tiles}
        if len(redundancies) > 1:
            raise MappingError(
                f"tiles disagree on redundancy: {sorted(redundancies)}"
            )
        self._engines = tiles[0]._engines
        self._stacks = [
            StackedCrossbar.from_arrays([t._engines[r].array for t in tiles])
            for r in range(len(self._engines))
        ]
        spec = self._engines[0].array.spec
        self._offset_ratio = spec.g_min / spec.g_max

    @property
    def trials(self) -> int:
        return self._stacks[0].trials

    def matmul(self, x: np.ndarray, backend=None) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        y = np.mean(
            [
                np.asarray(
                    e.mvm_values_stacked(x, s, backend=backend), dtype=float
                )
                for e, s in zip(self._engines, self._stacks)
            ],
            axis=0,
        )
        x_sum = x.sum(axis=-1)
        return (y - np.expand_dims(x_sum, -1) * self._offset_ratio) / (
            1.0 - self._offset_ratio
        )


class _LoopStackedTile(StackedTile):
    """Fallback stack for backends without a broadcast kernel (baseline
    functional models): per-trial loop with the stacked calling
    convention, so every backend supports ``forward_trials``."""

    def __init__(self, tiles: list) -> None:
        self._tiles = tiles

    @property
    def trials(self) -> int:
        return len(self._tiles)

    def matmul(self, x: np.ndarray, backend=None) -> np.ndarray:
        # ``backend`` is accepted for interface uniformity but unused:
        # baseline functional models have no broadcast kernel to swap.
        x = np.asarray(x, dtype=float)
        if x.ndim == 3:
            return np.stack(
                [tile.matmul(x[t]) for t, tile in enumerate(self._tiles)]
            )
        return np.stack([tile.matmul(x) for tile in self._tiles])


def stack_tiles(tiles) -> StackedTile:
    """Collapse per-trial :class:`ProgrammedTile` clones of one tile
    position into a :class:`StackedTile`.

    Dispatches on the tile type: ideal tiles stack their weight
    matrices, ReSiPE tiles stack conductance tensors per redundancy
    slot, anything else falls back to a per-trial loop.
    """
    tiles = list(tiles)
    if not tiles:
        raise MappingError("cannot stack an empty sequence of tiles")
    first_type = type(tiles[0])
    if any(type(t) is not first_type for t in tiles):
        raise MappingError("cannot stack tiles of mixed backend types")
    if first_type is _IdealTile:
        return _StackedIdealTile(np.stack([t._w for t in tiles]))
    if first_type is _ReSiPETile:
        return _StackedReSiPETile(tiles)
    return _LoopStackedTile(tiles)
