"""Bit-sliced weight mapping for low-precision ReRAM devices.

The paper assumes analog (continuous) conductance programming.  Real
multi-level cells hold only a few stable levels; the standard remedy
(ISAAC-style) is **bit slicing**: quantise each weight to ``B`` bits,
split the code into groups of ``b`` bits, store each group in its own
crossbar column group at ``2^b`` levels, and recombine the partial MVM
results with digital shift-add:

    w = Σ_k scale_k · w_k,     w_k ∈ {0 .. 2^b-1} / (2^b-1)

This module provides the decomposition, a :class:`BitSlicingBackend`
that wraps any inner hardware backend (one engine per slice), and the
exactness guarantee that recombination reproduces the ``B``-bit
quantised weights bit-for-bit.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

import numpy as np

from ..config import CircuitParameters
from ..core.mvm import MVMMode
from ..errors import MappingError
from ..reram.device import DeviceSpec
from .backends import HardwareBackend, ProgrammedTile, ReSiPEBackend

__all__ = ["slice_weights", "BitSlicingBackend"]


def slice_weights(
    weights01: np.ndarray, total_bits: int, bits_per_slice: int
) -> List[Tuple[np.ndarray, float]]:
    """Decompose ``[0, 1]`` weights into per-slice matrices and scales.

    Returns ``[(w_k, scale_k), ...]`` MSB-first with
    ``Q(w) = Σ scale_k · w_k`` exactly, where ``Q`` is ``total_bits``
    uniform quantisation and every ``w_k`` takes one of ``2^b`` values
    in ``[0, 1]``.
    """
    if total_bits < 1 or bits_per_slice < 1:
        raise MappingError("bit widths must be >= 1")
    if bits_per_slice > total_bits:
        raise MappingError(
            f"bits_per_slice ({bits_per_slice}) exceeds total_bits ({total_bits})"
        )
    if total_bits % bits_per_slice:
        raise MappingError(
            f"total_bits ({total_bits}) must be a multiple of "
            f"bits_per_slice ({bits_per_slice})"
        )
    w = np.asarray(weights01, dtype=float)
    if np.any(w < -1e-12) or np.any(w > 1 + 1e-12):
        raise MappingError("weights must lie in [0, 1]")

    full_levels = 2**total_bits - 1
    slice_levels = 2**bits_per_slice - 1
    codes = np.round(np.clip(w, 0, 1) * full_levels).astype(np.int64)

    num_slices = total_bits // bits_per_slice
    slices: List[Tuple[np.ndarray, float]] = []
    for k in range(num_slices):
        shift = bits_per_slice * (num_slices - 1 - k)
        group = (codes >> shift) & slice_levels
        scale = slice_levels * (2**shift) / full_levels
        slices.append((group.astype(float) / slice_levels, scale))
    return slices


class _BitSlicedTile(ProgrammedTile):
    """Shift-add recombination over per-slice inner tiles."""

    def __init__(self, tiles: List[ProgrammedTile], scales: List[float]) -> None:
        if len(tiles) != len(scales) or not tiles:
            raise MappingError("tiles and scales must be non-empty and aligned")
        self._tiles = tiles
        self._scales = scales

    def matmul(self, x: np.ndarray) -> np.ndarray:
        partials = [
            scale * tile.matmul(x)
            for tile, scale in zip(self._tiles, self._scales)
        ]
        return np.sum(partials, axis=0)

    def perturbed(self, rng: np.random.Generator, sigma: float) -> "_BitSlicedTile":
        return _BitSlicedTile(
            [t.perturbed(rng, sigma) for t in self._tiles], list(self._scales)
        )


@dataclasses.dataclass
class BitSlicingBackend(HardwareBackend):
    """Wraps an inner backend with bit-sliced weight storage.

    Parameters
    ----------
    total_bits:
        Weight resolution after quantisation.
    bits_per_slice:
        Bits stored per crossbar slice (must divide ``total_bits``);
        the inner device needs only ``2^bits_per_slice`` levels.
    inner:
        Backend used per slice; defaults to a ReSiPE backend whose
        device window is quantised to ``2^bits_per_slice`` levels.
    """

    total_bits: int = 8
    bits_per_slice: int = 2
    inner: Optional[HardwareBackend] = None

    def __post_init__(self) -> None:
        if self.total_bits < 1 or self.bits_per_slice < 1:
            raise MappingError("bit widths must be >= 1")
        if self.total_bits % self.bits_per_slice:
            raise MappingError("total_bits must be a multiple of bits_per_slice")
        if self.inner is None:
            spec = dataclasses.replace(
                DeviceSpec.paper_linear_range(), levels=2**self.bits_per_slice
            )
            self.inner = ReSiPEBackend(
                params=CircuitParameters.calibrated(),
                mode=MVMMode.EXACT,
                spec=spec,
            )

    @property
    def max_tile_shape(self) -> tuple:
        return self.inner.max_tile_shape

    @property
    def slices_per_weight(self) -> int:
        """Crossbar slices (engines) per logical tile."""
        return self.total_bits // self.bits_per_slice

    def program(self, weights01: np.ndarray) -> ProgrammedTile:
        decomposition = slice_weights(
            weights01, self.total_bits, self.bits_per_slice
        )
        tiles = [self.inner.program(w_k) for w_k, _ in decomposition]
        scales = [scale for _, scale in decomposition]
        return _BitSlicedTile(tiles, scales)
