"""Compile a trained Sequential model onto crossbar hardware.

Every weighted layer (Dense, Conv2D) becomes a :class:`MappedLayer`:
its signed weights (bias folded) are converted to the differential
``[0, 1]`` representation, tiled to the backend's crossbar size, and
programmed through the backend into positive/negative tile banks.
Stateless layers (ReLU, pooling, flatten, dropout) stay in the digital
domain.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple, Union

import numpy as np

from ..errors import MappingError
from ..nn.conv import Conv2D
from ..nn.layers import Dense, Layer
from ..nn.model import Sequential
from .backends import HardwareBackend, ProgrammedTile
from .tiling import TileGrid, tile_matrix
from .weight_mapping import DifferentialWeights, map_signed_weights

__all__ = ["MappedLayer", "MappedNetwork", "compile_network"]


@dataclasses.dataclass
class MappedLayer:
    """One weighted layer programmed onto hardware tiles.

    Attributes
    ----------
    source:
        The original Dense/Conv2D layer (for geometry and naming).
    diff:
        The differential weight representation (bias row included).
    pos_grid / neg_grid:
        Tile grids of the two polarities.
    pos_tiles / neg_tiles:
        ``tiles[i][j]`` programmed hardware for each grid cell.
    gain:
        Scalar output-gain correction fitted at calibration time
        (1.0 until calibrated).
    """

    source: Union[Dense, Conv2D]
    diff: DifferentialWeights
    pos_grid: TileGrid
    neg_grid: TileGrid
    pos_tiles: List[List[ProgrammedTile]]
    neg_tiles: List[List[ProgrammedTile]]
    gain: float = 1.0

    @property
    def name(self) -> str:
        return self.source.name

    @property
    def num_tiles(self) -> int:
        """Total crossbars used by this layer (both polarities)."""
        return self.pos_grid.num_tiles + self.neg_grid.num_tiles

    def matmul(self, x01: np.ndarray) -> np.ndarray:
        """Signed product ``x01 @ W_signed`` through the tile banks.

        ``x01`` must already be normalised into ``[0, 1]`` and must NOT
        include the bias input — it is prepended here when the layer has
        a folded bias row (driven at the executor-provided level via
        :meth:`matmul_with_bias_level`).
        """
        return self.matmul_with_bias_level(x01, bias_level=1.0)

    def matmul_with_bias_level(self, x01: np.ndarray, bias_level: float) -> np.ndarray:
        """Like :meth:`matmul` but drives the folded bias row at
        ``bias_level`` (the executor uses ``1/activation_scale`` so the
        bias is correctly scaled relative to normalised activations)."""
        x01 = np.asarray(x01, dtype=float)
        if self.diff.has_bias_row:
            if not 0 <= bias_level <= 1:
                raise MappingError(
                    f"bias level must be in [0, 1], got {bias_level!r}"
                )
            ones_shape = x01.shape[:-1] + (1,)
            x01 = np.concatenate(
                [np.full(ones_shape, bias_level), x01], axis=-1
            )
        pos = self.pos_grid.matmul_through(
            x01, lambda xb, i, j: self.pos_tiles[i][j].matmul(xb)
        )
        neg = self.neg_grid.matmul_through(
            x01, lambda xb, i, j: self.neg_tiles[i][j].matmul(xb)
        )
        return self.gain * self.diff.scale * (pos - neg)

    def _with_tiles(self, clone_tile) -> "MappedLayer":
        """A clone whose every tile is ``clone_tile(tile)``; all other
        attributes (grids, gain, calibration) are shared — the single
        place tile-level Monte-Carlo clones are built, so new clone
        kinds cannot silently drop attributes."""
        return dataclasses.replace(
            self,
            pos_tiles=[[clone_tile(t) for t in row] for row in self.pos_tiles],
            neg_tiles=[[clone_tile(t) for t in row] for row in self.neg_tiles],
        )

    def perturbed(self, rng: np.random.Generator, sigma: float) -> "MappedLayer":
        """A Monte-Carlo clone with per-tile conductance variation."""
        return self._with_tiles(lambda t: t.perturbed(rng, sigma))

    def aged(self, retention, elapsed: float, rng=None) -> "MappedLayer":
        """A clone after ``elapsed`` seconds of retention drift."""
        return self._with_tiles(lambda t: t.aged(retention, elapsed, rng))

    def faulted(self, injector, rng: np.random.Generator) -> "MappedLayer":
        """A clone disturbed by a
        :class:`~repro.faults.injectors.FaultInjector` (stuck-at,
        drift, wear, or any composition)."""
        return self._with_tiles(lambda t: t.faulted(injector, rng))


@dataclasses.dataclass
class MappedNetwork:
    """A model compiled onto hardware.

    ``stages`` parallels the model's layer list: weighted layers carry
    their :class:`MappedLayer`, all others ``None`` (executed in software).
    """

    model: Sequential
    stages: List[Optional[MappedLayer]]

    def mapped_layers(self) -> List[MappedLayer]:
        """All hardware-mapped layers in order."""
        return [s for s in self.stages if s is not None]

    def total_tiles(self) -> int:
        """Total crossbars consumed by the whole network."""
        return sum(layer.num_tiles for layer in self.mapped_layers())

    def _with_stages(self, clone_stage) -> "MappedNetwork":
        """A clone whose every mapped stage is ``clone_stage(stage)``
        (software stages stay ``None``)."""
        return MappedNetwork(
            model=self.model,
            stages=[
                clone_stage(s) if s is not None else None
                for s in self.stages
            ],
        )

    def perturbed(self, rng: np.random.Generator, sigma: float) -> "MappedNetwork":
        """Monte-Carlo clone of every mapped layer."""
        return self._with_stages(lambda s: s.perturbed(rng, sigma))

    def aged(self, retention, elapsed: float, rng=None) -> "MappedNetwork":
        """Clone of every mapped layer after retention drift."""
        return self._with_stages(lambda s: s.aged(retention, elapsed, rng))

    def faulted(self, injector, rng: np.random.Generator) -> "MappedNetwork":
        """Clone of every mapped layer under ``injector``'s defects."""
        return self._with_stages(lambda s: s.faulted(injector, rng))


def _program_grid(
    grid: TileGrid, backend: HardwareBackend
) -> List[List[ProgrammedTile]]:
    return [[backend.program(tile) for tile in row] for row in grid.tiles]


def compile_network(
    model: Sequential,
    backend: HardwareBackend,
    clip_percentile: float = 99.5,
) -> MappedNetwork:
    """Compile every weighted layer of ``model`` onto ``backend`` tiles.

    ``clip_percentile`` controls the per-layer weight normalisation
    (see :func:`repro.mapping.weight_mapping.map_signed_weights`); the
    default clips the heavy tail so the weight bulk uses more of the
    conductance window, which measurably improves process-variation
    robustness.
    """
    max_rows, max_cols = backend.max_tile_shape
    stages: List[Optional[MappedLayer]] = []
    for layer in model:
        if isinstance(layer, (Dense, Conv2D)):
            stages.append(
                _compile_layer(layer, backend, max_rows, max_cols, clip_percentile)
            )
        else:
            stages.append(None)
    if not any(stage is not None for stage in stages):
        raise MappingError("model has no weighted layers to map")
    return MappedNetwork(model=model, stages=stages)


def _compile_layer(
    layer: Union[Dense, Conv2D],
    backend: HardwareBackend,
    max_rows: int,
    max_cols: int,
    clip_percentile: float,
) -> MappedLayer:
    weights = layer.weight.value
    bias = layer.bias.value if layer.bias is not None else None
    diff = map_signed_weights(weights, bias, clip_percentile=clip_percentile)
    pos_grid = tile_matrix(diff.positive, max_rows, max_cols)
    neg_grid = tile_matrix(diff.negative, max_rows, max_cols)
    return MappedLayer(
        source=layer,
        diff=diff,
        pos_grid=pos_grid,
        neg_grid=neg_grid,
        pos_tiles=_program_grid(pos_grid, backend),
        neg_tiles=_program_grid(neg_grid, backend),
    )
