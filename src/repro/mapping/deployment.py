"""Chip-level deployment model: a whole network on ReSiPE silicon.

The paper evaluates one engine (Table II) and network accuracy
(Fig. 7); a deployer also needs the *chip* view: how many crossbar
tiles a network consumes, the silicon area, the energy per inference
and the achievable frame rate under the two-slice pipeline.  This
module derives all of that from a compiled :class:`MappedNetwork` and
the :class:`~repro.core.power.ReSiPEPowerModel`:

* every programmed tile is one ReSiPE engine (differential mapping
  means two tile banks per layer);
* a Dense layer performs 1 MVM per input sample; a Conv2D layer
  performs one MVM per output position (its im2col row count);
* positions stream through a layer's tiles back to back
  (II = 2 slices), and layers overlap sample-to-sample per
  :func:`repro.core.pipeline.schedule_pipeline`.
"""

from __future__ import annotations

import dataclasses
import json
import math
from typing import List, Optional

from ..config import CircuitParameters
from ..core.power import ReSiPEPowerModel
from ..core.pipeline import schedule_pipeline
from ..errors import ArtifactError, MappingError
from ..store.atomic import atomic_write_json
from ..nn.conv import Conv2D
from ..nn.layers import Dense
from ..analysis.tables import render_table
from .compiler import MappedNetwork
from .remap import spare_columns_for

__all__ = ["LayerDeployment", "DeploymentReport", "plan_deployment"]


@dataclasses.dataclass(frozen=True)
class LayerDeployment:
    """Deployment figures for one mapped layer.

    Attributes
    ----------
    name:
        Layer name.
    tiles:
        Crossbar tiles consumed (both polarities).
    mvms_per_input:
        Sequential MVM launches per input sample (1 for Dense, the
        output-position count for Conv2D).
    occupancy_slices:
        Slices this layer's engines are busy per input sample.
    """

    name: str
    tiles: int
    mvms_per_input: int
    occupancy_slices: int


@dataclasses.dataclass(frozen=True)
class DeploymentReport:
    """Whole-network deployment summary.

    Attributes
    ----------
    network_name:
        The model's name.
    layers:
        Per-layer figures.
    total_tiles:
        Crossbars on the chip.
    area:
        Total silicon area (m²).
    average_power:
        Chip power while streaming inferences (watts).
    energy_per_inference:
        Joules per classified sample.
    latency_per_inference:
        Pipeline-fill latency for one sample (seconds).
    throughput:
        Steady-state inferences per second.
    spare_fraction:
        Per-layer spare-column budget reserved for fault remapping
        (fraction of each layer's logical columns; 0 = no reserve).
    spare_tiles:
        Crossbar tiles reserved to host the spare columns (both
        polarities), included in :attr:`area`.
    remap_events:
        Structured log of detect-and-remap decisions applied to this
        deployment (see :meth:`repro.mapping.remap.RemapResult.events`);
        empty until a repair pass runs.
    """

    network_name: str
    layers: List[LayerDeployment]
    total_tiles: int
    area: float
    average_power: float
    energy_per_inference: float
    latency_per_inference: float
    throughput: float
    spare_fraction: float = 0.0
    spare_tiles: int = 0
    remap_events: List[dict] = dataclasses.field(default_factory=list)

    def render(self) -> str:
        """ASCII deployment table."""
        rows = [
            [l.name, l.tiles, l.mvms_per_input, l.occupancy_slices]
            for l in self.layers
        ]
        table = render_table(
            ["layer", "tiles", "MVMs/input", "busy slices/input"],
            rows,
            title=f"Deployment — {self.network_name}",
        )
        summary_lines = [
            f"total tiles          : {self.total_tiles}",
            f"area                 : {self.area * 1e6:.4f} mm^2",
            f"average power        : {self.average_power * 1e3:.2f} mW",
            f"energy / inference   : {self.energy_per_inference * 1e9:.2f} nJ",
            f"latency / inference  : {self.latency_per_inference * 1e6:.2f} us",
            f"throughput           : {self.throughput:.0f} inferences/s",
        ]
        if self.spare_tiles or self.spare_fraction:
            summary_lines.append(
                f"spare tiles          : {self.spare_tiles} "
                f"({self.spare_fraction:.0%} column reserve)"
            )
        if self.remap_events:
            spares = sum(1 for e in self.remap_events
                         if e.get("action") == "spare")
            soft = sum(1 for e in self.remap_events
                       if e.get("action") == "software")
            summary_lines.append(
                f"remap log            : {spares} column(s) on spares, "
                f"{soft} in software fallback"
            )
        return table + "\n" + "\n".join(summary_lines)

    def with_remap_log(self, events: List[dict]) -> "DeploymentReport":
        """A copy carrying a detect-and-remap decision log."""
        return dataclasses.replace(self, remap_events=list(events))

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serialisable view (inverse of :meth:`from_dict`)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "DeploymentReport":
        """Rebuild a report saved by :meth:`to_dict`."""
        try:
            layers = [LayerDeployment(**l) for l in payload["layers"]]
            return cls(**{**payload, "layers": layers})
        except (KeyError, TypeError) as exc:
            raise ArtifactError(
                f"deployment report payload is malformed: {exc}"
            ) from exc

    def save(self, path: str) -> None:
        """Persist the report as JSON, atomically."""
        atomic_write_json(path, self.to_dict())

    @classmethod
    def load(cls, path: str) -> "DeploymentReport":
        """Load a report saved by :meth:`save`.

        Raises :class:`~repro.errors.ArtifactError` on a missing,
        unreadable, or malformed file.
        """
        try:
            with open(path) as fh:
                payload = json.load(fh)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ArtifactError(
                f"cannot read deployment report from {path!r}: {exc}"
            ) from exc
        if not isinstance(payload, dict):
            raise ArtifactError(
                f"deployment report {path!r} is not a JSON object"
            )
        return cls.from_dict(payload)


def plan_deployment(
    network: MappedNetwork,
    params: Optional[CircuitParameters] = None,
    input_hw: Optional[tuple] = None,
    spare_fraction: float = 0.0,
) -> DeploymentReport:
    """Derive the chip-level deployment of a compiled network.

    Parameters
    ----------
    network:
        The compiled model.
    params:
        Engine operating point (defaults to the paper-literal point, the
        one Table II budgets are calibrated at).
    input_hw:
        ``(H, W)`` of the model input, required when the model contains
        Conv2D layers (spatial sizes are traced through convs/pools).
    spare_fraction:
        Fraction of each layer's logical columns to reserve as spare
        capacity for fault remapping (see
        :func:`repro.mapping.remap.detect_and_remap`).  The reserved
        tiles are counted in the chip area but draw no compute energy
        until a remap activates them.
    """
    p = params if params is not None else CircuitParameters.paper()
    engine = ReSiPEPowerModel(p)
    engine_report = engine.budget()

    # Trace spatial dimensions through the network to count conv MVMs.
    spatial = input_hw
    layers: List[LayerDeployment] = []
    spare_tiles = 0
    for layer, stage in zip(network.model, network.stages):
        if stage is not None:
            # Spare reserve: width-1 column strips per row band and
            # polarity, packed into crossbar tiles.
            spare_cols = spare_columns_for(stage.diff.cols, spare_fraction)
            if spare_cols:
                row_bands = math.ceil(stage.diff.rows / p.rows)
                spare_tiles += 2 * row_bands * math.ceil(spare_cols / p.cols)
            source = stage.source
            if isinstance(source, Dense):
                mvms = 1
            else:  # Conv2D
                if spatial is None:
                    raise MappingError(
                        "input_hw is required for models with Conv2D layers"
                    )
                h = (spatial[0] + 2 * source.pad - source.kernel) // source.stride + 1
                w = (spatial[1] + 2 * source.pad - source.kernel) // source.stride + 1
                spatial = (h, w)
                mvms = h * w
            layers.append(
                LayerDeployment(
                    name=stage.name,
                    tiles=stage.num_tiles,
                    mvms_per_input=mvms,
                    occupancy_slices=2 * mvms,
                )
            )
        else:
            # Pooling shrinks spatial dims; flatten drops them.
            kind = type(layer).__name__
            if spatial is not None and kind in ("MaxPool2D", "AvgPool2D"):
                spatial = (spatial[0] // layer.kernel, spatial[1] // layer.kernel)
            elif kind == "Flatten":
                spatial = None
    if not layers:
        raise MappingError("network has no mapped layers")

    total_tiles = sum(l.tiles for l in layers)
    area = (total_tiles + spare_tiles) * engine_report.total_area

    # Per-inference work: every tile of a layer fires once per MVM.
    tile_mvms = sum(l.tiles * l.mvms_per_input for l in layers)
    energy_per_mvm = engine_report.total_power * engine.latency
    energy = tile_mvms * energy_per_mvm

    # Latency: the slowest layer sets the initiation interval (its
    # positions stream back to back); cross-layer overlap follows the
    # two-slice pipeline.
    bottleneck_slices = max(l.occupancy_slices for l in layers)
    pipeline = schedule_pipeline(len(layers), 1, p.slice_length)
    fill_slices = pipeline.sample_latency_slices
    latency = (fill_slices + bottleneck_slices - 2) * p.slice_length
    interval = bottleneck_slices * p.slice_length
    throughput = 1.0 / interval
    average_power = energy * throughput

    return DeploymentReport(
        network_name=network.model.name,
        layers=layers,
        total_tiles=total_tiles,
        area=area,
        average_power=average_power,
        energy_per_inference=energy,
        latency_per_inference=latency,
        throughput=throughput,
        spare_fraction=spare_fraction,
        spare_tiles=spare_tiles,
    )
