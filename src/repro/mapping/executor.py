"""Inference through mapped hardware (the Fig. 7 pipeline).

:class:`PIMExecutor` runs a compiled network end to end:

* weighted layers execute on their programmed tiles;
* activations are normalised into the hardware's ``[0, 1]`` input range
  with per-layer scales measured on a calibration batch (standard
  post-training calibration, cf. the DL-RSIM methodology of ref [21]);
* folded biases are driven at ``1/scale`` so the affine algebra is
  exact;
* an optional per-layer scalar gain is least-squares fitted against the
  software reference on the calibration batch, absorbing the systematic
  part of the circuit non-linearity (the random part — process
  variation — is what Fig. 7 measures);
* everything else (ReLU, pooling, flatten) runs in the digital domain.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import ConfigurationError, MappingError, ShapeError
from ..nn.conv import Conv2D, im2col
from ..nn.layers import Dense
from ..nn.model import Sequential
from .compiler import MappedLayer, MappedNetwork
from .stacked import StackedMappedLayer, StackedMappedNetwork, stack_networks

__all__ = ["PIMExecutor"]


class PIMExecutor:
    """Runs a :class:`MappedNetwork` on hardware backends.

    Parameters
    ----------
    network:
        The compiled network.
    calibration_x:
        A representative input batch used to measure per-layer
        activation scales (and gains when ``calibrate_gain``).
    calibrate_gain:
        Fit a scalar output gain per mapped layer against the software
        reference.
    scale_margin:
        Headroom multiplier on the measured activation ceilings, so
        inference activations slightly above the calibration batch's
        maximum are not clipped (standard post-training-calibration
        practice).
    """

    def __init__(
        self,
        network: MappedNetwork,
        calibration_x: np.ndarray,
        calibrate_gain: bool = True,
        scale_margin: float = 1.25,
    ) -> None:
        if scale_margin < 1.0:
            raise MappingError(f"scale margin must be >= 1, got {scale_margin!r}")
        self.network = network
        self.scale_margin = scale_margin
        calibration_x = np.asarray(calibration_x, dtype=float)
        if calibration_x.shape[0] < 1:
            raise MappingError("calibration batch must be non-empty")
        self.mvm_launches: Dict[str, int] = {}
        self.activation_scales = self._measure_activation_scales(calibration_x)
        if calibrate_gain:
            self._fit_gains(calibration_x)
        self.reset_stats()

    # ------------------------------------------------------------------
    # Calibration
    # ------------------------------------------------------------------
    def _measure_activation_scales(self, x: np.ndarray) -> Dict[str, float]:
        """Software forward pass recording each mapped layer's input
        ceiling (at least 1 so first-layer inputs pass through)."""
        scales: Dict[str, float] = {}
        activation = x
        for layer, stage in zip(self.network.model, self.network.stages):
            if stage is not None:
                peak = float(np.max(np.abs(activation))) if activation.size else 1.0
                scales[stage.name] = max(1.0, peak * self.scale_margin)
            activation = layer.forward(activation, training=False)
        return scales

    def _fit_gains(self, x: np.ndarray) -> None:
        """Per-layer scalar gain: least squares of software reference on
        hardware output, layer by layer (software activations feed both
        paths so fits are independent)."""
        activation = x
        for layer, stage in zip(self.network.model, self.network.stages):
            if stage is not None:
                reference = layer.forward(activation, training=False)
                stage.gain = 1.0
                hardware = self._run_mapped(stage, activation)
                num = float((hardware * reference).sum())
                den = float((hardware * hardware).sum())
                if den > 0 and num > 0:
                    stage.gain = num / den
                activation = reference
            else:
                activation = layer.forward(activation, training=False)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _run_mapped(self, stage: MappedLayer, activation: np.ndarray) -> np.ndarray:
        """One weighted layer on hardware, handling Dense vs Conv."""
        scale = self.activation_scales[stage.name]
        bias_level = 1.0 / scale
        layer = stage.source
        if isinstance(layer, Dense):
            x01 = np.clip(np.asarray(activation, dtype=float) / scale, 0.0, 1.0)
            self._count_launches(stage, x01.shape[0] if x01.ndim > 1 else 1)
            return scale * stage.matmul_with_bias_level(x01, bias_level)
        if isinstance(layer, Conv2D):
            x = np.asarray(activation, dtype=float)
            if x.ndim != 4:
                raise ShapeError(f"{layer.name}: expected (N, C, H, W), got {x.shape}")
            cols, (h_out, w_out) = im2col(x, layer.kernel, layer.stride, layer.pad)
            x01 = np.clip(cols / scale, 0.0, 1.0)
            self._count_launches(stage, x01.shape[0])
            flat = scale * stage.matmul_with_bias_level(x01, bias_level)
            n = x.shape[0]
            return flat.reshape(n, h_out, w_out, layer.out_channels).transpose(
                0, 3, 1, 2
            )
        raise MappingError(f"unsupported mapped layer type {type(layer).__name__}")

    # ------------------------------------------------------------------
    # Hardware-activity instrumentation
    # ------------------------------------------------------------------
    def _count_launches(self, stage: MappedLayer, vectors: int) -> None:
        self.mvm_launches[stage.name] = (
            self.mvm_launches.get(stage.name, 0) + vectors * stage.num_tiles
        )

    def reset_stats(self) -> None:
        """Zero the per-layer tile-MVM launch counters."""
        self.mvm_launches = {}

    def stats(self) -> Dict[str, int]:
        """Per-layer tile-MVM launches since the last reset.

        One launch = one input vector through one physical crossbar
        tile — the unit the engine energy model prices.
        """
        return dict(self.mvm_launches)

    def total_mvm_launches(self) -> int:
        """Total tile-MVM launches since the last reset."""
        return sum(self.mvm_launches.values())

    def energy_estimate(self, power_model) -> float:
        """Energy of the counted activity (joules) under a
        :class:`repro.core.power.ReSiPEPowerModel`."""
        per_mvm = power_model.power() * power_model.latency
        return self.total_mvm_launches() * per_mvm

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Full forward pass with weighted layers on hardware."""
        activation = np.asarray(x, dtype=float)
        for layer, stage in zip(self.network.model, self.network.stages):
            if stage is not None:
                activation = self._run_mapped(stage, activation)
            else:
                activation = layer.forward(activation, training=False)
        return activation

    def predict(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Class predictions through the hardware.

        A zero-row input returns a zero-length prediction array (the
        serving coalescer's flush-on-idle path submits empty batches).
        """
        x = np.asarray(x, dtype=float)
        if x.shape[0] == 0:
            return np.empty(0, dtype=np.intp)
        outputs = [
            self.forward(x[i : i + batch_size]) for i in range(0, x.shape[0], batch_size)
        ]
        return np.argmax(np.concatenate(outputs, axis=0), axis=-1)

    def accuracy(self, x: np.ndarray, labels: np.ndarray, batch_size: int = 256) -> float:
        """Top-1 accuracy through the hardware."""
        x = np.asarray(x, dtype=float)
        if x.shape[0] == 0:
            raise ConfigurationError(
                "accuracy of an empty evaluation batch is undefined; "
                "pass at least one sample"
            )
        return float(np.mean(self.predict(x, batch_size) == np.asarray(labels)))

    # ------------------------------------------------------------------
    # Trial-stacked execution (the Monte-Carlo fast path)
    # ------------------------------------------------------------------
    def _run_mapped_stacked(
        self, stage: StackedMappedLayer, activation: np.ndarray,
        backend=None,
    ) -> np.ndarray:
        """One weighted layer over all ``T`` trial realizations at once.

        ``activation`` is ``(batch, ...)`` before trials diverge (the
        network input or a software prefix) or ``(T, batch, ...)``
        afterwards; the result always carries the leading trial axis.
        ``backend`` selects the stacked compute kernels
        (:mod:`repro.kernels`; default numpy) and never changes results.
        """
        scale = self.activation_scales[stage.name]
        bias_level = 1.0 / scale
        layer = stage.source
        if isinstance(layer, Dense):
            x01 = np.clip(np.asarray(activation, dtype=float) / scale, 0.0, 1.0)
            self._count_launches(stage, x01.shape[-2] * stage.trials)
            return scale * stage.matmul_with_bias_level(
                x01, bias_level, backend
            )
        if isinstance(layer, Conv2D):
            x = np.asarray(activation, dtype=float)
            if x.ndim == 4:
                # Shared inputs: one im2col feeds every trial.
                cols, (h_out, w_out) = im2col(
                    x, layer.kernel, layer.stride, layer.pad
                )
                n = x.shape[0]
                x01 = np.clip(cols / scale, 0.0, 1.0)
            elif x.ndim == 5:
                # Per-trial inputs: im2col is per-sample, so the merged
                # (T*N) batch lowers to the same rows as T serial calls.
                trials, n = x.shape[:2]
                merged = x.reshape((trials * n,) + x.shape[2:])
                cols, (h_out, w_out) = im2col(
                    merged, layer.kernel, layer.stride, layer.pad
                )
                cols = cols.reshape(trials, cols.shape[0] // trials, -1)
                x01 = np.clip(cols / scale, 0.0, 1.0)
            else:
                raise ShapeError(
                    f"{layer.name}: expected (N, C, H, W) or "
                    f"(T, N, C, H, W), got {x.shape}"
                )
            self._count_launches(stage, x01.shape[-2] * stage.trials)
            flat = scale * stage.matmul_with_bias_level(
                x01, bias_level, backend
            )
            return flat.reshape(
                stage.trials, n, h_out, w_out, layer.out_channels
            ).transpose(0, 1, 4, 2, 3)
        raise MappingError(f"unsupported mapped layer type {type(layer).__name__}")

    def _forward_stacked(
        self, x: np.ndarray, stacked: StackedMappedNetwork, backend=None
    ) -> np.ndarray:
        """Forward pass through a pre-stacked network: ``(T, batch, out)``.

        Software stages run on the merged ``(T*batch, ...)`` activation
        (they are per-sample deterministic), mapped stages on the
        broadcast trial kernels; each output slice ``t`` is bit-identical
        to :meth:`forward` on the serial per-trial clone, at any
        ``backend`` (:mod:`repro.kernels`) choice.
        """
        activation = np.asarray(x, dtype=float)
        has_trials = False
        for layer, stage in zip(stacked.model, stacked.stages):
            if stage is not None:
                activation = self._run_mapped_stacked(
                    stage, activation, backend
                )
                has_trials = True
            elif has_trials:
                trials, batch = activation.shape[:2]
                flat = activation.reshape(
                    (trials * batch,) + activation.shape[2:]
                )
                out = layer.forward(flat, training=False)
                activation = out.reshape((trials, batch) + out.shape[1:])
            else:
                activation = layer.forward(activation, training=False)
        return activation

    def forward_trials(
        self, x: np.ndarray, networks: Sequence[MappedNetwork],
        backend=None,
    ) -> np.ndarray:
        """Forward all per-trial network clones in one stacked pass.

        ``networks`` are Monte-Carlo clones of this executor's network
        (``perturbed``/``aged``/``faulted`` realizations); the result is
        ``(T, batch, out)`` with slice ``t`` bit-identical to running
        ``networks[t]`` serially under this executor's calibration.
        ``backend`` selects the stacked compute kernels
        (:mod:`repro.kernels`; default numpy) and never changes results.
        """
        from ..kernels import get_backend

        return self._forward_stacked(
            x, stack_networks(list(networks)), get_backend(backend)
        )

    def predict_trials(
        self,
        x: np.ndarray,
        networks: Sequence[MappedNetwork],
        batch_size: int = 256,
        backend=None,
    ) -> np.ndarray:
        """Per-trial class predictions, ``(T, n_samples)``.

        A zero-row input returns ``(T, 0)`` without touching the
        hardware kernels, mirroring :meth:`predict`.  ``backend`` is an
        execution knob only — predictions are identical for any choice.
        """
        from ..kernels import get_backend

        x = np.asarray(x, dtype=float)
        if x.shape[0] == 0:
            return np.empty((len(networks), 0), dtype=np.intp)
        be = get_backend(backend)
        stacked = stack_networks(list(networks))
        outputs = [
            self._forward_stacked(x[i : i + batch_size], stacked, be)
            for i in range(0, x.shape[0], batch_size)
        ]
        return np.argmax(np.concatenate(outputs, axis=1), axis=-1)

    def accuracy_trials(
        self,
        x: np.ndarray,
        labels: np.ndarray,
        networks: Sequence[MappedNetwork],
        batch_size: int = 256,
        backend=None,
    ) -> np.ndarray:
        """Per-trial top-1 accuracies, ``(T,)`` — each entry equals the
        serial :meth:`accuracy` of the corresponding clone (at any
        ``backend`` choice)."""
        x = np.asarray(x, dtype=float)
        if x.shape[0] == 0:
            raise ConfigurationError(
                "accuracy of an empty evaluation batch is undefined; "
                "pass at least one sample"
            )
        predictions = self.predict_trials(x, networks, batch_size, backend)
        labels = np.asarray(labels)
        return np.mean(predictions == labels[None, :], axis=-1)

    # ------------------------------------------------------------------
    # Monte-Carlo variation / fault clones
    # ------------------------------------------------------------------
    def _clone_with_network(self, network: MappedNetwork) -> "PIMExecutor":
        """An executor bound to ``network`` that inherits this one's
        calibration (scales, margin) without re-running it.

        The single place clones are assembled — every Monte-Carlo
        flavour (:meth:`perturbed`, :meth:`aged`, :meth:`faulted`, the
        remap path) goes through here, so a new executor attribute
        cannot be silently dropped from some clone kinds.
        """
        clone = object.__new__(PIMExecutor)
        clone.network = network
        clone.activation_scales = dict(self.activation_scales)
        clone.scale_margin = self.scale_margin
        clone.mvm_launches = {}
        return clone

    def perturbed(self, rng: np.random.Generator, sigma: float) -> "PIMExecutor":
        """Clone with conductance variation ``sigma`` on every tile.

        Calibration (scales, gains) is inherited from the pristine
        executor — the Fig. 7 protocol: calibrate once, then devices
        drift.
        """
        return self._clone_with_network(self.network.perturbed(rng, sigma))

    def aged(self, retention, elapsed: float, rng=None) -> "PIMExecutor":
        """Clone whose tiles have drifted for ``elapsed`` seconds under
        ``retention`` (calibration inherited — the chip was calibrated
        when fresh, then left on the shelf)."""
        return self._clone_with_network(self.network.aged(retention, elapsed, rng))

    def faulted(self, injector, rng: np.random.Generator) -> "PIMExecutor":
        """Clone whose tiles carry ``injector``'s defects (stuck-at
        cells, drift, wear, or any
        :class:`~repro.faults.injectors.CompositeInjector` of them).

        Calibration is inherited — the chip was calibrated healthy,
        then the defects struck.  Pair with
        :func:`repro.mapping.remap.detect_and_remap` to probe the
        faulted network and recover through spare columns.
        """
        return self._clone_with_network(self.network.faulted(injector, rng))
