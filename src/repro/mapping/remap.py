"""Detect-and-remap graceful degradation for mapped networks.

Without this module a single stuck-on column silently corrupts every
inference through the layer that owns it.  The recovery flow is the
classic spare-row/column repair of memory BIST, transplanted to the
single-spiking PIM pipeline:

1. **Detect** — a :class:`~repro.faults.probe.HealthProbe` fires known
   calibration vectors through each mapped layer of the (possibly
   faulted) network and compares the response against the pristine
   reference, flagging deviating logical columns.
2. **Remap** — each flagged column (worst first, up to the spare
   budget reserved at :func:`~repro.mapping.deployment.plan_deployment`
   time) is re-programmed onto a spare column strip through the same
   backend.  Spares live on the same faulty silicon, so the fresh
   programming is itself fault-injected and re-probed; a bad spare is
   retried up to ``max_retries`` times.
3. **Degrade, never corrupt** — columns beyond the spare budget, or
   whose spares keep failing, fall back to an explicit software MVM on
   the stored differential weights.  The answer stays correct; only
   the analog speed/energy advantage is lost for those columns, and
   the fallback is recorded so operators can see the degradation.

Everything is returned as a :class:`RemapResult`: a drop-in network
clone (flagged columns served by spares or software) plus a structured
remap log that feeds ``DeploymentReport.remap_events`` and the fault
campaign's trial records.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import MappingError
from ..telemetry import session as _telemetry
from .backends import HardwareBackend
from .compiler import MappedNetwork
from .tiling import TileGrid, tile_matrix

__all__ = [
    "RemapRecord",
    "RemapResult",
    "PatchedLayer",
    "detect_and_remap",
    "spare_columns_for",
]


def spare_columns_for(cols: int, spare_fraction: float) -> int:
    """Spare-column budget for a layer of ``cols`` logical columns."""
    if cols < 1:
        raise MappingError(f"cols must be >= 1, got {cols!r}")
    if not 0 <= spare_fraction <= 1:
        raise MappingError(
            f"spare fraction must be in [0, 1], got {spare_fraction!r}"
        )
    if spare_fraction == 0:
        return 0
    return int(math.ceil(cols * spare_fraction))


def _augment(x: np.ndarray, bias_level: float, has_bias_row: bool) -> np.ndarray:
    """Prepend the folded-bias drive (mirrors ``MappedLayer``)."""
    if not has_bias_row:
        return x
    ones_shape = x.shape[:-1] + (1,)
    return np.concatenate([np.full(ones_shape, bias_level), x], axis=-1)


@dataclasses.dataclass(frozen=True)
class RemapRecord:
    """One recovery decision for one logical column.

    Attributes
    ----------
    layer:
        Owning layer name.
    column:
        Logical output-column index.
    action:
        ``"spare"`` (re-programmed onto a spare strip) or
        ``"software"`` (digital-MVM degraded mode).
    attempts:
        Spare programming attempts consumed (0 when the column went
        straight to software because the budget was exhausted).
    deviation:
        The probe deviation that triggered the recovery.
    """

    layer: str
    column: int
    action: str
    attempts: int
    deviation: float

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


class _ColumnPatch:
    """One logical column re-programmed onto a spare strip.

    The strip reuses the layer's row-band tiling (a width-1 tile per
    row band and polarity) so partial sums accumulate exactly as in
    the original mapping.
    """

    def __init__(
        self,
        column: int,
        pos_grid: TileGrid,
        pos_tiles: List[List],
        neg_grid: TileGrid,
        neg_tiles: List[List],
    ) -> None:
        self.column = column
        self.pos_grid = pos_grid
        self.pos_tiles = pos_tiles
        self.neg_grid = neg_grid
        self.neg_tiles = neg_tiles

    @property
    def num_tiles(self) -> int:
        return self.pos_grid.num_tiles + self.neg_grid.num_tiles

    def output(self, x_aug: np.ndarray, scale: float, gain: float) -> np.ndarray:
        """The patched column's signed output for augmented input."""
        pos = self.pos_grid.matmul_through(
            x_aug, lambda xb, i, j: self.pos_tiles[i][j].matmul(xb)
        )
        neg = self.neg_grid.matmul_through(
            x_aug, lambda xb, i, j: self.neg_tiles[i][j].matmul(xb)
        )
        return gain * scale * (pos - neg)[..., 0]


class PatchedLayer:
    """A mapped layer whose unhealthy columns are served elsewhere.

    Duck-types :class:`~repro.mapping.compiler.MappedLayer` for the
    executor: geometry, naming and tile accounting delegate to the
    wrapped (faulted) base layer; flagged columns are overridden by
    spare-strip hardware or the digital fallback at matmul time.
    """

    def __init__(
        self,
        base,
        patches: Sequence[_ColumnPatch] = (),
        software_cols: Sequence[int] = (),
    ) -> None:
        self.base = base
        self.patches = list(patches)
        self.software_cols = tuple(sorted(set(int(c) for c in software_cols)))
        overlap = set(p.column for p in self.patches) & set(self.software_cols)
        if overlap:
            raise MappingError(
                f"columns {sorted(overlap)} assigned to both spare and "
                f"software paths"
            )
        diff = base.diff
        if self.software_cols:
            signed = diff.scale * (diff.positive - diff.negative)
            self._w_soft = signed[:, list(self.software_cols)]
        else:
            self._w_soft = None

    # -- MappedLayer protocol ------------------------------------------
    @property
    def source(self):
        return self.base.source

    @property
    def diff(self):
        return self.base.diff

    @property
    def gain(self) -> float:
        return self.base.gain

    @property
    def name(self) -> str:
        return self.base.name

    @property
    def num_tiles(self) -> int:
        """Active tiles including the spare strips in use."""
        return self.base.num_tiles + sum(p.num_tiles for p in self.patches)

    def matmul(self, x01: np.ndarray) -> np.ndarray:
        return self.matmul_with_bias_level(x01, bias_level=1.0)

    def matmul_with_bias_level(self, x01: np.ndarray, bias_level: float) -> np.ndarray:
        out = np.asarray(
            self.base.matmul_with_bias_level(x01, bias_level), dtype=float
        )
        if not self.patches and self._w_soft is None:
            return out
        x_aug = _augment(
            np.asarray(x01, dtype=float), bias_level, self.diff.has_bias_row
        )
        for patch in self.patches:
            out[..., patch.column] = patch.output(
                x_aug, self.diff.scale, self.gain
            )
        if self._w_soft is not None:
            soft = self.gain * (x_aug @ self._w_soft)
            out[..., list(self.software_cols)] = soft
        return out

    # Remapped layers are terminal: they model a repaired chip, not a
    # substrate for further Monte-Carlo draws.
    def perturbed(self, rng, sigma):
        raise MappingError("remapped layers cannot be re-perturbed")

    def aged(self, retention, elapsed, rng=None):
        raise MappingError("remapped layers cannot be re-aged")

    def faulted(self, injector, rng):
        raise MappingError("remapped layers cannot be re-faulted")


@dataclasses.dataclass
class RemapResult:
    """Outcome of one detect-and-remap pass.

    Attributes
    ----------
    network:
        Drop-in network clone; flagged columns are served by spares or
        the software fallback.  Bind it to a calibrated executor with
        ``executor._clone_with_network(result.network)``.
    records:
        One :class:`RemapRecord` per recovered column.
    reports:
        The detection-phase probe reports, by layer name.
    """

    network: MappedNetwork
    records: List[RemapRecord]
    reports: Dict[str, object]

    @property
    def spare_cols(self) -> int:
        """Columns recovered onto spare strips."""
        return sum(1 for r in self.records if r.action == "spare")

    @property
    def software_cols(self) -> int:
        """Columns degraded to the software-MVM fallback."""
        return sum(1 for r in self.records if r.action == "software")

    @property
    def flagged_cols(self) -> int:
        """Columns the probe flagged (== len(records))."""
        return len(self.records)

    def events(self) -> List[dict]:
        """JSON-serialisable remap log (worst deviations first)."""
        return [
            r.to_dict()
            for r in sorted(self.records, key=lambda r: -r.deviation)
        ]


def _program_column_patch(
    diff,
    column: int,
    backend: HardwareBackend,
    injector,
    rng: Optional[np.random.Generator],
) -> _ColumnPatch:
    """Program one logical column onto a fresh spare strip.

    The spare lives on the same silicon, so when an ``injector`` is
    given the fresh programming is disturbed by a new fault draw.
    """
    max_rows, max_cols = backend.max_tile_shape

    def _program(matrix: np.ndarray) -> Tuple[TileGrid, List[List]]:
        grid = tile_matrix(matrix, max_rows, max_cols)
        tiles = [[backend.program(t) for t in row] for row in grid.tiles]
        if injector is not None and rng is not None:
            tiles = [[t.faulted(injector, rng) for t in row] for row in tiles]
        return grid, tiles

    pos_grid, pos_tiles = _program(diff.positive[:, [column]])
    neg_grid, neg_tiles = _program(diff.negative[:, [column]])
    return _ColumnPatch(column, pos_grid, pos_tiles, neg_grid, neg_tiles)


def detect_and_remap(
    reference: MappedNetwork,
    candidate: MappedNetwork,
    backend: HardwareBackend,
    probe,
    injector=None,
    rng: Optional[np.random.Generator] = None,
    spare_fraction: float = 0.1,
    max_retries: int = 2,
) -> RemapResult:
    """Probe ``candidate`` against ``reference`` and repair what fails.

    Parameters
    ----------
    reference:
        The pristine network recorded at deployment time (golden
        responses).
    candidate:
        The same network after faults struck (e.g. from
        :meth:`MappedNetwork.faulted`).
    backend:
        Backend used to program spare strips — the same one the
        network was compiled with.
    probe:
        A :class:`~repro.faults.probe.HealthProbe` (any object with
        ``stimulus``/``probe_layer``/``threshold``).
    injector:
        The fault model afflicting the silicon; spares are disturbed
        by fresh draws from it.  ``None`` = spares are clean.
    rng:
        Random source for spare fault draws (required when
        ``injector`` is given).
    spare_fraction:
        Per-layer spare-column budget as a fraction of the layer's
        logical columns (matches ``plan_deployment``'s reservation).
    max_retries:
        Extra spare programming attempts per column before giving up
        and degrading to software.
    """
    if injector is not None and rng is None:
        raise MappingError("rng is required when an injector is given")
    if max_retries < 0:
        raise MappingError(f"max_retries must be >= 0, got {max_retries!r}")

    stages_out: List = []
    records: List[RemapRecord] = []
    reports: Dict[str, object] = {}

    for ref_stage, cand_stage in zip(reference.stages, candidate.stages):
        if ref_stage is None or cand_stage is None:
            if (ref_stage is None) != (cand_stage is None):
                raise MappingError("mapped/unmapped stages do not align")
            stages_out.append(None)
            continue

        report = probe.probe_layer(ref_stage, cand_stage)
        reports[ref_stage.name] = report
        if report.healthy:
            stages_out.append(cand_stage)
            continue

        diff = ref_stage.diff
        budget = spare_columns_for(diff.cols, spare_fraction)
        flagged = list(report.flagged)  # worst deviation first
        spare_bound = flagged[:budget]
        software_bound = flagged[budget:]

        # Golden column responses for spare verification.
        width = diff.rows - 1 if diff.has_bias_row else diff.rows
        x = probe.stimulus(width)
        x_aug = _augment(x, 1.0, diff.has_bias_row)
        golden = np.asarray(ref_stage.matmul(x), dtype=float)
        layer_scale = max(float(np.abs(golden).max()), 1e-12)

        patches: List[_ColumnPatch] = []
        for column in spare_bound:
            accepted = None
            attempts = 0
            for _ in range(max_retries + 1):
                attempts += 1
                patch = _program_column_patch(
                    diff, column, backend, injector, rng
                )
                observed = patch.output(x_aug, diff.scale, cand_stage.gain)
                deviation = float(
                    np.abs(observed - golden[:, column]).max() / layer_scale
                )
                if deviation <= probe.threshold:
                    accepted = patch
                    break
            if accepted is not None:
                patches.append(accepted)
                records.append(RemapRecord(
                    layer=ref_stage.name, column=column, action="spare",
                    attempts=attempts,
                    deviation=float(report.deviations[column]),
                ))
            else:
                software_bound.append(column)
                records.append(RemapRecord(
                    layer=ref_stage.name, column=column, action="software",
                    attempts=attempts,
                    deviation=float(report.deviations[column]),
                ))
        for column in flagged[budget:]:
            records.append(RemapRecord(
                layer=ref_stage.name, column=column, action="software",
                attempts=0, deviation=float(report.deviations[column]),
            ))

        stages_out.append(
            PatchedLayer(cand_stage, patches, software_bound)
        )

    session = _telemetry.active()
    if session is not None:
        worst = max(
            (float(rep.worst()) for rep in reports.values()), default=0.0
        )
        session.set_gauge("remap.probe_deviation", worst)
        session.count("remap.flagged", len(records))
        session.count(
            "remap.spare",
            sum(1 for r in records if r.action == "spare"),
        )
        session.count(
            "remap.software",
            sum(1 for r in records if r.action == "software"),
        )

    return RemapResult(
        network=MappedNetwork(model=candidate.model, stages=stages_out),
        records=records,
        reports=reports,
    )
