"""Trial-stacked views of mapped networks (the Monte-Carlo fast path).

A Fig. 7 / fault-campaign sweep evaluates the *same* programmed network
under ``T`` independent conductance draws.  Serially that is ``T`` full
forward passes over tiny per-tile matrices, and Python call overhead
dominates.  :func:`stack_networks` collapses the per-trial
:class:`~repro.mapping.compiler.MappedNetwork` clones into one
:class:`StackedMappedNetwork` whose tiles hold ``(T, rows, cols)``
conductance tensors, so all trials ride through a single broadcast
``np.matmul`` per tile (see :class:`repro.reram.crossbar.StackedCrossbar`).

Bit-identity contract: every stacked output slice ``t`` equals the
serial forward pass of trial ``t`` down to the last ulp — numpy runs the
same 2-D GEMM kernel per broadcast slice and every other stage is
elementwise.  The reproducibility suite pins this down by hashing
persisted campaign records across both paths.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Union

import numpy as np

from ..errors import MappingError, ShapeError
from ..nn.conv import Conv2D
from ..nn.layers import Dense
from ..nn.model import Sequential
from .backends import StackedTile, stack_tiles
from .compiler import MappedLayer, MappedNetwork
from .tiling import TileGrid
from .weight_mapping import DifferentialWeights

__all__ = ["StackedMappedLayer", "StackedMappedNetwork", "stack_networks"]


def _grid_product(
    grid: TileGrid,
    tiles: List[List[StackedTile]],
    x01: np.ndarray,
    trials: int,
    backend=None,
) -> np.ndarray:
    """``x01 @ M`` through stacked tile banks, with digital partial-sum
    accumulation in the same band order as
    :meth:`~repro.mapping.tiling.TileGrid.matmul_through` (the serial
    path), so float accumulation is bit-identical per trial.

    ``x01`` is ``(batch, rows)`` (shared by all trials) or per-trial
    ``(T, batch, rows)``; the result is always ``(T, batch, cols)``.
    ``backend`` selects the stacked compute kernels
    (:mod:`repro.kernels`; default numpy) for the tile products and the
    band accumulation, and never changes results.
    """
    from ..kernels import get_backend

    be = get_backend(backend)
    if x01.shape[-1] != grid.shape[0]:
        raise ShapeError(
            f"input width {x01.shape[-1]} != matrix rows {grid.shape[0]}"
        )
    lead = x01.shape[:-1] if x01.ndim == 3 else (trials,) + x01.shape[:-1]
    out = np.zeros(lead + (grid.shape[1],), dtype=float)
    for i in range(grid.row_bands):
        x_band = x01[..., grid.row_edges[i] : grid.row_edges[i + 1]]
        for j in range(grid.col_bands):
            partial = tiles[i][j].matmul(x_band, backend=be)
            be.accumulate(
                out, slice(grid.col_edges[j], grid.col_edges[j + 1]), partial
            )
    return out


@dataclasses.dataclass
class StackedMappedLayer:
    """One weighted layer with ``T`` trial realizations per tile."""

    source: Union[Dense, Conv2D]
    diff: DifferentialWeights
    pos_grid: TileGrid
    neg_grid: TileGrid
    pos_tiles: List[List[StackedTile]]
    neg_tiles: List[List[StackedTile]]
    gain: float
    trials: int

    @property
    def name(self) -> str:
        return self.source.name

    @property
    def num_tiles(self) -> int:
        return self.pos_grid.num_tiles + self.neg_grid.num_tiles

    def matmul_with_bias_level(
        self, x01: np.ndarray, bias_level: float, backend=None
    ) -> np.ndarray:
        """Stacked analogue of
        :meth:`~repro.mapping.compiler.MappedLayer.matmul_with_bias_level`:
        returns ``(T, batch, cols)`` signed products.  ``backend``
        selects the stacked compute kernels (:mod:`repro.kernels`;
        default numpy) and never changes results."""
        x01 = np.asarray(x01, dtype=float)
        if x01.ndim not in (2, 3):
            raise ShapeError(
                f"stacked layer input must be (batch, rows) or "
                f"(T, batch, rows), got {x01.shape}"
            )
        if x01.ndim == 3 and x01.shape[0] != self.trials:
            raise ShapeError(
                f"input carries {x01.shape[0]} trials, layer holds "
                f"{self.trials}"
            )
        if self.diff.has_bias_row:
            if not 0 <= bias_level <= 1:
                raise MappingError(
                    f"bias level must be in [0, 1], got {bias_level!r}"
                )
            ones_shape = x01.shape[:-1] + (1,)
            x01 = np.concatenate(
                [np.full(ones_shape, bias_level), x01], axis=-1
            )
        pos = _grid_product(
            self.pos_grid, self.pos_tiles, x01, self.trials, backend
        )
        neg = _grid_product(
            self.neg_grid, self.neg_tiles, x01, self.trials, backend
        )
        return self.gain * self.diff.scale * (pos - neg)


@dataclasses.dataclass
class StackedMappedNetwork:
    """A model whose mapped stages carry ``T`` trial realizations.

    Mirrors :class:`~repro.mapping.compiler.MappedNetwork`: ``stages``
    parallels the model's layers, ``None`` marking software stages.
    """

    model: Sequential
    stages: List[Optional[StackedMappedLayer]]
    trials: int

    def mapped_layers(self) -> List[StackedMappedLayer]:
        return [s for s in self.stages if s is not None]


def _stack_grids(
    layers: Sequence[MappedLayer], attr: str
) -> List[List[StackedTile]]:
    grid_tiles = [getattr(layer, attr) for layer in layers]
    rows = len(grid_tiles[0])
    cols = len(grid_tiles[0][0]) if rows else 0
    return [
        [
            stack_tiles([tiles[i][j] for tiles in grid_tiles])
            for j in range(cols)
        ]
        for i in range(rows)
    ]


def _stack_layers(layers: Sequence[MappedLayer]) -> StackedMappedLayer:
    first = layers[0]
    names = {layer.name for layer in layers}
    if len(names) > 1:
        raise MappingError(f"cannot stack different layers: {sorted(names)}")
    gains = {layer.gain for layer in layers}
    if len(gains) > 1:
        raise MappingError(
            f"per-trial clones disagree on calibrated gain: {sorted(gains)}"
        )
    return StackedMappedLayer(
        source=first.source,
        diff=first.diff,
        pos_grid=first.pos_grid,
        neg_grid=first.neg_grid,
        pos_tiles=_stack_grids(layers, "pos_tiles"),
        neg_tiles=_stack_grids(layers, "neg_tiles"),
        gain=first.gain,
        trials=len(layers),
    )


def stack_networks(networks: Sequence[MappedNetwork]) -> StackedMappedNetwork:
    """Collapse per-trial :class:`MappedNetwork` clones into one stacked
    network.

    The clones must share a model and stage structure — which they do by
    construction, being ``perturbed``/``aged``/``faulted`` copies of one
    compiled network.
    """
    networks = list(networks)
    if not networks:
        raise MappingError("cannot stack an empty sequence of networks")
    first = networks[0]
    if any(net.model is not first.model for net in networks[1:]):
        raise MappingError("per-trial networks must share one model")
    stage_counts = {len(net.stages) for net in networks}
    if len(stage_counts) > 1:
        raise MappingError(
            f"networks disagree on stage count: {sorted(stage_counts)}"
        )
    stages: List[Optional[StackedMappedLayer]] = []
    for idx, stage in enumerate(first.stages):
        if stage is None:
            if any(net.stages[idx] is not None for net in networks):
                raise MappingError(
                    f"stage {idx} is mapped in some trials but not others"
                )
            stages.append(None)
        else:
            stages.append(
                _stack_layers([net.stages[idx] for net in networks])
            )
    return StackedMappedNetwork(
        model=first.model, stages=stages, trials=len(networks)
    )
