"""Matrix tiling onto fixed-size crossbars.

A layer matrix larger than one crossbar is split into a grid of tiles
of at most ``(max_rows, max_cols)``.  At inference, tiles in the same
*row band* see the same input slice; tiles in the same *column band*
produce partial sums that are added digitally (the standard PIM
partial-sum reduction); column bands concatenate.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Tuple

import numpy as np

from ..errors import MappingError, ShapeError

__all__ = ["TileGrid", "tile_matrix"]


@dataclasses.dataclass(frozen=True)
class TileGrid:
    """A matrix split into crossbar-sized tiles.

    Attributes
    ----------
    tiles:
        ``tiles[i][j]`` is the sub-matrix of row band ``i`` and column
        band ``j``.
    row_edges / col_edges:
        Band boundary indices (``len = bands + 1``).
    shape:
        Original matrix shape.
    """

    tiles: Tuple[Tuple[np.ndarray, ...], ...]
    row_edges: Tuple[int, ...]
    col_edges: Tuple[int, ...]
    shape: Tuple[int, int]

    @property
    def row_bands(self) -> int:
        return len(self.row_edges) - 1

    @property
    def col_bands(self) -> int:
        return len(self.col_edges) - 1

    @property
    def num_tiles(self) -> int:
        return self.row_bands * self.col_bands

    def reassemble(self) -> np.ndarray:
        """Stitch the tiles back into the original matrix."""
        return np.concatenate(
            [np.concatenate(row, axis=1) for row in self.tiles], axis=0
        )

    def matmul_through(
        self, x: np.ndarray, tile_op: Callable[[np.ndarray, int, int], np.ndarray]
    ) -> np.ndarray:
        """Compute ``x @ M`` where each tile product is delegated.

        ``tile_op(x_band, i, j)`` must return the partial product of the
        input slice for row band ``i`` against tile ``(i, j)``.  Partial
        sums across row bands are accumulated digitally.
        """
        x = np.asarray(x, dtype=float)
        if x.shape[-1] != self.shape[0]:
            raise ShapeError(
                f"input width {x.shape[-1]} != matrix rows {self.shape[0]}"
            )
        out_shape = x.shape[:-1] + (self.shape[1],)
        out = np.zeros(out_shape, dtype=float)
        for i in range(self.row_bands):
            x_band = x[..., self.row_edges[i] : self.row_edges[i + 1]]
            for j in range(self.col_bands):
                partial = tile_op(x_band, i, j)
                out[..., self.col_edges[j] : self.col_edges[j + 1]] += partial
        return out


def _edges(total: int, chunk: int) -> Tuple[int, ...]:
    return tuple(range(0, total, chunk)) + (total,)


def tile_matrix(matrix: np.ndarray, max_rows: int, max_cols: int) -> TileGrid:
    """Split ``matrix`` into a :class:`TileGrid` of crossbar-sized tiles."""
    m = np.asarray(matrix, dtype=float)
    if m.ndim != 2:
        raise MappingError(f"matrix must be 2-D, got shape {m.shape}")
    if max_rows < 1 or max_cols < 1:
        raise MappingError("tile dimensions must be >= 1")
    rows, cols = m.shape
    row_edges = _edges(rows, max_rows)
    col_edges = _edges(cols, max_cols)
    tiles = tuple(
        tuple(
            m[row_edges[i] : row_edges[i + 1], col_edges[j] : col_edges[j + 1]]
            for j in range(len(col_edges) - 1)
        )
        for i in range(len(row_edges) - 1)
    )
    return TileGrid(tiles=tiles, row_edges=row_edges, col_edges=col_edges,
                    shape=(rows, cols))
