"""Signed-weight → differential-conductance mapping.

ReRAM conductances are non-negative, so a signed weight matrix ``W`` is
stored as two non-negative matrices on separate column groups::

    W = scale · (W⁺ - W⁻),   W⁺ = max(W, 0)/scale,  W⁻ = max(-W, 0)/scale

The hardware computes ``y⁺ = x @ W⁺`` and ``y⁻ = x @ W⁻`` and the
digital periphery subtracts.  The subtraction also cancels the constant
conductance offset ``g_min`` that the bounded device window adds to
every cell — a property the tests verify explicitly.

Bias folding: an optional always-on input row carries the layer bias
(positive part on the ⁺ group, negative on the ⁻ group), normalised by
the same scale.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

import numpy as np

from ..errors import MappingError

__all__ = ["DifferentialWeights", "map_signed_weights"]


@dataclasses.dataclass(frozen=True)
class DifferentialWeights:
    """The differential representation of one signed weight matrix.

    Attributes
    ----------
    positive / negative:
        Non-negative matrices in ``[0, 1]``, shape ``(rows, cols)``;
        ``rows`` includes the bias row when present.
    scale:
        Restores magnitudes: ``W = scale · (positive - negative)``
        (bias row excluded from ``W``).
    has_bias_row:
        Whether row 0 of each matrix is the folded bias row (driven by a
        constant full-scale input).
    """

    positive: np.ndarray
    negative: np.ndarray
    scale: float
    has_bias_row: bool

    def __post_init__(self) -> None:
        if self.positive.shape != self.negative.shape:
            raise MappingError(
                f"positive {self.positive.shape} and negative "
                f"{self.negative.shape} shapes differ"
            )
        for name, m in (("positive", self.positive), ("negative", self.negative)):
            if np.any(m < 0) or np.any(m > 1 + 1e-12):
                raise MappingError(f"{name} matrix must lie in [0, 1]")
        if self.scale <= 0:
            raise MappingError(f"scale must be positive, got {self.scale!r}")

    @property
    def rows(self) -> int:
        return int(self.positive.shape[0])

    @property
    def cols(self) -> int:
        return int(self.positive.shape[1])

    def reconstruct(self) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """Recover ``(W, bias)`` from the stored representation."""
        diff = self.scale * (self.positive - self.negative)
        if self.has_bias_row:
            return diff[1:], diff[0]
        return diff, None

    def augment_inputs(self, x: np.ndarray) -> np.ndarray:
        """Prepend the constant bias input (1.0) when a bias row exists."""
        if not self.has_bias_row:
            return x
        x = np.asarray(x, dtype=float)
        ones_shape = x.shape[:-1] + (1,)
        return np.concatenate([np.ones(ones_shape), x], axis=-1)


def map_signed_weights(
    weights: np.ndarray,
    bias: Optional[np.ndarray] = None,
    clip_percentile: float = 100.0,
) -> DifferentialWeights:
    """Build the differential representation of ``weights`` (+ ``bias``).

    Parameters
    ----------
    weights:
        Signed matrix, shape ``(in_features, out_features)``.
    bias:
        Optional signed vector, shape ``(out_features,)``; folded as an
        extra leading input row.
    clip_percentile:
        Normalisation scale is the given percentile of |weights| rather
        than the raw maximum (values beyond it are clipped).  Trained
        weight distributions are heavy-tailed; max-abs normalisation
        would squash the bulk of the weights toward the noisy ``g_min``
        baseline and amplify process-variation sensitivity (standard
        post-training-quantisation practice; 100 disables clipping).
    """
    w = np.asarray(weights, dtype=float)
    if w.ndim != 2:
        raise MappingError(f"weights must be 2-D, got shape {w.shape}")
    if not 0 < clip_percentile <= 100:
        raise MappingError(
            f"clip percentile must be in (0, 100], got {clip_percentile!r}"
        )
    rows_list = [w]
    if bias is not None:
        b = np.asarray(bias, dtype=float)
        if b.shape != (w.shape[1],):
            raise MappingError(
                f"bias shape {b.shape} does not match out features {w.shape[1]}"
            )
        rows_list = [b[None, :], w]
    full = np.concatenate(rows_list, axis=0)
    magnitudes = np.abs(full)
    scale = float(np.percentile(magnitudes, clip_percentile))
    if scale == 0:
        scale = float(magnitudes.max())
    if scale == 0:
        scale = 1.0
    normalised = np.clip(full / scale, -1.0, 1.0)
    return DifferentialWeights(
        positive=np.maximum(normalised, 0.0),
        negative=np.maximum(-normalised, 0.0),
        scale=scale,
        has_bias_row=bias is not None,
    )
