"""Pure-numpy neural-network substrate.

The paper evaluates six pretrained networks (Section IV-C).  Offline,
with no deep-learning framework available, this subpackage provides the
minimum viable stack to *train* those networks on the synthetic datasets
and hand their weights to the mapping compiler:

* :mod:`repro.nn.layers` — Dense, ReLU, Flatten, Dropout.
* :mod:`repro.nn.conv` — Conv2D (im2col), MaxPool2D, AvgPool2D.
* :mod:`repro.nn.model` — the Sequential container.
* :mod:`repro.nn.losses` — cross-entropy (+softmax), MSE.
* :mod:`repro.nn.optim` — SGD with momentum, Adam.
* :mod:`repro.nn.train` — the training loop with metrics.
* :mod:`repro.nn.init` — weight initialisers.
* :mod:`repro.nn.quantize` — normalisation helpers used by the
  weight-to-conductance mapping.
"""

from .layers import Dense, Dropout, Flatten, Layer, Parameter, ReLU
from .conv import AvgPool2D, Conv2D, MaxPool2D
from .model import Sequential
from .losses import CrossEntropyLoss, MSELoss
from .optim import SGD, Adam
from .train import Trainer, TrainingHistory, evaluate_accuracy
from .quantize import quantize_uniform, per_layer_scales

__all__ = [
    "Layer",
    "Parameter",
    "Dense",
    "ReLU",
    "Flatten",
    "Dropout",
    "Conv2D",
    "MaxPool2D",
    "AvgPool2D",
    "Sequential",
    "CrossEntropyLoss",
    "MSELoss",
    "SGD",
    "Adam",
    "Trainer",
    "TrainingHistory",
    "evaluate_accuracy",
    "quantize_uniform",
    "per_layer_scales",
]
