"""Convolution and pooling layers (im2col formulation).

Data layout is ``(N, C, H, W)``.  The im2col transform turns every
convolution into a single matrix multiplication — exactly the form the
crossbar mapping consumes (the compiler unrolls Conv2D kernels into
crossbar columns the same way).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..errors import ShapeError, TrainingError
from .init import he_normal, zeros
from .layers import Layer, Parameter

__all__ = ["Conv2D", "MaxPool2D", "AvgPool2D", "im2col", "col2im"]


def _out_dim(size: int, kernel: int, stride: int, pad: int) -> int:
    out = (size + 2 * pad - kernel) // stride + 1
    if out < 1:
        raise ShapeError(
            f"kernel {kernel}/stride {stride}/pad {pad} too large for size {size}"
        )
    return out


def im2col(
    x: np.ndarray, kernel: int, stride: int, pad: int
) -> Tuple[np.ndarray, Tuple[int, int]]:
    """Unfold ``(N, C, H, W)`` into ``(N·H_out·W_out, C·k·k)`` patches.

    Returns the patch matrix and ``(H_out, W_out)``.
    """
    n, c, h, w = x.shape
    h_out = _out_dim(h, kernel, stride, pad)
    w_out = _out_dim(w, kernel, stride, pad)
    if pad:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    # Strided sliding windows: (N, C, H_out, W_out, k, k)
    s0, s1, s2, s3 = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, h_out, w_out, kernel, kernel),
        strides=(s0, s1, s2 * stride, s3 * stride, s2, s3),
        writeable=False,
    )
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(
        n * h_out * w_out, c * kernel * kernel
    )
    return np.ascontiguousarray(cols), (h_out, w_out)


def col2im(
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kernel: int,
    stride: int,
    pad: int,
) -> np.ndarray:
    """Adjoint of :func:`im2col` (scatter-add patches back)."""
    n, c, h, w = x_shape
    h_out = _out_dim(h, kernel, stride, pad)
    w_out = _out_dim(w, kernel, stride, pad)
    padded = np.zeros((n, c, h + 2 * pad, w + 2 * pad), dtype=float)
    cols6 = cols.reshape(n, h_out, w_out, c, kernel, kernel).transpose(0, 3, 1, 2, 4, 5)
    for ki in range(kernel):
        for kj in range(kernel):
            padded[:, :, ki : ki + stride * h_out : stride,
                   kj : kj + stride * w_out : stride] += cols6[:, :, :, :, ki, kj]
    if pad:
        return padded[:, :, pad:-pad, pad:-pad]
    return padded


class Conv2D(Layer):
    """2-D convolution via im2col.

    Parameters
    ----------
    in_channels / out_channels:
        Channel counts.
    kernel:
        Square kernel size.
    stride / pad:
        Stride and symmetric zero padding.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel: int = 3,
        stride: int = 1,
        pad: int = 1,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if min(in_channels, out_channels, kernel, stride) < 1 or pad < 0:
            raise ShapeError("invalid Conv2D geometry")
        rng = rng if rng is not None else np.random.default_rng(
            in_channels * 131 + out_channels * 17 + kernel
        )
        self.name = f"conv{in_channels}->{out_channels}k{kernel}"
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel = kernel
        self.stride = stride
        self.pad = pad
        fan_in = in_channels * kernel * kernel
        self.weight = Parameter(
            f"{self.name}.weight", he_normal((fan_in, out_channels), fan_in, rng)
        )
        self.bias = Parameter(f"{self.name}.bias", zeros((out_channels,))) if bias else None
        self._cache: Optional[Tuple[np.ndarray, Tuple[int, ...], Tuple[int, int]]] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ShapeError(
                f"{self.name}: expected (N, {self.in_channels}, H, W), got {x.shape}"
            )
        cols, (h_out, w_out) = im2col(x, self.kernel, self.stride, self.pad)
        out = cols @ self.weight.value
        if self.bias is not None:
            out = out + self.bias.value
        n = x.shape[0]
        self._cache = (cols, x.shape, (h_out, w_out)) if training else None
        return out.reshape(n, h_out, w_out, self.out_channels).transpose(0, 3, 1, 2)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise TrainingError(f"{self.name}: backward before training forward")
        cols, x_shape, (h_out, w_out) = self._cache
        n = x_shape[0]
        g = np.asarray(grad, dtype=float).transpose(0, 2, 3, 1).reshape(
            n * h_out * w_out, self.out_channels
        )
        self.weight.grad += cols.T @ g
        if self.bias is not None:
            self.bias.grad += g.sum(axis=0)
        dcols = g @ self.weight.value.T
        return col2im(dcols, x_shape, self.kernel, self.stride, self.pad)

    def parameters(self) -> List[Parameter]:
        params = [self.weight]
        if self.bias is not None:
            params.append(self.bias)
        return params

    def __repr__(self) -> str:
        return (
            f"Conv2D({self.in_channels}, {self.out_channels}, "
            f"kernel={self.kernel}, stride={self.stride}, pad={self.pad})"
        )


class MaxPool2D(Layer):
    """Non-overlapping max pooling (kernel == stride)."""

    def __init__(self, kernel: int = 2) -> None:
        if kernel < 1:
            raise ShapeError("pool kernel must be >= 1")
        self.name = f"maxpool{kernel}"
        self.kernel = kernel
        self._cache: Optional[Tuple[np.ndarray, Tuple[int, ...]]] = None

    def _window(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        k = self.kernel
        if h % k or w % k:
            raise ShapeError(
                f"{self.name}: spatial dims {h}x{w} not divisible by {k}"
            )
        return x.reshape(n, c, h // k, k, w // k, k)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        windows = self._window(x)
        out = windows.max(axis=(3, 5))
        if training:
            mask = windows == out[:, :, :, None, :, None]
            # Break ties so gradient flows to exactly one element.
            cumulative = np.cumsum(mask, axis=3).cumsum(axis=5)
            mask = mask & (cumulative == 1)
            self._cache = (mask, x.shape)
        else:
            self._cache = None
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise TrainingError(f"{self.name}: backward before training forward")
        mask, x_shape = self._cache
        g = np.asarray(grad, dtype=float)[:, :, :, None, :, None]
        return (mask * g).reshape(x_shape)


class AvgPool2D(Layer):
    """Non-overlapping average pooling (kernel == stride)."""

    def __init__(self, kernel: int = 2) -> None:
        if kernel < 1:
            raise ShapeError("pool kernel must be >= 1")
        self.name = f"avgpool{kernel}"
        self.kernel = kernel
        self._shape: Optional[Tuple[int, ...]] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        n, c, h, w = x.shape
        k = self.kernel
        if h % k or w % k:
            raise ShapeError(f"{self.name}: spatial dims {h}x{w} not divisible by {k}")
        self._shape = x.shape if training else None
        return x.reshape(n, c, h // k, k, w // k, k).mean(axis=(3, 5))

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise TrainingError(f"{self.name}: backward before training forward")
        k = self.kernel
        g = np.asarray(grad, dtype=float) / (k * k)
        g = np.repeat(np.repeat(g, k, axis=2), k, axis=3)
        return g.reshape(self._shape)
