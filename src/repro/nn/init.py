"""Weight initialisers."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import ConfigurationError

__all__ = ["he_normal", "glorot_uniform", "zeros"]


def he_normal(shape: Tuple[int, ...], fan_in: int, rng: np.random.Generator) -> np.ndarray:
    """He (Kaiming) normal initialisation — the right scale for ReLU nets."""
    if fan_in <= 0:
        raise ConfigurationError(f"fan_in must be positive, got {fan_in!r}")
    return rng.normal(0.0, np.sqrt(2.0 / fan_in), size=shape)


def glorot_uniform(
    shape: Tuple[int, ...], fan_in: int, fan_out: int, rng: np.random.Generator
) -> np.ndarray:
    """Glorot (Xavier) uniform initialisation."""
    if fan_in <= 0 or fan_out <= 0:
        raise ConfigurationError("fan_in and fan_out must be positive")
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    """All-zero initialisation (biases)."""
    return np.zeros(shape, dtype=float)
