"""Core layer types: the base protocol, Dense, ReLU, Flatten, Dropout.

Every layer implements ``forward`` (caching what ``backward`` needs) and
``backward`` (accumulating parameter gradients, returning the input
gradient).  Parameters are :class:`Parameter` objects the optimisers
update in place.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..errors import ShapeError, TrainingError
from .init import he_normal, zeros

__all__ = ["Parameter", "Layer", "Dense", "ReLU", "Flatten", "Dropout"]


class Parameter:
    """A trainable tensor with its gradient accumulator."""

    __slots__ = ("name", "value", "grad")

    def __init__(self, name: str, value: np.ndarray) -> None:
        self.name = name
        self.value = np.asarray(value, dtype=float)
        self.grad = np.zeros_like(self.value)

    def zero_grad(self) -> None:
        """Reset the gradient accumulator."""
        self.grad[...] = 0.0

    def __repr__(self) -> str:
        return f"Parameter({self.name!r}, shape={self.value.shape})"


class Layer:
    """Base layer protocol."""

    #: Layer display name (set by subclasses).
    name: str = "layer"

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Compute the layer output, caching for :meth:`backward`."""
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Back-propagate ``grad`` (dL/d_output) to dL/d_input,
        accumulating parameter gradients."""
        raise NotImplementedError

    def parameters(self) -> List[Parameter]:
        """Trainable parameters (empty for stateless layers)."""
        return []

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class Dense(Layer):
    """Fully-connected layer ``y = x W + b``.

    Parameters
    ----------
    in_features / out_features:
        Input/output widths.
    bias:
        Whether to include a bias term.  PIM mapping folds biases into a
        dedicated always-on input row, so both paths are exercised.
    rng:
        Generator for initialisation (default: seeded from shapes for
        reproducibility).
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if in_features < 1 or out_features < 1:
            raise ShapeError("Dense dimensions must be >= 1")
        rng = rng if rng is not None else np.random.default_rng(
            in_features * 7919 + out_features
        )
        self.name = f"dense{in_features}x{out_features}"
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            f"{self.name}.weight", he_normal((in_features, out_features), in_features, rng)
        )
        self.bias = Parameter(f"{self.name}.bias", zeros((out_features,))) if bias else None
        self._x: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ShapeError(
                f"{self.name}: expected (N, {self.in_features}), got {x.shape}"
            )
        self._x = x if training else None
        out = x @ self.weight.value
        if self.bias is not None:
            out = out + self.bias.value
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise TrainingError(f"{self.name}: backward before training forward")
        grad = np.asarray(grad, dtype=float)
        self.weight.grad += self._x.T @ grad
        if self.bias is not None:
            self.bias.grad += grad.sum(axis=0)
        return grad @ self.weight.value.T

    def parameters(self) -> List[Parameter]:
        params = [self.weight]
        if self.bias is not None:
            params.append(self.bias)
        return params

    def __repr__(self) -> str:
        return f"Dense({self.in_features}, {self.out_features}, bias={self.bias is not None})"


class ReLU(Layer):
    """Rectified linear activation."""

    name = "relu"

    def __init__(self) -> None:
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        mask = x > 0
        self._mask = mask if training else None
        return x * mask

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise TrainingError("relu: backward before training forward")
        return np.asarray(grad, dtype=float) * self._mask


class Flatten(Layer):
    """Flattens all but the batch dimension."""

    name = "flatten"

    def __init__(self) -> None:
        self._shape: Optional[Tuple[int, ...]] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        self._shape = x.shape if training else None
        return x.reshape(x.shape[0], -1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise TrainingError("flatten: backward before training forward")
        return np.asarray(grad, dtype=float).reshape(self._shape)


class Dropout(Layer):
    """Inverted dropout (identity at inference)."""

    def __init__(self, rate: float = 0.5, rng: Optional[np.random.Generator] = None) -> None:
        if not 0 <= rate < 1:
            raise TrainingError(f"dropout rate must be in [0, 1), got {rate!r}")
        self.name = f"dropout{rate}"
        self.rate = rate
        self.rng = rng if rng is not None else np.random.default_rng(1234)
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        if not training or self.rate == 0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self.rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad: np.ndarray) -> np.ndarray:
        grad = np.asarray(grad, dtype=float)
        if self._mask is None:
            return grad
        return grad * self._mask
