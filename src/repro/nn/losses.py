"""Loss functions (value + gradient in one call)."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import ShapeError, TrainingError

__all__ = ["CrossEntropyLoss", "MSELoss", "softmax"]


def softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable row-wise softmax."""
    z = np.asarray(logits, dtype=float)
    z = z - z.max(axis=-1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=-1, keepdims=True)


class CrossEntropyLoss:
    """Softmax + cross-entropy with integer class labels."""

    def __call__(
        self, logits: np.ndarray, labels: np.ndarray
    ) -> Tuple[float, np.ndarray]:
        """Return ``(mean_loss, dL/dlogits)``."""
        logits = np.asarray(logits, dtype=float)
        labels = np.asarray(labels)
        if logits.ndim != 2:
            raise ShapeError(f"logits must be (N, C), got {logits.shape}")
        n, c = logits.shape
        if labels.shape != (n,):
            raise ShapeError(f"labels must be ({n},), got {labels.shape}")
        if labels.min() < 0 or labels.max() >= c:
            raise TrainingError(
                f"labels out of range [0, {c}): [{labels.min()}, {labels.max()}]"
            )
        probs = softmax(logits)
        picked = probs[np.arange(n), labels]
        loss = float(-np.log(np.maximum(picked, 1e-12)).mean())
        grad = probs
        grad[np.arange(n), labels] -= 1.0
        return loss, grad / n


class MSELoss:
    """Mean squared error against dense targets."""

    def __call__(
        self, outputs: np.ndarray, targets: np.ndarray
    ) -> Tuple[float, np.ndarray]:
        """Return ``(mean_loss, dL/doutputs)``."""
        outputs = np.asarray(outputs, dtype=float)
        targets = np.asarray(targets, dtype=float)
        if outputs.shape != targets.shape:
            raise ShapeError(
                f"outputs {outputs.shape} and targets {targets.shape} differ"
            )
        diff = outputs - targets
        loss = float((diff**2).mean())
        return loss, 2.0 * diff / diff.size
