"""The Sequential model container."""

from __future__ import annotations

import zipfile
from typing import Iterator, List, Optional, Sequence

import numpy as np

from ..errors import ArtifactError, ShapeError
from ..store.atomic import atomic_write_npz
from .layers import Layer, Parameter

__all__ = ["Sequential"]


class Sequential:
    """A stack of layers applied in order.

    Supports forward/backward for training, prediction helpers, and
    weight (de)serialisation to ``.npz`` so pretrained networks can be
    cached between benchmark runs.
    """

    def __init__(self, layers: Sequence[Layer], name: str = "model") -> None:
        if not layers:
            raise ShapeError("a model needs at least one layer")
        self.layers: List[Layer] = list(layers)
        self.name = name

    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Run all layers."""
        out = np.asarray(x, dtype=float)
        for layer in self.layers:
            out = layer.forward(out, training=training)
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Back-propagate through all layers (training forward required)."""
        g = np.asarray(grad, dtype=float)
        for layer in reversed(self.layers):
            g = layer.backward(g)
        return g

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x, training=False)

    # ------------------------------------------------------------------
    def parameters(self) -> List[Parameter]:
        """All trainable parameters in layer order."""
        params: List[Parameter] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params

    def parameter_count(self) -> int:
        """Total number of scalar weights."""
        return sum(p.value.size for p in self.parameters())

    def predict(self, x: np.ndarray, batch_size: Optional[int] = None) -> np.ndarray:
        """Class predictions (argmax over the final axis)."""
        return np.argmax(self.predict_logits(x, batch_size), axis=-1)

    def predict_logits(
        self, x: np.ndarray, batch_size: Optional[int] = None
    ) -> np.ndarray:
        """Raw model outputs, optionally batched to bound memory."""
        x = np.asarray(x, dtype=float)
        if batch_size is None:
            return self.forward(x, training=False)
        chunks = [
            self.forward(x[i : i + batch_size], training=False)
            for i in range(0, x.shape[0], batch_size)
        ]
        return np.concatenate(chunks, axis=0)

    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Parameter name → value mapping."""
        state = {}
        for i, p in enumerate(self.parameters()):
            state[f"{i:03d}:{p.name}"] = p.value.copy()
        return state

    def load_state_dict(self, state: dict) -> None:
        """Load values saved by :meth:`state_dict` (order + shape checked)."""
        params = self.parameters()
        keys = sorted(state)
        if len(keys) != len(params):
            raise ShapeError(
                f"state has {len(keys)} tensors, model has {len(params)}"
            )
        for key, p in zip(keys, params):
            value = np.asarray(state[key], dtype=float)
            if value.shape != p.value.shape:
                raise ShapeError(
                    f"{p.name}: saved shape {value.shape} != model {p.value.shape}"
                )
            p.value[...] = value

    def save(self, path: str) -> None:
        """Persist weights to an ``.npz`` file, atomically.

        The archive is staged to a temp file and ``os.replace``-d into
        place, so an interrupted run can never leave a truncated
        archive that poisons every future cached load.
        """
        atomic_write_npz(path, self.state_dict())

    def load(self, path: str) -> None:
        """Load weights from an ``.npz`` file.

        Raises :class:`~repro.errors.ArtifactError` when the file is
        missing or not a readable archive (callers that cache decide
        whether that means "recompute" — see ``repro.store``), and
        :class:`~repro.errors.ShapeError` when the archive decodes but
        does not fit this architecture.
        """
        try:
            with np.load(path, allow_pickle=False) as data:
                state = {k: data[k] for k in data.files}
        except (OSError, ValueError, KeyError, EOFError,
                zipfile.BadZipFile) as exc:
            raise ArtifactError(
                f"cannot read weights from {path!r}: {exc}"
            ) from exc
        self.load_state_dict(state)

    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[Layer]:
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)

    def __repr__(self) -> str:
        inner = ", ".join(repr(layer) for layer in self.layers)
        return f"Sequential[{self.name}]({inner})"
