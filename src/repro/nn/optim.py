"""Optimisers: SGD with momentum, Adam."""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from ..errors import TrainingError
from .layers import Parameter

__all__ = ["SGD", "Adam"]


class SGD:
    """Stochastic gradient descent with classical momentum.

    Parameters
    ----------
    params:
        Parameters to update.
    lr:
        Learning rate.
    momentum:
        Momentum coefficient (0 disables).
    weight_decay:
        L2 penalty coefficient applied as decoupled decay.
    """

    def __init__(
        self,
        params: Sequence[Parameter],
        lr: float = 0.01,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
    ) -> None:
        if lr <= 0:
            raise TrainingError(f"learning rate must be positive, got {lr!r}")
        if not 0 <= momentum < 1:
            raise TrainingError(f"momentum must be in [0, 1), got {momentum!r}")
        if weight_decay < 0:
            raise TrainingError("weight decay must be >= 0")
        self.params = list(params)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Dict[int, np.ndarray] = {}

    def zero_grad(self) -> None:
        """Reset all parameter gradients."""
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        """Apply one update from accumulated gradients."""
        for p in self.params:
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.value
            if self.momentum:
                v = self._velocity.get(id(p))
                if v is None:
                    v = np.zeros_like(p.value)
                v = self.momentum * v + g
                self._velocity[id(p)] = v
                g = v
            p.value -= self.lr * g


class Adam:
    """Adam optimiser (Kingma & Ba)."""

    def __init__(
        self,
        params: Sequence[Parameter],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        if lr <= 0:
            raise TrainingError(f"learning rate must be positive, got {lr!r}")
        b1, b2 = betas
        if not (0 <= b1 < 1 and 0 <= b2 < 1):
            raise TrainingError(f"betas must be in [0, 1), got {betas!r}")
        self.params = list(params)
        self.lr = lr
        self.b1, self.b2 = b1, b2
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}
        self._t = 0

    def zero_grad(self) -> None:
        """Reset all parameter gradients."""
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        """Apply one Adam update from accumulated gradients."""
        self._t += 1
        for p in self.params:
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.value
            m = self._m.get(id(p))
            v = self._v.get(id(p))
            if m is None:
                m = np.zeros_like(p.value)
                v = np.zeros_like(p.value)
            m = self.b1 * m + (1 - self.b1) * g
            v = self.b2 * v + (1 - self.b2) * g**2
            self._m[id(p)] = m
            self._v[id(p)] = v
            m_hat = m / (1 - self.b1**self._t)
            v_hat = v / (1 - self.b2**self._t)
            p.value -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
