"""Quantisation / normalisation helpers for hardware mapping.

The crossbar stores only non-negative conductances in a bounded window,
so trained (signed, unbounded) weights must be normalised per layer
before programming.  These helpers are shared by the mapping compiler
and the quantisation-sensitivity tests.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..errors import MappingError
from .layers import Dense
from .model import Sequential
from .conv import Conv2D

__all__ = ["quantize_uniform", "per_layer_scales", "normalise_signed"]


def quantize_uniform(values: np.ndarray, bits: int, v_min: float, v_max: float) -> np.ndarray:
    """Uniform quantisation of ``values`` to ``2**bits`` levels on
    ``[v_min, v_max]`` (values clipped into range first)."""
    if bits < 1:
        raise MappingError(f"need >= 1 bit, got {bits!r}")
    if v_max <= v_min:
        raise MappingError(f"need v_max > v_min, got [{v_min}, {v_max}]")
    levels = 2**bits - 1
    clipped = np.clip(np.asarray(values, dtype=float), v_min, v_max)
    idx = np.round((clipped - v_min) / (v_max - v_min) * levels)
    return v_min + idx / levels * (v_max - v_min)


def normalise_signed(weights: np.ndarray) -> Tuple[np.ndarray, float]:
    """Scale a signed weight matrix into ``[-1, 1]``.

    Returns ``(normalised, scale)`` with ``weights = normalised * scale``.
    An all-zero matrix returns scale 1.
    """
    w = np.asarray(weights, dtype=float)
    scale = float(np.abs(w).max())
    if scale == 0:
        return w.copy(), 1.0
    return w / scale, scale


def per_layer_scales(model: Sequential) -> Dict[str, float]:
    """Max-abs weight scale of every weighted layer in ``model``.

    The mapping compiler divides each layer's weights by its scale
    before conductance programming and multiplies the layer output back
    in the digital domain.
    """
    scales: Dict[str, float] = {}
    for layer in model:
        if isinstance(layer, (Dense, Conv2D)):
            scale = float(np.abs(layer.weight.value).max())
            scales[layer.name] = scale if scale > 0 else 1.0
    return scales
