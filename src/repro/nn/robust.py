"""Variation-aware training.

Networks mapped to analog crossbars face multiplicative conductance
noise (paper Fig. 7).  The standard remedy — used by the reliability
line of work the paper cites ([21] DL-RSIM, [22] DATE'19) — is to
*train with the noise*: perturb the weights for every forward/backward
pass and apply the resulting gradients to the clean weights.  The
optimum then sits in a flat region of the loss landscape, and inference-
time variation costs far less accuracy.

:class:`VariationAwareTrainer` implements exactly that on top of the
plain :class:`~repro.nn.train.Trainer`; the redundancy/robustness
ablation bench quantifies the recovery it buys on the channel-reduced
CNNs.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..errors import TrainingError
from .model import Sequential
from .train import Trainer

__all__ = ["VariationAwareTrainer"]


class VariationAwareTrainer(Trainer):
    """Trainer that injects multiplicative weight noise per batch.

    Parameters
    ----------
    model / optimizer / loss / batch_size / rng:
        As in :class:`~repro.nn.train.Trainer`.
    weight_noise_sigma:
        Relative std of the per-batch multiplicative weight perturbation
        (match it to the device-variation σ you expect at inference).
    noise_rng:
        Generator for the weight noise (separate from shuffling so runs
        stay reproducible when only one knob changes).
    """

    def __init__(
        self,
        model: Sequential,
        optimizer,
        weight_noise_sigma: float = 0.1,
        noise_rng: Optional[np.random.Generator] = None,
        **kwargs,
    ) -> None:
        super().__init__(model, optimizer, **kwargs)
        if weight_noise_sigma < 0:
            raise TrainingError(
                f"weight noise sigma must be >= 0, got {weight_noise_sigma!r}"
            )
        self.weight_noise_sigma = weight_noise_sigma
        self.noise_rng = noise_rng if noise_rng is not None else np.random.default_rng(7)

    # ------------------------------------------------------------------
    def _perturb_weights(self) -> List[Tuple[object, np.ndarray]]:
        """Multiply every parameter by N(1, σ); return restore info."""
        saved = []
        for p in self.model.parameters():
            saved.append((p, p.value.copy()))
            p.value *= self.noise_rng.normal(
                1.0, self.weight_noise_sigma, p.value.shape
            )
        return saved

    @staticmethod
    def _restore_weights(saved) -> None:
        for p, original in saved:
            p.value[...] = original

    # ------------------------------------------------------------------
    def train_epoch(self, x: np.ndarray, labels: np.ndarray) -> Tuple[float, float]:
        """One noisy-forward pass over the data."""
        if self.weight_noise_sigma == 0:
            return super().train_epoch(x, labels)
        x = np.asarray(x, dtype=float)
        labels = np.asarray(labels)
        n = x.shape[0]
        order = self.rng.permutation(n)
        losses: List[float] = []
        correct = 0
        for start in range(0, n, self.batch_size):
            idx = order[start : start + self.batch_size]
            xb, yb = x[idx], labels[idx]
            self.optimizer.zero_grad()
            saved = self._perturb_weights()
            try:
                logits = self.model.forward(xb, training=True)
                value, grad = self.loss(logits, yb)
                if not np.isfinite(value):
                    raise TrainingError(f"loss diverged to {value!r}")
                self.model.backward(grad)
            finally:
                # Gradients were accumulated at the perturbed point but
                # the update applies to the clean weights.
                self._restore_weights(saved)
            self.optimizer.step()
            losses.append(value)
            correct += int((np.argmax(logits, axis=-1) == yb).sum())
        return float(np.mean(losses)), correct / n
