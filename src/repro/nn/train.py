"""Training loop and evaluation helpers."""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..errors import TrainingError
from .losses import CrossEntropyLoss
from .model import Sequential

__all__ = ["TrainingHistory", "Trainer", "evaluate_accuracy"]


@dataclasses.dataclass
class TrainingHistory:
    """Per-epoch metrics collected by :class:`Trainer`."""

    train_loss: List[float] = dataclasses.field(default_factory=list)
    train_accuracy: List[float] = dataclasses.field(default_factory=list)
    val_accuracy: List[float] = dataclasses.field(default_factory=list)

    @property
    def final_val_accuracy(self) -> float:
        """Validation accuracy of the last epoch (or nan if none)."""
        return self.val_accuracy[-1] if self.val_accuracy else float("nan")


def evaluate_accuracy(
    model: Sequential, x: np.ndarray, labels: np.ndarray, batch_size: int = 256
) -> float:
    """Top-1 classification accuracy of ``model`` on ``(x, labels)``."""
    predictions = model.predict(x, batch_size=batch_size)
    return float(np.mean(predictions == np.asarray(labels)))


class Trainer:
    """Mini-batch trainer for classification models.

    Parameters
    ----------
    model:
        The network.
    optimizer:
        Any object with ``zero_grad()`` and ``step()`` over the model's
        parameters (see :mod:`repro.nn.optim`).
    loss:
        Loss callable returning ``(value, grad)``; defaults to softmax
        cross-entropy.
    batch_size:
        Mini-batch size.
    rng:
        Shuffling generator (seeded for reproducibility).
    """

    def __init__(
        self,
        model: Sequential,
        optimizer,
        loss: Optional[Callable] = None,
        batch_size: int = 64,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if batch_size < 1:
            raise TrainingError(f"batch size must be >= 1, got {batch_size!r}")
        self.model = model
        self.optimizer = optimizer
        self.loss = loss if loss is not None else CrossEntropyLoss()
        self.batch_size = batch_size
        self.rng = rng if rng is not None else np.random.default_rng(0)

    # ------------------------------------------------------------------
    def train_epoch(self, x: np.ndarray, labels: np.ndarray) -> Tuple[float, float]:
        """One pass over the data; returns ``(mean_loss, accuracy)``."""
        x = np.asarray(x, dtype=float)
        labels = np.asarray(labels)
        n = x.shape[0]
        order = self.rng.permutation(n)
        losses: List[float] = []
        correct = 0
        for start in range(0, n, self.batch_size):
            idx = order[start : start + self.batch_size]
            xb, yb = x[idx], labels[idx]
            self.optimizer.zero_grad()
            logits = self.model.forward(xb, training=True)
            value, grad = self.loss(logits, yb)
            if not np.isfinite(value):
                raise TrainingError(f"loss diverged to {value!r}")
            self.model.backward(grad)
            self.optimizer.step()
            losses.append(value)
            correct += int((np.argmax(logits, axis=-1) == yb).sum())
        return float(np.mean(losses)), correct / n

    def fit(
        self,
        x: np.ndarray,
        labels: np.ndarray,
        epochs: int,
        x_val: Optional[np.ndarray] = None,
        labels_val: Optional[np.ndarray] = None,
        verbose: bool = False,
    ) -> TrainingHistory:
        """Train for ``epochs`` passes, optionally tracking validation."""
        if epochs < 1:
            raise TrainingError(f"epochs must be >= 1, got {epochs!r}")
        history = TrainingHistory()
        for epoch in range(epochs):
            loss, acc = self.train_epoch(x, labels)
            history.train_loss.append(loss)
            history.train_accuracy.append(acc)
            if x_val is not None and labels_val is not None:
                val_acc = evaluate_accuracy(self.model, x_val, labels_val)
                history.val_accuracy.append(val_acc)
                if verbose:
                    print(
                        f"[{self.model.name}] epoch {epoch + 1}/{epochs} "
                        f"loss={loss:.4f} acc={acc:.3f} val={val_acc:.3f}"
                    )
            elif verbose:
                print(
                    f"[{self.model.name}] epoch {epoch + 1}/{epochs} "
                    f"loss={loss:.4f} acc={acc:.3f}"
                )
        return history
