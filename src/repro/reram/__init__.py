"""ReRAM device and crossbar-array substrate.

Models the storage/compute fabric the paper builds on:

* :mod:`repro.reram.device` — conductance-state device model with
  LRS/HRS bounds (paper Section III-D: 10 kΩ–1 MΩ, restricted to
  50 kΩ–1 MΩ for linear operation).
* :mod:`repro.reram.variation` — process-variation and fault models
  (normal-distributed conductance variation per refs [21, 22]).
* :mod:`repro.reram.cell` — the 1T1R cell (access transistor + device).
* :mod:`repro.reram.crossbar` — the crossbar array: programming, reads,
  ideal analog MVM, column conductance accounting.
* :mod:`repro.reram.nonideal` — wire-parasitic (IR-drop) crossbar model
  solved with modified nodal analysis.
* :mod:`repro.reram.programming` — write-verify programming loop.
"""

from .device import DeviceSpec, ReRAMDevice
from .variation import VariationModel, StuckAtFaultModel, apply_variation
from .cell import OneTransistorOneReRAM
from .crossbar import CrossbarArray
from .nonideal import WireParasitics, IRDropSolver
from .programming import WriteVerifyProgrammer, ProgrammingReport
from .retention import RetentionModel
from .endurance import EnduranceModel

__all__ = [
    "DeviceSpec",
    "ReRAMDevice",
    "VariationModel",
    "StuckAtFaultModel",
    "apply_variation",
    "OneTransistorOneReRAM",
    "CrossbarArray",
    "WireParasitics",
    "IRDropSolver",
    "WriteVerifyProgrammer",
    "ProgrammingReport",
    "RetentionModel",
    "EnduranceModel",
]
