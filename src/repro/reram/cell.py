"""The one-transistor-one-ReRAM (1T1R) cell.

The paper adopts the 1T1R structure (Sections III-D, IV-A): each ReRAM
device is in series with an access transistor that isolates unselected
cells and adds a (small) on-resistance to the selected path.  The cell's
effective conductance during compute is therefore

    G_cell = 1 / (R_device + R_on)        (access on)
    G_cell = G_off_leakage ≈ 0            (access off)
"""

from __future__ import annotations

import dataclasses

from ..errors import DeviceError
from ..units import KILO, PICO
from .device import DeviceSpec, ReRAMDevice

__all__ = ["OneTransistorOneReRAM"]


@dataclasses.dataclass
class OneTransistorOneReRAM:
    """A 1T1R cell: ReRAM device plus access transistor.

    Attributes
    ----------
    device:
        The programmable ReRAM element.
    r_on:
        Access-transistor on-resistance (ohms).
    g_leak:
        Off-state leakage conductance (siemens); effectively zero for a
        healthy transistor but exposed for leakage studies.
    selected:
        Whether the access transistor is currently on.
    """

    device: ReRAMDevice
    r_on: float = 1 * KILO
    g_leak: float = 1 * PICO
    selected: bool = True

    def __post_init__(self) -> None:
        if self.r_on < 0:
            raise DeviceError(f"access on-resistance must be >= 0, got {self.r_on!r}")
        if self.g_leak < 0:
            raise DeviceError(f"leakage must be >= 0, got {self.g_leak!r}")

    @classmethod
    def fresh(cls, spec: DeviceSpec, r_on: float = 1 * KILO) -> "OneTransistorOneReRAM":
        """A cell with a freshly-formed device at HRS."""
        return cls(device=ReRAMDevice(spec), r_on=r_on)

    @property
    def effective_conductance(self) -> float:
        """Conductance seen by the crossbar at this instant."""
        if not self.selected:
            return self.g_leak
        return 1.0 / (self.device.resistance + self.r_on)

    @property
    def effective_resistance(self) -> float:
        """Resistance seen by the crossbar at this instant."""
        g = self.effective_conductance
        if g == 0:
            raise DeviceError("deselected cell with zero leakage has no finite resistance")
        return 1.0 / g

    def select(self) -> None:
        """Turn the access transistor on."""
        self.selected = True

    def deselect(self) -> None:
        """Turn the access transistor off."""
        self.selected = False

    def target_device_conductance(self, g_effective: float) -> float:
        """Device conductance required so the *cell* presents
        ``g_effective``, compensating the series ``r_on``.

        Raises
        ------
        DeviceError
            If ``g_effective`` is unreachable (``1/g_effective <= r_on``).
        """
        if g_effective <= 0:
            raise DeviceError(f"target conductance must be positive, got {g_effective!r}")
        r_total = 1.0 / g_effective
        r_device = r_total - self.r_on
        if r_device <= 0:
            raise DeviceError(
                f"effective conductance {g_effective!r} unreachable with "
                f"access resistance {self.r_on!r}"
            )
        return 1.0 / r_device

    def program_effective(self, g_effective: float) -> None:
        """Program the device so the cell presents ``g_effective``."""
        self.device.program(self.target_device_conductance(g_effective))
