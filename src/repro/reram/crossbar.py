"""Vectorised ReRAM crossbar array.

The array holds an ``(rows, cols)`` conductance matrix ``G``.  Wordlines
(rows) are driven with voltages; each bitline (column) j sinks current

    I_j = Σ_i  V_i · G[i, j]

which is the analog matrix-vector multiplication at the heart of every
ReRAM PIM design (paper Section I).  The ReSiPE engine additionally
needs per-column *total* conductance (Eq. 2) and the Thevenin view of a
column, both provided here.

Non-idealities live elsewhere so the ideal array stays exact:
process variation in :mod:`repro.reram.variation`, wire parasitics in
:mod:`repro.reram.nonideal`.

For Monte-Carlo sweeps, :class:`StackedCrossbar` holds ``T`` conductance
realizations of one programmed array as a single ``(T, rows, cols)``
tensor so all trials evaluate in one broadcast numpy expression (the
trial-stacked fast path of the Fig. 7 / fault-campaign runners).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from ..errors import DeviceError, ShapeError
from .device import DeviceSpec
from .variation import StuckAtFaultModel, VariationModel

__all__ = ["CrossbarArray", "StackedCrossbar"]


class CrossbarArray:
    """A programmable crossbar of ReRAM cells.

    Parameters
    ----------
    rows, cols:
        Array dimensions (wordlines × bitlines).
    spec:
        Device window and quantisation behaviour.
    r_access:
        Series access-transistor on-resistance per cell (ohms); the
        programmed *effective* conductance accounts for it.
    """

    def __init__(
        self,
        rows: int,
        cols: int,
        spec: Optional[DeviceSpec] = None,
        r_access: float = 0.0,
    ) -> None:
        if rows < 1 or cols < 1:
            raise DeviceError(f"array dimensions must be >= 1, got {rows}x{cols}")
        if r_access < 0:
            raise DeviceError(f"access resistance must be >= 0, got {r_access!r}")
        self.rows = rows
        self.cols = cols
        self.spec = spec if spec is not None else DeviceSpec.paper_linear_range()
        self.r_access = r_access
        self._g = np.full((rows, cols), self.spec.g_min, dtype=float)
        self._write_count = 0
        self._column_totals: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Programming
    # ------------------------------------------------------------------
    @property
    def conductances(self) -> np.ndarray:
        """The effective conductance matrix (read-only view)."""
        g = self._g.view()
        g.flags.writeable = False
        return g

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.rows, self.cols)

    @property
    def write_count(self) -> int:
        """Number of whole-array programming operations performed."""
        return self._write_count

    def program(self, g_target: np.ndarray) -> None:
        """Program the array to the target *effective* conductances.

        Targets are quantised to the device window; with non-zero
        ``r_access`` the stored matrix still represents the effective
        (device + access) conductance, i.e. programming is assumed
        write-verified against the effective value (see
        :mod:`repro.reram.programming` for the explicit loop).
        """
        g = np.asarray(g_target, dtype=float)
        if g.shape != (self.rows, self.cols):
            raise ShapeError(
                f"target shape {g.shape} does not match array {self.shape}"
            )
        if np.any(g < 0):
            raise DeviceError("conductance targets must be non-negative")
        self._g = np.asarray(self.spec.quantise(g), dtype=float)
        self._write_count += 1
        self._column_totals = None

    def program_normalised(self, weights: np.ndarray) -> None:
        """Program from normalised weights in ``[0, 1]`` (linear map onto
        the conductance window)."""
        self.program(np.asarray(self.spec.normalised_to_conductance(weights)))

    def perturb(
        self,
        rng: np.random.Generator,
        variation: Optional[VariationModel] = None,
        faults: Optional[StuckAtFaultModel] = None,
    ) -> "CrossbarArray":
        """A *copy* of this array with variation/faults applied.

        The original stays pristine so one programming can be evaluated
        under many Monte-Carlo draws (the Fig. 7 protocol).
        """
        g = self._g
        if variation is not None:
            g = variation.perturb(g, rng, spec=self.spec)
        if faults is not None:
            g = faults.inject(g, rng, self.spec)
        clone = CrossbarArray(self.rows, self.cols, self.spec, self.r_access)
        clone._g = np.asarray(g, dtype=float)
        clone._write_count = self._write_count
        return clone

    def injected(self, injector, rng: np.random.Generator) -> "CrossbarArray":
        """A *copy* of this array disturbed by a
        :class:`~repro.faults.injectors.FaultInjector` (any object with
        ``apply(g, rng, spec)``).  Generalises :meth:`perturb` to the
        full defect landscape — stuck-at cells, retention drift,
        endurance wear, or any composition — while the original stays
        pristine for Monte-Carlo re-draws.
        """
        g = np.asarray(injector.apply(self._g, rng, spec=self.spec),
                       dtype=float)
        if g.shape != (self.rows, self.cols):
            raise ShapeError(
                f"injector changed array shape to {g.shape}, "
                f"expected {self.shape}"
            )
        clone = CrossbarArray(self.rows, self.cols, self.spec, self.r_access)
        clone._g = g
        clone._write_count = self._write_count
        return clone

    # ------------------------------------------------------------------
    # Analog compute
    # ------------------------------------------------------------------
    def mvm_currents(self, voltages: np.ndarray) -> np.ndarray:
        """Ideal bitline currents for wordline ``voltages``.

        Accepts a vector ``(rows,)`` or a batch ``(n, rows)``; returns
        ``(cols,)`` or ``(n, cols)`` respectively.
        """
        v = np.asarray(voltages, dtype=float)
        if v.shape[-1] != self.rows:
            raise ShapeError(
                f"voltage vector length {v.shape[-1]} != rows {self.rows}"
            )
        return v @ self._g

    def column_total_conductance(self) -> np.ndarray:
        """Per-column ``Σ_i G[i, j]`` — the paper's Eq. 2 denominator.

        Cached between programming operations: every ``mvm_values`` call
        (and the saturation-compensation branch) needs it, so a hot
        inference loop would otherwise re-reduce the matrix per sample
        batch.  ``program`` invalidates; ``perturb``/``injected`` clones
        start fresh via ``__init__``.
        """
        if self._column_totals is None:
            totals = self._g.sum(axis=0)
            totals.flags.writeable = False
            self._column_totals = totals
        return self._column_totals

    def column_thevenin(self, voltages: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Per-column Thevenin equivalents seen by the COG capacitors.

        Returns ``(v_eq, r_eq)`` arrays of length ``cols`` (Eq. 2):

            V_eq,j = Σ_i V_i G_ij / Σ_i G_ij,   R_eq,j = 1 / Σ_i G_ij
        """
        v = np.asarray(voltages, dtype=float)
        if v.shape != (self.rows,):
            raise ShapeError(f"expected voltages of shape ({self.rows},), got {v.shape}")
        total = self.column_total_conductance()
        if np.any(total <= 0):
            raise DeviceError("a column has zero total conductance")
        v_eq = (v @ self._g) / total
        return v_eq, 1.0 / total

    def exceeds_linear_limit(self, g_limit_total: float) -> np.ndarray:
        """Boolean mask of columns whose total conductance exceeds the
        linear-operation bound (paper: 1.6 mS)."""
        return self.column_total_conductance() > g_limit_total

    def compute_power(self, voltages: np.ndarray) -> float:
        """Instantaneous ohmic power drawn from the wordline drivers with
        bitlines held near ground (watts): ``Σ_ij V_i² G_ij``."""
        v = np.asarray(voltages, dtype=float)
        if v.shape != (self.rows,):
            raise ShapeError(f"expected voltages of shape ({self.rows},), got {v.shape}")
        return float((v**2) @ self._g.sum(axis=1))

    def __repr__(self) -> str:
        return (
            f"CrossbarArray({self.rows}x{self.cols}, "
            f"window [{self.spec.g_min:.2e}, {self.spec.g_max:.2e}] S)"
        )


class StackedCrossbar:
    """A stack of ``T`` Monte-Carlo conductance realizations of one array.

    Holds the trials as a single ``(T, rows, cols)`` tensor so the analog
    MVM for *all* trials and the whole input batch collapses into one
    broadcast ``np.matmul`` — ``(batch, rows) @ (T, rows, cols)`` →
    ``(T, batch, cols)``.  numpy evaluates that broadcast product
    slice-by-slice with the same 2-D GEMM kernel used for a lone trial,
    so stacked results are *bit-identical* to running each realization
    through :meth:`CrossbarArray.mvm_currents` separately (the property
    the reproducibility suite pins down).

    Instances are immutable snapshots: build one from already-perturbed
    :class:`CrossbarArray` clones via :meth:`from_arrays`.
    """

    def __init__(self, conductances: np.ndarray, spec: DeviceSpec) -> None:
        g = np.asarray(conductances, dtype=float)
        if g.ndim != 3:
            raise ShapeError(
                f"stacked conductances must be (T, rows, cols), got {g.shape}"
            )
        if g.shape[0] < 1:
            raise DeviceError("stack must hold at least one trial")
        self._g = g
        self.spec = spec
        self._column_totals: Optional[np.ndarray] = None

    @classmethod
    def from_arrays(cls, arrays: Sequence[CrossbarArray]) -> "StackedCrossbar":
        """Stack per-trial :class:`CrossbarArray` realizations.

        All arrays must share one shape (they are clones of the same
        programmed tile, differing only in the Monte-Carlo draw).
        """
        if not arrays:
            raise DeviceError("cannot stack an empty sequence of arrays")
        shapes = {a.shape for a in arrays}
        if len(shapes) > 1:
            raise ShapeError(f"arrays disagree on shape: {sorted(shapes)}")
        return cls(np.stack([a.conductances for a in arrays]), arrays[0].spec)

    @property
    def trials(self) -> int:
        return self._g.shape[0]

    @property
    def rows(self) -> int:
        return self._g.shape[1]

    @property
    def cols(self) -> int:
        return self._g.shape[2]

    @property
    def shape(self) -> Tuple[int, int, int]:
        return self._g.shape  # type: ignore[return-value]

    @property
    def conductances(self) -> np.ndarray:
        """The ``(T, rows, cols)`` tensor (read-only view)."""
        g = self._g.view()
        g.flags.writeable = False
        return g

    def mvm_currents(self, voltages: np.ndarray, backend=None) -> np.ndarray:
        """Bitline currents for every trial at once.

        Accepts ``(rows,)``, ``(batch, rows)`` or per-trial inputs
        ``(T, batch, rows)``; returns ``(T, cols)``, ``(T, batch, cols)``
        or ``(T, batch, cols)`` respectively via the broadcast batched
        matmul of ``backend`` (a
        :class:`~repro.kernels.ComputeBackend` or a name for
        :func:`~repro.kernels.get_backend`; default numpy — the
        byte-identical reference).
        """
        from ..kernels import get_backend

        v = np.asarray(voltages, dtype=float)
        if v.shape[-1] != self.rows:
            raise ShapeError(
                f"voltage vector length {v.shape[-1]} != rows {self.rows}"
            )
        if v.ndim == 3 and v.shape[0] != self.trials:
            raise ShapeError(
                f"per-trial voltages have {v.shape[0]} trials, "
                f"stack holds {self.trials}"
            )
        return get_backend(backend).matmul(v, self._g)

    def column_total_conductance(self) -> np.ndarray:
        """Per-trial, per-column ``Σ_i G[t, i, j]`` of shape ``(T, cols)``."""
        if self._column_totals is None:
            totals = self._g.sum(axis=1)
            totals.flags.writeable = False
            self._column_totals = totals
        return self._column_totals

    def __repr__(self) -> str:
        return (
            f"StackedCrossbar({self.trials} trials x "
            f"{self.rows}x{self.cols})"
        )
