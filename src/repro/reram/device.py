"""ReRAM device model.

A device is characterised by its conductance window ``[g_min, g_max]``
(equivalently a resistance window ``[r_lrs, r_hrs]`` with
``g_max = 1/r_lrs``).  The paper uses a 65 nm 1T1R cell with
LRS = 10 kΩ / HRS = 1 MΩ, then restricts the usable range to
50 kΩ–1 MΩ so that a 32-cell column stays within the Σ G ≤ 1.6 mS
linear-operation bound (Section III-D).

Weights are stored as *analog* conductances inside the window; an
optional level count models multi-level-cell quantisation.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Union

import numpy as np

from ..errors import DeviceError
from ..units import KILO, MEGA

ArrayLike = Union[float, np.ndarray]

__all__ = ["DeviceSpec", "ReRAMDevice"]


@dataclasses.dataclass(frozen=True)
class DeviceSpec:
    """Static parameters of a ReRAM device.

    Attributes
    ----------
    r_lrs:
        Low-resistance state (ohms) — the maximum usable conductance.
    r_hrs:
        High-resistance state (ohms) — the minimum usable conductance.
    levels:
        Number of programmable conductance levels (``None`` = continuous
        analog programming).  Levels are spaced uniformly in conductance.
    write_voltage:
        SET/RESET pulse amplitude (volts), used by energy models.
    write_pulse:
        Programming pulse duration (seconds), used by energy models.
    """

    r_lrs: float = 50 * KILO
    r_hrs: float = 1 * MEGA
    levels: Optional[int] = None
    write_voltage: float = 2.0
    write_pulse: float = 10e-9

    def __post_init__(self) -> None:
        if self.r_lrs <= 0 or self.r_hrs <= 0:
            raise DeviceError("resistance states must be positive")
        if self.r_lrs >= self.r_hrs:
            raise DeviceError(
                f"LRS ({self.r_lrs}) must be below HRS ({self.r_hrs})"
            )
        if self.levels is not None and self.levels < 2:
            raise DeviceError(f"need at least 2 levels, got {self.levels}")
        if self.write_voltage <= 0 or self.write_pulse <= 0:
            raise DeviceError("write voltage and pulse must be positive")

    @classmethod
    def paper_full_range(cls) -> "DeviceSpec":
        """The raw device window used in Section III-D (10 kΩ–1 MΩ)."""
        return cls(r_lrs=10 * KILO, r_hrs=1 * MEGA)

    @classmethod
    def paper_linear_range(cls) -> "DeviceSpec":
        """The restricted window (50 kΩ–1 MΩ) that keeps a 32-cell column
        within the Σ G ≤ 1.6 mS linear bound."""
        return cls(r_lrs=50 * KILO, r_hrs=1 * MEGA)

    @property
    def g_min(self) -> float:
        """Minimum conductance (HRS), siemens."""
        return 1.0 / self.r_hrs

    @property
    def g_max(self) -> float:
        """Maximum conductance (LRS), siemens."""
        return 1.0 / self.r_lrs

    @property
    def g_range(self) -> float:
        """Usable conductance span ``g_max - g_min``."""
        return self.g_max - self.g_min

    @property
    def dynamic_range(self) -> float:
        """``g_max / g_min`` (the paper's windows give 20x and 100x)."""
        return self.g_max / self.g_min

    def clip(self, g: ArrayLike) -> ArrayLike:
        """Clip conductances into the device window."""
        out = np.clip(np.asarray(g, dtype=float), self.g_min, self.g_max)
        return out if np.ndim(out) else float(out)

    def contains(self, g: ArrayLike) -> Union[bool, np.ndarray]:
        """Whether conductance(s) lie inside the window (inclusive, with
        a small relative tolerance for float round-off)."""
        g = np.asarray(g, dtype=float)
        tol = 1e-12
        ok = (g >= self.g_min * (1 - tol)) & (g <= self.g_max * (1 + tol))
        return ok if ok.ndim else bool(ok)

    def quantise(self, g: ArrayLike) -> ArrayLike:
        """Snap conductances to the nearest programmable level.

        With ``levels=None`` this is just a clip.
        """
        g = self.clip(g)
        if self.levels is None:
            return g
        step = self.g_range / (self.levels - 1)
        idx = np.round((np.asarray(g, dtype=float) - self.g_min) / step)
        out = self.g_min + idx * step
        return out if np.ndim(out) else float(out)

    def normalised_to_conductance(self, w: ArrayLike) -> ArrayLike:
        """Map normalised weights ``w ∈ [0, 1]`` linearly onto the window."""
        w = np.asarray(w, dtype=float)
        if np.any(w < -1e-12) or np.any(w > 1 + 1e-12):
            raise DeviceError("normalised weights must lie in [0, 1]")
        out = self.g_min + np.clip(w, 0.0, 1.0) * self.g_range
        return out if np.ndim(out) else float(out)

    def conductance_to_normalised(self, g: ArrayLike) -> ArrayLike:
        """Inverse of :meth:`normalised_to_conductance`."""
        g = np.asarray(g, dtype=float)
        if not np.all(self.contains(g)):
            raise DeviceError("conductance outside device window")
        out = (g - self.g_min) / self.g_range
        return out if np.ndim(out) else float(out)


class ReRAMDevice:
    """A single programmable ReRAM device instance.

    Tracks its programmed conductance and cumulative write count (for
    endurance accounting).  Array-scale simulation uses
    :class:`~repro.reram.crossbar.CrossbarArray` (vectorised) instead of
    per-device objects; this class exists for unit-level modelling and
    the programming loop.
    """

    def __init__(self, spec: DeviceSpec, initial_g: Optional[float] = None) -> None:
        self.spec = spec
        if initial_g is None:
            initial_g = spec.g_min
        if not spec.contains(initial_g):
            raise DeviceError(
                f"initial conductance {initial_g!r} outside window "
                f"[{spec.g_min!r}, {spec.g_max!r}]"
            )
        self._g = float(initial_g)
        self._writes = 0

    @property
    def conductance(self) -> float:
        """Current programmed conductance (siemens)."""
        return self._g

    @property
    def resistance(self) -> float:
        """Current resistance (ohms)."""
        return 1.0 / self._g

    @property
    def write_count(self) -> int:
        """Number of programming pulses applied so far."""
        return self._writes

    def program(self, g_target: float) -> None:
        """Program to ``g_target`` (clipped and quantised to the window)."""
        self._g = float(self.spec.quantise(g_target))
        self._writes += 1

    def nudge(self, delta_g: float) -> None:
        """Incremental SET/RESET step (used by write-verify loops)."""
        self._g = float(self.spec.clip(self._g + delta_g))
        self._writes += 1

    def read_current(self, voltage: float) -> float:
        """Ohmic read current at ``voltage`` (amps)."""
        return voltage * self._g

    def write_energy(self) -> float:
        """Energy of one programming pulse, ``V² G t`` (joules)."""
        return self.spec.write_voltage**2 * self._g * self.spec.write_pulse
