"""Write-endurance model: the conductance window closes with cycling.

ReRAM cells degrade with programming cycles: the low-resistance state
drifts up and the high-resistance state drifts down until the window
collapses (typical quoted endurance 10⁶–10⁹ cycles).  The standard
empirical form is power-law window closure

    g_max(n) = g_max0 − (g_max0 − g_mid) · (n / N_end)^β
    g_min(n) = g_min0 + (g_mid − g_min0) · (n / N_end)^β

with ``g_mid`` the window midpoint and β ≈ 1–2.  Inference-only PIM
(this paper's use case) writes rarely, but the write-verify programming
loop and any in-field recalibration consume cycles; this model lets the
programming/energy studies bound useful lifetime.
"""

from __future__ import annotations

import dataclasses

from ..errors import DeviceError
from .device import DeviceSpec

__all__ = ["EnduranceModel"]


@dataclasses.dataclass(frozen=True)
class EnduranceModel:
    """Power-law conductance-window closure with cycling.

    Attributes
    ----------
    endurance_cycles:
        Cycle count at which the window fully collapses to its midpoint.
    beta:
        Closure exponent (1 = linear in cycles, 2 = accelerating).
    """

    endurance_cycles: float = 1e7
    beta: float = 1.5

    def __post_init__(self) -> None:
        if self.endurance_cycles <= 0:
            raise DeviceError("endurance must be positive")
        if self.beta <= 0:
            raise DeviceError("beta must be positive")

    def closure_fraction(self, cycles: float) -> float:
        """Fraction of the window lost after ``cycles`` writes (0–1)."""
        if cycles < 0:
            raise DeviceError(f"cycles must be >= 0, got {cycles!r}")
        return min(1.0, (cycles / self.endurance_cycles) ** self.beta)

    def degraded_spec(self, spec: DeviceSpec, cycles: float) -> DeviceSpec:
        """The device window after ``cycles`` programming cycles.

        Raises
        ------
        DeviceError
            If the window has fully collapsed (no usable device left).
        """
        fraction = self.closure_fraction(cycles)
        g_mid = 0.5 * (spec.g_min + spec.g_max)
        g_max = spec.g_max - (spec.g_max - g_mid) * fraction
        g_min = spec.g_min + (g_mid - spec.g_min) * fraction
        if g_max <= g_min:
            raise DeviceError(
                f"window collapsed after {cycles:.3g} cycles "
                f"(endurance {self.endurance_cycles:.3g})"
            )
        return dataclasses.replace(
            spec, r_lrs=1.0 / g_max, r_hrs=1.0 / g_min
        )

    def remaining_dynamic_range(self, spec: DeviceSpec, cycles: float) -> float:
        """``g_max/g_min`` of the degraded window."""
        degraded = self.degraded_spec(spec, cycles)
        return degraded.dynamic_range

    def cycles_to_dynamic_range(
        self, spec: DeviceSpec, target_range: float, resolution: int = 64
    ) -> float:
        """Cycles until the dynamic range falls to ``target_range``
        (bisection on the closed-form window)."""
        if target_range <= 1:
            raise DeviceError("target dynamic range must exceed 1")
        if spec.dynamic_range <= target_range:
            return 0.0
        lo, hi = 0.0, self.endurance_cycles
        for _ in range(resolution):
            mid = 0.5 * (lo + hi)
            try:
                reached = self.remaining_dynamic_range(spec, mid) <= target_range
            except DeviceError:
                reached = True
            if reached:
                hi = mid
            else:
                lo = mid
        return hi
