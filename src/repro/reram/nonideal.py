"""Wire-parasitic (IR-drop) crossbar model.

The ideal array assumes every cell sees the full wordline voltage and a
perfectly grounded bitline.  In a real crossbar the metal lines have
per-segment resistance, so cells far from the drivers see degraded
voltages — the classic IR-drop accuracy loss.  This module builds the
full resistive network (one node per cell per line) and solves it with
the MNA engine, providing the substrate for the IR-drop ablation bench.

Topology (for an R×C array):

* wordline i: driver node ``wl_i_0`` … ``wl_i_{C-1}``, adjacent nodes
  joined by ``r_wire_wl``; the driver (ideal source) feeds ``wl_i_0``.
* bitline j: nodes ``bl_0_j`` … ``bl_{R-1}_j`` joined by ``r_wire_bl``;
  the last node connects to ground through ``r_sense`` (the
  virtual-ground sense resistance).
* cell (i, j): resistor ``1/G[i,j]`` from ``wl_i_j`` to ``bl_i_j``.
"""

from __future__ import annotations

import dataclasses
from typing import Tuple

import numpy as np

from ..circuits.mna import DCCircuit
from ..errors import DeviceError, ShapeError
from ..units import GIGA, NANO
from .crossbar import CrossbarArray

__all__ = ["WireParasitics", "IRDropSolver", "ParasiticThevenin"]


@dataclasses.dataclass(frozen=True)
class ParasiticThevenin:
    """Precomputed parasitic-aware column Thevenin equivalents.

    Attributes
    ----------
    response:
        ``(cols, rows)`` linear map from wordline drive voltages to
        per-column open-circuit voltages: ``V_oc = response @ v``.
    r_eq:
        Per-column Thevenin resistance (ohms), including wire segments.
    """

    response: np.ndarray
    r_eq: np.ndarray

    def __post_init__(self) -> None:
        response = np.asarray(self.response, dtype=float)
        r_eq = np.asarray(self.r_eq, dtype=float)
        if response.ndim != 2 or r_eq.shape != (response.shape[0],):
            raise ShapeError(
                f"inconsistent Thevenin shapes: {response.shape} vs {r_eq.shape}"
            )
        if np.any(r_eq <= 0):
            raise DeviceError("Thevenin resistances must be positive")
        object.__setattr__(self, "response", response)
        object.__setattr__(self, "r_eq", r_eq)

    def v_eq(self, voltages: np.ndarray) -> np.ndarray:
        """Open-circuit column voltages for drive vector(s).

        Accepts ``(rows,)`` or ``(batch, rows)``; returns ``(cols,)`` or
        ``(batch, cols)``.
        """
        v = np.asarray(voltages, dtype=float)
        if v.shape[-1] != self.response.shape[1]:
            raise ShapeError(
                f"drive vector length {v.shape[-1]} != rows "
                f"{self.response.shape[1]}"
            )
        return v @ self.response.T


@dataclasses.dataclass(frozen=True)
class WireParasitics:
    """Per-segment interconnect resistances.

    Typical 65 nm crossbar values are ~1–3 Ω per cell pitch; the default
    2.5 Ω follows common ReRAM PIM modelling practice (e.g. the ISAAC /
    PRIME line of work).
    """

    r_wire_wl: float = 2.5
    r_wire_bl: float = 2.5
    r_sense: float = 1.0

    def __post_init__(self) -> None:
        if self.r_wire_wl < 0 or self.r_wire_bl < 0:
            raise DeviceError("wire resistances must be >= 0")
        if self.r_sense <= 0:
            raise DeviceError("sense resistance must be positive")

    @classmethod
    def ideal(cls) -> "WireParasitics":
        """Vanishingly small parasitics (sanity-check configuration)."""
        return cls(r_wire_wl=1 * NANO, r_wire_bl=1 * NANO, r_sense=1 * NANO)


class IRDropSolver:
    """Solves the parasitic crossbar network for bitline currents."""

    def __init__(self, array: CrossbarArray, parasitics: WireParasitics) -> None:
        self.array = array
        self.parasitics = parasitics

    def solve_currents(self, voltages: np.ndarray) -> np.ndarray:
        """Bitline sense currents under wordline ``voltages``.

        Returns an array of length ``cols``.  With
        :meth:`WireParasitics.ideal` this converges to the ideal
        ``v @ G`` result.
        """
        v = np.asarray(voltages, dtype=float)
        if v.shape != (self.array.rows,):
            raise ShapeError(
                f"expected voltages of shape ({self.array.rows},), got {v.shape}"
            )
        rows, cols = self.array.shape
        g = self.array.conductances
        p = self.parasitics

        circuit = DCCircuit()
        # Wordline drivers and segments.
        for i in range(rows):
            circuit.add_voltage_source(f"wl_{i}_0", float(v[i]), name=f"drv{i}")
            for j in range(cols - 1):
                circuit.add_resistor(
                    f"wl_{i}_{j}", f"wl_{i}_{j + 1}",
                    max(p.r_wire_wl, 1e-12), name=f"rwl_{i}_{j}",
                )
        # Bitline segments and sense resistors.
        for j in range(cols):
            for i in range(rows - 1):
                circuit.add_resistor(
                    f"bl_{i}_{j}", f"bl_{i + 1}_{j}",
                    max(p.r_wire_bl, 1e-12), name=f"rbl_{i}_{j}",
                )
            circuit.add_resistor(
                f"bl_{rows - 1}_{j}", "gnd", p.r_sense, name=f"rs_{j}"
            )
        # Cells.
        for i in range(rows):
            for j in range(cols):
                g_ij = g[i, j]
                if g_ij <= 0:
                    continue
                circuit.add_resistor(
                    f"wl_{i}_{j}", f"bl_{i}_{j}", 1.0 / g_ij, name=f"cell_{i}_{j}"
                )

        solution = circuit.solve()
        currents = np.empty(cols, dtype=float)
        for j in range(cols):
            v_sense = solution.voltage(f"bl_{rows - 1}_{j}")
            currents[j] = v_sense / p.r_sense
        return currents

    # ------------------------------------------------------------------
    # Thevenin extraction (feeds the parasitic-aware ReSiPE engine)
    # ------------------------------------------------------------------
    def column_thevenin(self) -> "ParasiticThevenin":
        """Extract per-column Thevenin equivalents *including* wire
        parasitics, seen by the COG capacitors at the bitline feet.

        The network is linear, so the open-circuit column voltage is a
        linear map of the wordline drive vector: ``V_oc = A v``.  ``A``
        (cols × rows) and the per-column Thevenin resistance are
        precomputed with one MNA solve per wordline plus one per column,
        after which parasitic-aware MVMs cost the same as ideal ones.
        """
        rows, cols = self.array.shape
        # Response matrix: superposition over unit wordline drives, with
        # the sense feet open (approximated by a huge sense resistance).
        response = np.empty((cols, rows), dtype=float)
        for i in range(rows):
            unit = np.zeros(rows)
            unit[i] = 1.0
            # 1e9 Ohm approximates an open sense foot while keeping the
            # MNA system well conditioned against the ~mOhm wire floor.
            solution = self._solve_with_sense(unit, sense_resistance=1 * GIGA)
            for j in range(cols):
                response[j, i] = solution.voltage(f"bl_{rows - 1}_{j}")
        # Thevenin resistance per column: drive 1 A into the sense foot
        # with every wordline driver at 0 V.
        r_eq = np.empty(cols, dtype=float)
        for j in range(cols):
            circuit = self._build_network(np.zeros(rows), sense_resistance=None)
            circuit.add_current_source(f"bl_{rows - 1}_{j}", 1.0, name="probe")
            solution = circuit.solve()
            r_eq[j] = solution.voltage(f"bl_{rows - 1}_{j}")
        return ParasiticThevenin(response=response, r_eq=r_eq)

    def _build_network(self, voltages: np.ndarray, sense_resistance):
        """Assemble the crossbar netlist (sense resistors optional)."""
        rows, cols = self.array.shape
        g = self.array.conductances
        p = self.parasitics
        circuit = DCCircuit()
        for i in range(rows):
            circuit.add_voltage_source(f"wl_{i}_0", float(voltages[i]), name=f"drv{i}")
            for j in range(cols - 1):
                circuit.add_resistor(
                    f"wl_{i}_{j}", f"wl_{i}_{j + 1}",
                    max(p.r_wire_wl, 1e-3), name=f"rwl_{i}_{j}",
                )
        for j in range(cols):
            for i in range(rows - 1):
                circuit.add_resistor(
                    f"bl_{i}_{j}", f"bl_{i + 1}_{j}",
                    max(p.r_wire_bl, 1e-3), name=f"rbl_{i}_{j}",
                )
            if sense_resistance is not None:
                circuit.add_resistor(
                    f"bl_{rows - 1}_{j}", "gnd", sense_resistance, name=f"rs_{j}"
                )
        for i in range(rows):
            for j in range(cols):
                if g[i, j] > 0:
                    circuit.add_resistor(
                        f"wl_{i}_{j}", f"bl_{i}_{j}", 1.0 / g[i, j],
                        name=f"cell_{i}_{j}",
                    )
        return circuit

    def _solve_with_sense(self, voltages: np.ndarray, sense_resistance: float):
        return self._build_network(voltages, sense_resistance).solve()

    def error_vs_ideal(self, voltages: np.ndarray) -> Tuple[np.ndarray, float]:
        """Per-column relative current error and its maximum.

        Returns ``(relative_errors, max_relative_error)`` where the
        reference is the ideal ``v @ G`` current.  Columns whose ideal
        current is zero are reported as zero error.
        """
        ideal = self.array.mvm_currents(np.asarray(voltages, dtype=float))
        actual = self.solve_currents(voltages)
        denom = np.where(np.abs(ideal) > 0, np.abs(ideal), 1.0)
        rel = np.abs(actual - ideal) / denom
        rel = np.where(np.abs(ideal) > 0, rel, 0.0)
        return rel, float(rel.max())
