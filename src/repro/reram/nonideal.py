"""Wire-parasitic (IR-drop) crossbar model.

The ideal array assumes every cell sees the full wordline voltage and a
perfectly grounded bitline.  In a real crossbar the metal lines have
per-segment resistance, so cells far from the drivers see degraded
voltages — the classic IR-drop accuracy loss.  This module builds the
full resistive network (one node per cell per line) and solves it with
the MNA engine, providing the substrate for the IR-drop ablation bench.

Topology (for an R×C array):

* wordline i: driver node ``wl_i_0`` … ``wl_i_{C-1}``, adjacent nodes
  joined by ``r_wire_wl``; the driver (ideal source) feeds ``wl_i_0``.
* bitline j: nodes ``bl_0_j`` … ``bl_{R-1}_j`` joined by ``r_wire_bl``;
  the last node connects to ground through ``r_sense`` (the
  virtual-ground sense resistance).
* cell (i, j): resistor ``1/G[i,j]`` from ``wl_i_j`` to ``bl_i_j``.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from ..circuits.mna import _SPARSE_THRESHOLD
from ..errors import CircuitError, DeviceError, ShapeError
from ..units import GIGA, NANO
from .crossbar import CrossbarArray

__all__ = ["WireParasitics", "IRDropSolver", "ParasiticThevenin"]


@dataclasses.dataclass(frozen=True)
class ParasiticThevenin:
    """Precomputed parasitic-aware column Thevenin equivalents.

    Attributes
    ----------
    response:
        ``(cols, rows)`` linear map from wordline drive voltages to
        per-column open-circuit voltages: ``V_oc = response @ v``.
    r_eq:
        Per-column Thevenin resistance (ohms), including wire segments.
    """

    response: np.ndarray
    r_eq: np.ndarray

    def __post_init__(self) -> None:
        response = np.asarray(self.response, dtype=float)
        r_eq = np.asarray(self.r_eq, dtype=float)
        if response.ndim != 2 or r_eq.shape != (response.shape[0],):
            raise ShapeError(
                f"inconsistent Thevenin shapes: {response.shape} vs {r_eq.shape}"
            )
        if np.any(r_eq <= 0):
            raise DeviceError("Thevenin resistances must be positive")
        object.__setattr__(self, "response", response)
        object.__setattr__(self, "r_eq", r_eq)

    def v_eq(self, voltages: np.ndarray) -> np.ndarray:
        """Open-circuit column voltages for drive vector(s).

        Accepts ``(rows,)`` or ``(batch, rows)``; returns ``(cols,)`` or
        ``(batch, cols)``.
        """
        v = np.asarray(voltages, dtype=float)
        if v.shape[-1] != self.response.shape[1]:
            raise ShapeError(
                f"drive vector length {v.shape[-1]} != rows "
                f"{self.response.shape[1]}"
            )
        return v @ self.response.T


@dataclasses.dataclass(frozen=True)
class WireParasitics:
    """Per-segment interconnect resistances.

    Typical 65 nm crossbar values are ~1–3 Ω per cell pitch; the default
    2.5 Ω follows common ReRAM PIM modelling practice (e.g. the ISAAC /
    PRIME line of work).
    """

    r_wire_wl: float = 2.5
    r_wire_bl: float = 2.5
    r_sense: float = 1.0

    def __post_init__(self) -> None:
        if self.r_wire_wl < 0 or self.r_wire_bl < 0:
            raise DeviceError("wire resistances must be >= 0")
        if self.r_sense <= 0:
            raise DeviceError("sense resistance must be positive")

    @classmethod
    def ideal(cls) -> "WireParasitics":
        """Vanishingly small parasitics (sanity-check configuration)."""
        return cls(r_wire_wl=1 * NANO, r_wire_bl=1 * NANO, r_sense=1 * NANO)


class IRDropSolver:
    """Solves the parasitic crossbar network for bitline currents.

    The MNA system is assembled with vectorized index arithmetic — node
    numbers are computed from ``(row, col)`` grids and all resistor
    stamps land through batched scatter-adds, with no per-cell Python
    loop.  Drive voltages only enter the right-hand side, so the matrix
    (and its LU factorization) depends solely on the conductance state;
    both are cached per :attr:`CrossbarArray.write_count` and reused
    across drive vectors.

    Node layout for an R×C array (``gnd`` is eliminated): wordline node
    ``(i, j)`` is unknown ``i*C + j``, bitline node ``(i, j)`` is
    ``R*C + i*C + j``, and the R wordline-driver source currents occupy
    the last R unknowns.
    """

    def __init__(self, array: CrossbarArray, parasitics: WireParasitics) -> None:
        self.array = array
        self.parasitics = parasitics
        self._factor_cache: Dict[tuple, Callable[[np.ndarray], np.ndarray]] = {}

    # ------------------------------------------------------------------
    # Vectorized MNA assembly + cached factorization
    # ------------------------------------------------------------------
    def _stamps(
        self, sense_resistance: Optional[float], wire_floor: float
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, int, int]:
        """COO triplets ``(i, j, value)`` of the MNA matrix.

        ``sense_resistance`` of None leaves the bitline feet open (the
        Thevenin-resistance probe configuration); ``wire_floor`` clamps
        vanishing wire resistances for conditioning.
        """
        rows, cols = self.array.shape
        g = self.array.conductances
        p = self.parasitics
        wl = np.arange(rows * cols).reshape(rows, cols)
        bl = wl + rows * cols
        n = 2 * rows * cols

        ii: list = []
        jj: list = []
        vv: list = []

        def stamp_between(a: np.ndarray, b: np.ndarray,
                          cond: np.ndarray) -> None:
            ii.extend((a, b, a, b))
            jj.extend((a, b, b, a))
            vv.extend((cond, cond, -cond, -cond))

        if cols > 1:
            a = wl[:, :-1].ravel()
            g_wl = 1.0 / max(p.r_wire_wl, wire_floor)
            stamp_between(a, wl[:, 1:].ravel(), np.full(a.size, g_wl))
        if rows > 1:
            a = bl[:-1, :].ravel()
            g_bl = 1.0 / max(p.r_wire_bl, wire_floor)
            stamp_between(a, bl[1:, :].ravel(), np.full(a.size, g_bl))
        feet = bl[rows - 1]
        if sense_resistance is not None:
            ii.append(feet)
            jj.append(feet)
            vv.append(np.full(cols, 1.0 / sense_resistance))
        mask = g > 0
        if np.any(mask):
            stamp_between(wl[mask], bl[mask], g[mask])
        # Wordline drivers: ideal sources into column-0 nodes.
        drivers = wl[:, 0]
        source_rows = n + np.arange(rows)
        ii.extend((drivers, source_rows))
        jj.extend((source_rows, drivers))
        vv.extend((np.ones(rows), np.ones(rows)))

        return (
            np.concatenate(ii),
            np.concatenate(jj),
            np.concatenate(vv),
            n + rows,
            n,
        )

    def _factorization(
        self, sense_resistance: Optional[float], wire_floor: float
    ) -> Callable[[np.ndarray], np.ndarray]:
        """LU solve closure for the current conductance state (cached)."""
        key = (self.array.write_count, sense_resistance, wire_floor)
        cached = self._factor_cache.get(key)
        if cached is not None:
            return cached
        i_idx, j_idx, vals, size, _n = self._stamps(
            sense_resistance, wire_floor
        )
        try:
            if size > _SPARSE_THRESHOLD:
                import scipy.sparse as sp
                import scipy.sparse.linalg as spla

                system = sp.csc_matrix(
                    (vals, (i_idx, j_idx)), shape=(size, size)
                )
                lu = spla.splu(system)
                solve = lu.solve
            else:
                import scipy.linalg as sla

                matrix = np.zeros((size, size), dtype=float)
                np.add.at(matrix, (i_idx, j_idx), vals)
                lu_piv = sla.lu_factor(matrix)

                def solve(rhs: np.ndarray) -> np.ndarray:
                    return sla.lu_solve(lu_piv, rhs)
        except Exception as exc:  # singular matrix, etc.
            raise CircuitError(f"MNA factorization failed: {exc}") from exc
        self._factor_cache[key] = solve
        return solve

    def _solve(self, solve: Callable[[np.ndarray], np.ndarray],
               rhs: np.ndarray) -> np.ndarray:
        solution = solve(rhs)
        if not np.all(np.isfinite(solution)):
            raise CircuitError(
                "MNA solve produced non-finite voltages "
                "(floating subcircuit?)"
            )
        return solution

    def solve_currents(self, voltages: np.ndarray) -> np.ndarray:
        """Bitline sense currents under wordline ``voltages``.

        Returns an array of length ``cols``.  With
        :meth:`WireParasitics.ideal` this converges to the ideal
        ``v @ G`` result.
        """
        v = np.asarray(voltages, dtype=float)
        if v.shape != (self.array.rows,):
            raise ShapeError(
                f"expected voltages of shape ({self.array.rows},), got {v.shape}"
            )
        rows, cols = self.array.shape
        p = self.parasitics
        solve = self._factorization(p.r_sense, 1e-12)
        n = 2 * rows * cols
        rhs = np.zeros(n + rows, dtype=float)
        rhs[n:] = v
        solution = self._solve(solve, rhs)
        feet = (2 * rows - 1) * cols + np.arange(cols)
        return solution[feet] / p.r_sense

    # ------------------------------------------------------------------
    # Thevenin extraction (feeds the parasitic-aware ReSiPE engine)
    # ------------------------------------------------------------------
    def column_thevenin(self) -> "ParasiticThevenin":
        """Extract per-column Thevenin equivalents *including* wire
        parasitics, seen by the COG capacitors at the bitline feet.

        The network is linear, so the open-circuit column voltage is a
        linear map of the wordline drive vector: ``V_oc = A v``.  ``A``
        (cols × rows) and the per-column Thevenin resistance come from
        two cached factorizations solved against batched right-hand
        sides (all unit drives at once, all column probes at once),
        after which parasitic-aware MVMs cost the same as ideal ones.
        """
        rows, cols = self.array.shape
        n = 2 * rows * cols
        feet = (2 * rows - 1) * cols + np.arange(cols)
        # Response matrix: superposition over unit wordline drives, with
        # the sense feet open — 1e9 Ohm approximates an open foot while
        # keeping the system well conditioned against the ~mOhm wire
        # floor.
        solve = self._factorization(1 * GIGA, 1e-3)
        rhs = np.zeros((n + rows, rows), dtype=float)
        rhs[n:, :] = np.eye(rows)
        response = self._solve(solve, rhs)[feet, :]
        # Thevenin resistance per column: drive 1 A into the sense foot
        # with every wordline driver at 0 V and no sense resistors.
        solve_open = self._factorization(None, 1e-3)
        rhs = np.zeros((n + rows, cols), dtype=float)
        rhs[feet, np.arange(cols)] = 1.0
        r_eq = self._solve(solve_open, rhs)[feet, np.arange(cols)]
        return ParasiticThevenin(response=response, r_eq=r_eq)

    def error_vs_ideal(self, voltages: np.ndarray) -> Tuple[np.ndarray, float]:
        """Per-column relative current error and its maximum.

        Returns ``(relative_errors, max_relative_error)`` where the
        reference is the ideal ``v @ G`` current.  Columns whose ideal
        current is zero are reported as zero error.
        """
        ideal = self.array.mvm_currents(np.asarray(voltages, dtype=float))
        actual = self.solve_currents(voltages)
        denom = np.where(np.abs(ideal) > 0, np.abs(ideal), 1.0)
        rel = np.abs(actual - ideal) / denom
        rel = np.where(np.abs(ideal) > 0, rel, 0.0)
        return rel, float(rel.max())
