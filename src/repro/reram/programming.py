"""Write-verify programming of crossbar arrays.

Analog conductance targets are reached iteratively in real parts:
program-pulse, read back, nudge, repeat until the read value sits within
tolerance.  The paper assumes programmed arrays; this module makes the
assumption concrete (and costed) so energy studies can include the
one-time programming budget and so tests can exercise convergence.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from ..errors import DeviceError, ShapeError
from .crossbar import CrossbarArray
from .variation import VariationModel

__all__ = ["WriteVerifyProgrammer", "ProgrammingReport"]


@dataclasses.dataclass(frozen=True)
class ProgrammingReport:
    """Outcome of a write-verify programming pass.

    Attributes
    ----------
    iterations:
        Verify iterations executed.
    converged_fraction:
        Fraction of cells within tolerance at the end.
    max_relative_error:
        Worst remaining relative conductance error.
    total_pulses:
        Total programming pulses issued across the array.
    programming_energy:
        Estimated total programming energy (joules).
    """

    iterations: int
    converged_fraction: float
    max_relative_error: float
    total_pulses: int
    programming_energy: float


class WriteVerifyProgrammer:
    """Iterative write-verify loop over a whole array.

    Each iteration applies one corrective pulse per out-of-tolerance
    cell.  Pulse outcomes are noisy (write noise with relative std
    ``write_sigma``), which is what makes verification necessary.
    """

    def __init__(
        self,
        tolerance: float = 0.01,
        max_iterations: int = 50,
        write_sigma: float = 0.05,
        step_gain: float = 1.0,
    ) -> None:
        if not 0 < tolerance < 1:
            raise DeviceError(f"tolerance must be in (0, 1), got {tolerance!r}")
        if max_iterations < 1:
            raise DeviceError("need at least one iteration")
        if write_sigma < 0:
            raise DeviceError("write noise sigma must be >= 0")
        if not 0 < step_gain <= 1.5:
            raise DeviceError("step gain must be in (0, 1.5]")
        self.tolerance = tolerance
        self.max_iterations = max_iterations
        self.write_sigma = write_sigma
        self.step_gain = step_gain

    def program(
        self,
        array: CrossbarArray,
        g_target: np.ndarray,
        rng: Optional[np.random.Generator] = None,
    ) -> ProgrammingReport:
        """Drive ``array`` toward ``g_target`` with write-verify.

        The array ends holding the *actually achieved* (noisy, verified)
        conductances rather than the exact targets.
        """
        target = np.asarray(g_target, dtype=float)
        if target.shape != array.shape:
            raise ShapeError(
                f"target shape {target.shape} does not match array {array.shape}"
            )
        target = np.asarray(array.spec.quantise(target), dtype=float)
        rng = rng if rng is not None else np.random.default_rng(0)
        noise = VariationModel(sigma=self.write_sigma, distribution="normal",
                               clip_to_window=True)

        spec = array.spec
        current = np.asarray(array.conductances, dtype=float).copy()
        total_pulses = 0
        iterations = 0
        for iterations in range(1, self.max_iterations + 1):
            error = current - target
            out = np.abs(error) > self.tolerance * target
            if not np.any(out):
                iterations -= 1
                break
            step = -self.step_gain * error[out]
            applied = step * noise.multipliers(step.shape, rng)
            current[out] = np.clip(current[out] + applied, spec.g_min, spec.g_max)
            total_pulses += int(out.sum())

        # Commit achieved conductances (bypassing quantise-on-program by
        # clipping only — the loop already respected the window).
        array.program(current)

        rel_err = np.abs(current - target) / target
        converged = float(np.mean(rel_err <= self.tolerance))
        # E ≈ V² G t per pulse, evaluated at the final conductance as a
        # representative operating point.
        pulse_energy = (
            spec.write_voltage**2 * float(np.mean(current)) * spec.write_pulse
        )
        return ProgrammingReport(
            iterations=iterations,
            converged_fraction=converged,
            max_relative_error=float(rel_err.max()),
            total_pulses=total_pulses,
            programming_energy=pulse_energy * total_pulses,
        )
