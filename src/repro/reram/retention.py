"""Conductance retention drift.

Programmed ReRAM conductances drift over time toward the high-resistance
state; the standard empirical model is log-time relaxation

    G(t) = G₀ · (1 - ν · log10(1 + t / t₀))

with per-device variability on the drift coefficient ν.  The paper's
Fig. 7 freezes time (variation only); this module extends the device
substrate so accuracy-over-retention-time studies are possible (the
"robustness" axis of the paper's future-work remark).
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from ..errors import DeviceError
from .crossbar import CrossbarArray
from .device import DeviceSpec

__all__ = ["RetentionModel"]


@dataclasses.dataclass(frozen=True)
class RetentionModel:
    """Log-time conductance relaxation.

    Attributes
    ----------
    nu:
        Mean drift coefficient per decade of time (e.g. 0.01 = 1 %
        conductance loss per decade).
    nu_sigma:
        Device-to-device relative spread of the coefficient.
    t0:
        Drift onset time constant (seconds).
    """

    nu: float = 0.01
    nu_sigma: float = 0.2
    t0: float = 1.0

    def __post_init__(self) -> None:
        if not 0 <= self.nu < 1:
            raise DeviceError(f"nu must be in [0, 1), got {self.nu!r}")
        if self.nu_sigma < 0:
            raise DeviceError(f"nu_sigma must be >= 0, got {self.nu_sigma!r}")
        if self.t0 <= 0:
            raise DeviceError(f"t0 must be positive, got {self.t0!r}")

    def decay_factor(
        self,
        elapsed: float,
        shape=None,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Multiplicative conductance factor after ``elapsed`` seconds.

        With ``rng`` and ``shape`` the drift coefficient is drawn per
        device; otherwise the mean coefficient applies uniformly.
        """
        if elapsed < 0:
            raise DeviceError(f"elapsed time must be >= 0, got {elapsed!r}")
        decades = np.log10(1.0 + elapsed / self.t0)
        if rng is not None and shape is not None:
            nu = self.nu * np.maximum(
                rng.normal(1.0, self.nu_sigma, size=shape), 0.0
            )
        else:
            nu = np.asarray(self.nu)
        return np.clip(1.0 - nu * decades, 0.0, 1.0)

    def age_array(
        self,
        array: CrossbarArray,
        elapsed: float,
        rng: Optional[np.random.Generator] = None,
    ) -> CrossbarArray:
        """A *copy* of ``array`` after ``elapsed`` seconds of retention
        drift (original untouched, mirroring :meth:`CrossbarArray.perturb`)."""
        g = np.asarray(array.conductances, dtype=float)
        factor = self.decay_factor(elapsed, shape=g.shape, rng=rng)
        aged = np.clip(g * factor, array.spec.g_min, array.spec.g_max)
        clone = CrossbarArray(array.rows, array.cols, array.spec, array.r_access)
        clone._g = aged
        return clone

    def time_to_drift(self, fraction: float) -> float:
        """Seconds until the *mean* device has lost ``fraction`` of its
        conductance (inverse of the decay law)."""
        if not 0 < fraction < 1:
            raise DeviceError(f"fraction must be in (0, 1), got {fraction!r}")
        if self.nu == 0:
            return float("inf")
        decades = fraction / self.nu
        return self.t0 * (10.0**decades - 1.0)
