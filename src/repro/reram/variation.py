"""Process-variation and fault models for ReRAM conductances.

The paper (Section IV-C) perturbs programmed conductances with
normally distributed device-to-device variation following refs
[21] (DL-RSIM, ICCAD'18) and [22] (DATE'19), sweeping relative standard
deviations σ ∈ {0, 5 %, 10 %, 15 %, 20 %}.  We implement:

* :class:`VariationModel` — multiplicative variation with selectable
  distribution (``"normal"`` as in the paper; ``"lognormal"`` as a
  physically-motivated alternative that cannot produce negative
  conductance).
* :class:`StuckAtFaultModel` — stuck-at-LRS / stuck-at-HRS defect
  injection (an extension beyond the paper used by the fault-injection
  tests and the robustness ablation).
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from ..errors import DeviceError
from .device import DeviceSpec

__all__ = ["VariationModel", "StuckAtFaultModel", "apply_variation"]

_DISTRIBUTIONS = ("normal", "lognormal")


@dataclasses.dataclass(frozen=True)
class VariationModel:
    """Multiplicative device-to-device conductance variation.

    ``G_actual = G_programmed · X`` where

    * ``distribution="normal"``:  ``X ~ N(1, σ)``  (paper's model), and
    * ``distribution="lognormal"``: ``X = exp(N(-σ_ln²/2, σ_ln))`` with
      ``σ_ln`` chosen so the multiplicative std matches ``σ`` and the
      mean stays 1.

    Attributes
    ----------
    sigma:
        Relative standard deviation (e.g. ``0.1`` for 10 %).
    distribution:
        ``"normal"`` or ``"lognormal"``.
    clip_to_window:
        When a :class:`DeviceSpec` is supplied to :meth:`perturb`, clip
        the perturbed conductance back into the physical window (always
        prevents negative conductance regardless of this flag).
    """

    sigma: float
    distribution: str = "normal"
    clip_to_window: bool = True

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise DeviceError(f"sigma must be >= 0, got {self.sigma!r}")
        if self.distribution not in _DISTRIBUTIONS:
            raise DeviceError(
                f"unknown distribution {self.distribution!r}; "
                f"choose from {_DISTRIBUTIONS}"
            )

    def multipliers(self, shape, rng: np.random.Generator) -> np.ndarray:
        """Draw variation multipliers of the given ``shape``."""
        if self.sigma == 0:
            return np.ones(shape, dtype=float)
        if self.distribution == "normal":
            return rng.normal(1.0, self.sigma, size=shape)
        # lognormal: match mean 1 and std sigma of the multiplier.
        sigma_ln = np.sqrt(np.log1p(self.sigma**2))
        mu_ln = -0.5 * sigma_ln**2
        return rng.lognormal(mu_ln, sigma_ln, size=shape)

    def perturb(
        self,
        conductances: np.ndarray,
        rng: np.random.Generator,
        spec: Optional[DeviceSpec] = None,
    ) -> np.ndarray:
        """Return perturbed conductances (input is never modified)."""
        g = np.asarray(conductances, dtype=float)
        out = g * self.multipliers(g.shape, rng)
        if spec is not None and self.clip_to_window:
            out = np.clip(out, spec.g_min, spec.g_max)
        else:
            # A negative conductance is unphysical under any model.
            out = np.maximum(out, 0.0)
        return out


@dataclasses.dataclass(frozen=True)
class StuckAtFaultModel:
    """Random stuck-at faults: a fraction of cells is pinned to LRS
    (``g_max``, stuck-on) or HRS (``g_min``, stuck-off).

    Attributes
    ----------
    stuck_on_rate:
        Probability a cell is stuck at maximum conductance.
    stuck_off_rate:
        Probability a cell is stuck at minimum conductance.
    """

    stuck_on_rate: float = 0.0
    stuck_off_rate: float = 0.0

    def __post_init__(self) -> None:
        for name, rate in (("stuck_on_rate", self.stuck_on_rate),
                           ("stuck_off_rate", self.stuck_off_rate)):
            if not 0 <= rate <= 1:
                raise DeviceError(f"{name} must be in [0, 1], got {rate!r}")
        if self.stuck_on_rate + self.stuck_off_rate > 1:
            raise DeviceError("combined fault rates exceed 1")

    def inject(
        self, conductances: np.ndarray, rng: np.random.Generator, spec: DeviceSpec
    ) -> np.ndarray:
        """Return conductances with faults injected (input untouched)."""
        g = np.array(conductances, dtype=float, copy=True)
        if self.stuck_on_rate == 0 and self.stuck_off_rate == 0:
            return g
        u = rng.random(g.shape)
        stuck_on = u < self.stuck_on_rate
        stuck_off = (u >= self.stuck_on_rate) & (
            u < self.stuck_on_rate + self.stuck_off_rate
        )
        g[stuck_on] = spec.g_max
        g[stuck_off] = spec.g_min
        return g

    @property
    def total_rate(self) -> float:
        """Total defective-cell probability."""
        return self.stuck_on_rate + self.stuck_off_rate


def apply_variation(
    conductances: np.ndarray,
    sigma: float,
    rng: np.random.Generator,
    spec: Optional[DeviceSpec] = None,
    distribution: str = "normal",
) -> np.ndarray:
    """One-call convenience wrapper around :class:`VariationModel`.

    This is the exact operation of the paper's Fig. 7 study: perturb the
    programmed conductance matrix with relative std ``sigma``.
    """
    model = VariationModel(sigma=sigma, distribution=distribution)
    return model.perturb(np.asarray(conductances, dtype=float), rng, spec=spec)
