"""Parallel campaign runtime: seed partitioning + process-pool runner.

The speed layer under the Monte-Carlo studies:

* :mod:`repro.runtime.seeding` — per-trial
  :class:`~numpy.random.SeedSequence` children keyed by trial identity,
  so streams are independent of worker count, chunk size and execution
  order;
* :mod:`repro.runtime.runner` — :class:`ParallelRunner`, a
  crash-tolerant chunked process pool whose results are byte-identical
  to serial execution for seeding-disciplined workers;
* :mod:`repro.runtime.scheduler` — :class:`CampaignScheduler`, a
  dependency-aware DAG of :class:`CampaignCell` nodes (shared
  model-build cells feeding per-sigma trial-group cells) executed in
  waves on the runner, with a ``completed`` probe for cell-granularity
  resume.

Consumers: :class:`repro.faults.FaultCampaign` (``run(workers=...,
trial_batch=...)``) and :func:`repro.experiments.fig7_accuracy.run_fig7`
— both surfaced through the ``repro faults`` / ``repro fig7`` CLI via
``--workers`` / ``--trial-batch``.
"""

from .runner import ParallelRunner
from .scheduler import CampaignCell, CampaignScheduler
from .seeding import trial_rng, trial_seed_sequence

__all__ = [
    "ParallelRunner",
    "CampaignCell",
    "CampaignScheduler",
    "trial_rng",
    "trial_seed_sequence",
]
