"""Crash-tolerant process-pool execution of campaign task lists.

:class:`ParallelRunner` maps a picklable worker function over a task
list with

* **chunk scheduling** — tasks are grouped into chunks so per-task IPC
  overhead amortises (one future per chunk);
* **worker crash retry** — a worker process dying (OOM kill, segfault,
  ``os._exit``) breaks the whole :class:`~concurrent.futures.ProcessPoolExecutor`;
  the runner rebuilds the pool and resubmits only the chunks that had
  no result yet, up to ``max_retries`` rounds, then raises
  :class:`~repro.errors.ExecutionError`;
* **order preservation** — results come back in task order regardless
  of completion order, so callers can zip them against their inputs.

Determinism contract: the runner never feeds scheduling information to
the tasks.  A worker function whose output is a pure function of its
task (the seeding discipline of :mod:`repro.runtime.seeding`) therefore
produces byte-identical results at any worker count or chunk size —
including ``workers <= 1``, which runs everything in-process without a
pool (and without requiring picklability).

Exceptions *raised by the worker function itself* are not retried: they
are deterministic task failures and propagate to the caller unchanged.

Observability: when a telemetry session is active, every chunk becomes
a ``runner.chunk`` span (parent-side turnaround, submit → result) and a
``runner.chunk_seconds`` histogram sample — on the serial path too, so
chunk spans always equal chunk count regardless of worker count.  Pool
rebuilds after a crash increment ``runner.pool_rebuilds`` and the count
is exposed on :attr:`ParallelRunner.pool_rebuilds` (campaign results
surface it; a crash-retry is no longer silent).  After a map the
``runner.worker_utilisation`` gauge holds busy-time / (workers ×
elapsed), capped at 1 — the serial path sets it too (workers = 1), so
scheduler-level dashboards see the same ``runner.*`` metrics at any
worker count.
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, List, Optional, Sequence, Tuple

from ..errors import ExecutionError
from ..telemetry import session as _telemetry
from ..telemetry.clock import perf

__all__ = ["ParallelRunner"]


def _call_chunk(fn: Callable[[Any], Any], chunk: Sequence[Any]) -> List[Any]:
    """Run one chunk of tasks inside a worker process."""
    return [fn(task) for task in chunk]


def _call_chunk_traced(
    fn: Callable[[Any], Any], chunk: Sequence[Any]
) -> Tuple[List[Any], List[dict]]:
    """Traced variant submitted when the parent has telemetry enabled.

    Fork-started workers inherit the parent's active session; the spans
    the worker function records during this chunk are sliced off the
    inherited tracer and shipped back as plain dicts alongside the
    results, so the parent can graft them under its chunk span
    (:meth:`repro.telemetry.tracer.Tracer.graft_records`) into one
    cross-process trace.  Under a spawn context (no inherited session)
    the record list is simply empty.
    """
    session = _telemetry.active()
    if session is None:
        return [fn(task) for task in chunk], []
    base = len(session.tracer.spans)
    results = [fn(task) for task in chunk]
    records = [span.to_dict() for span in session.tracer.spans[base:]]
    return results, records


def _pool_context() -> multiprocessing.context.BaseContext:
    """Prefer ``fork`` (workers inherit the parent's prepared state and
    warm caches for free); fall back to the platform default."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


class ParallelRunner:
    """Maps ``worker_fn`` over tasks on a process pool.

    Parameters
    ----------
    worker_fn:
        Module-level (picklable) callable applied to each task.
    workers:
        Process count; ``<= 1`` runs serially in-process.
    chunk_size:
        Tasks per submitted future (amortises IPC; does not affect
        results).
    max_retries:
        Pool-rebuild rounds tolerated after worker crashes before
        giving up.
    initializer / initargs:
        Optional per-worker-process setup hook (e.g. installing a
        campaign spec in a module global).
    span_name / span_attrs:
        Name of the per-chunk span (default ``runner.chunk``) and an
        optional parent-side callable mapping a chunk to extra span
        attributes — how the campaign scheduler labels chunks as its
        cells (``scheduler.cell`` spans carrying the cell key).
    """

    def __init__(
        self,
        worker_fn: Callable[[Any], Any],
        workers: int = 1,
        chunk_size: int = 1,
        max_retries: int = 2,
        initializer: Optional[Callable[..., None]] = None,
        initargs: Tuple[Any, ...] = (),
        span_name: str = "runner.chunk",
        span_attrs: Optional[Callable[[Sequence[Any]], dict]] = None,
    ) -> None:
        if chunk_size < 1:
            raise ExecutionError(f"chunk size must be >= 1, got {chunk_size!r}")
        if max_retries < 0:
            raise ExecutionError(f"max retries must be >= 0, got {max_retries!r}")
        self.worker_fn = worker_fn
        self.workers = workers
        self.chunk_size = chunk_size
        self.max_retries = max_retries
        self.initializer = initializer
        self.initargs = initargs
        self.span_name = span_name
        self.span_attrs = span_attrs
        #: pool rebuilds performed by the most recent :meth:`map` call
        self.pool_rebuilds = 0

    def _chunk_attrs(self, chunk: Sequence[Any]) -> dict:
        return self.span_attrs(chunk) if self.span_attrs is not None else {}

    # ------------------------------------------------------------------
    def map(
        self,
        tasks: Sequence[Any],
        on_result: Optional[Callable[[Any, Any], None]] = None,
    ) -> List[Any]:
        """Apply ``worker_fn`` to every task; results in task order.

        ``on_result(task, result)`` fires in the *parent* process as
        each result lands (completion order) — the merge hook campaign
        callers use to persist finished trials into the artifact store
        immediately, so an interrupted parallel run resumes without
        recomputing them.
        """
        tasks = list(tasks)
        self.pool_rebuilds = 0
        if not tasks:
            return []
        if self.workers <= 1:
            return self._map_serial(tasks, on_result)
        return self._map_pooled(tasks, on_result)

    def _chunked(self, tasks: List[Any]) -> List[List[Any]]:
        return [
            tasks[i : i + self.chunk_size]
            for i in range(0, len(tasks), self.chunk_size)
        ]

    def _map_serial(
        self,
        tasks: List[Any],
        on_result: Optional[Callable[[Any, Any], None]] = None,
    ) -> List[Any]:
        if self.initializer is not None:
            self.initializer(*self.initargs)
        session = _telemetry.active()
        map_start = perf()
        busy = 0.0
        out: List[Any] = []
        for idx, chunk in enumerate(self._chunked(tasks)):
            start = perf()
            for task in chunk:
                result = self.worker_fn(task)
                if on_result is not None:
                    on_result(task, result)
                out.append(result)
            end = perf()
            busy += end - start
            if session is not None:
                session.tracer.record_span(
                    self.span_name, start, end, index=idx,
                    tasks=len(chunk), **self._chunk_attrs(chunk),
                )
                session.observe("runner.chunk_seconds", end - start)
        if session is not None:
            # Same utilisation gauge the pooled path sets (busy time over
            # one worker's wall clock) — dashboards see the runtime.*
            # metrics regardless of worker count.
            elapsed = perf() - map_start
            if elapsed > 0:
                session.set_gauge(
                    "runner.worker_utilisation", min(1.0, busy / elapsed)
                )
        return out

    def _map_pooled(
        self,
        tasks: List[Any],
        on_result: Optional[Callable[[Any, Any], None]] = None,
    ) -> List[Any]:
        chunks = self._chunked(tasks)
        results: List[Optional[List[Any]]] = [None] * len(chunks)
        pending = set(range(len(chunks)))
        retries_left = self.max_retries
        context = _pool_context()
        session = _telemetry.active()
        map_start = perf()
        busy = [0.0]
        while pending:
            crashed = self._run_round(
                chunks, results, pending, context, tasks, on_result, busy
            )
            if not crashed:
                continue
            if retries_left == 0:
                raise ExecutionError(
                    f"worker processes kept crashing; {len(pending)} "
                    f"chunk(s) unfinished after "
                    f"{self.max_retries + 1} round(s)"
                )
            retries_left -= 1
            self.pool_rebuilds += 1
            if session is not None:
                session.count("runner.pool_rebuilds")
        if session is not None:
            elapsed = perf() - map_start
            if elapsed > 0:
                session.set_gauge(
                    "runner.worker_utilisation",
                    min(1.0, busy[0] / (self.workers * elapsed)),
                )
        out: List[Any] = []
        for chunk_result in results:
            assert chunk_result is not None
            out.extend(chunk_result)
        return out

    def _run_round(
        self,
        chunks: List[List[Any]],
        results: List[Optional[List[Any]]],
        pending: set,
        context: multiprocessing.context.BaseContext,
        tasks: List[Any],
        on_result: Optional[Callable[[Any, Any], None]],
        busy: List[float],
    ) -> bool:
        """One pool lifetime; returns True if a worker crash was seen.

        A crash poisons every in-flight future of the pool, so the
        round ends with the unfinished chunk indices still in
        ``pending`` for the next round's fresh pool.  ``busy[0]``
        accumulates the parent-observed turnaround of completed chunks
        (the utilisation numerator).
        """
        crashed = False
        session = _telemetry.active()
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=min(self.workers, len(pending)),
            mp_context=context,
            initializer=self.initializer,
            initargs=self.initargs,
        ) as pool:
            futures = {}
            submitted = {}
            # With telemetry on, workers ship their span trees back
            # with the results for cross-process stitching.
            call = _call_chunk if session is None else _call_chunk_traced
            for idx in sorted(pending):
                future = pool.submit(call, self.worker_fn, chunks[idx])
                futures[future] = idx
                submitted[future] = perf()
            for future in concurrent.futures.as_completed(futures):
                idx = futures[future]
                try:
                    payload = future.result()
                except BrokenProcessPool:
                    crashed = True
                    continue
                except OSError:
                    # An OSError is a crash symptom only when the pool
                    # itself broke (torn result pipe); one raised *by the
                    # worker function* (missing dataset file, permission
                    # denied) is a deterministic task failure — retrying
                    # it would loop max_retries times and then misreport
                    # the bug as "worker processes kept crashing".
                    if getattr(pool, "_broken", False):
                        crashed = True
                        continue
                    raise
                end = perf()
                duration = end - submitted[future]
                busy[0] += duration
                if session is None:
                    chunk_result = payload
                else:
                    chunk_result, worker_records = payload
                    chunk_span = session.tracer.record_span(
                        self.span_name, submitted[future], end,
                        index=idx, tasks=len(chunks[idx]),
                        **self._chunk_attrs(chunks[idx]),
                    )
                    if worker_records:
                        session.tracer.graft_records(
                            worker_records, chunk_span
                        )
                    session.observe("runner.chunk_seconds", duration)
                results[idx] = chunk_result
                pending.discard(idx)
                if on_result is not None:
                    base = idx * self.chunk_size
                    for offset, result in enumerate(chunk_result):
                        on_result(tasks[base + offset], result)
        return crashed
