"""Dependency-aware campaign-grid scheduling on the process pool.

:class:`ParallelRunner` maps one flat task list; a campaign grid has
more structure — shared model-build/program work feeding many
independent trial-group cells.  :class:`CampaignScheduler` expresses
that structure as a DAG of :class:`CampaignCell` nodes and executes it
in dependency waves on the existing crash-tolerant pool:

* **local cells** run in the parent process (model training, store
  warm-up — anything that must respect the single-writer invariant of
  the artifact store or warm a cache workers inherit via ``fork``);
* **pooled cells** fan out through a :class:`ParallelRunner` per wave,
  inheriting its chunking, crash retry and order preservation;
* **resume**: an optional ``completed`` probe short-circuits cells
  whose results already exist (e.g. in the artifact store), so an
  interrupted grid re-invocation recomputes nothing finished —
  cell-granularity resume;
* **determinism**: the scheduler feeds no scheduling information to the
  cells; seeding-disciplined workers therefore produce byte-identical
  results at any worker count (the :mod:`repro.runtime.seeding`
  contract, unchanged).

Results merge parent-side through ``on_result`` as each cell lands —
the hook campaign callers use to persist finished cells immediately.
"""

from __future__ import annotations

import dataclasses
import functools
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError, ExecutionError
from ..telemetry import session as _telemetry
from .runner import ParallelRunner

__all__ = ["CampaignCell", "CampaignScheduler"]


@dataclasses.dataclass(frozen=True)
class CampaignCell:
    """One schedulable unit of a campaign grid.

    Attributes
    ----------
    key:
        Unique cell identifier (also the resume key).
    payload:
        The task handed to the worker function (must be picklable for
        pooled cells at ``workers > 1``).
    deps:
        Keys of cells that must complete before this one starts.
    local:
        Run in the parent process (via ``local_fn``) instead of the
        pool — for shared-prepare cells and store writers.
    """

    key: str
    payload: Any = None
    deps: Tuple[str, ...] = ()
    local: bool = False


def _run_keyed(fn: Callable[[Any], Any], task: Tuple[str, Any]) -> Any:
    """Pooled cell trampoline: unwrap ``(key, payload)`` and call ``fn``.

    Module-level (fork/spawn-picklable); the key rides along so the
    parent can attribute completion-order results to cells without
    relying on payload uniqueness.
    """
    return fn(task[1])


def _cell_span_attrs(chunk: Sequence[Tuple[str, Any]]) -> Dict[str, Any]:
    """Label a pooled chunk's span with the cell key(s) it carries.

    Runs parent-side (the runner's ``span_attrs`` hook); campaign grids
    use ``chunk_size=1`` so the common shape is one ``cell`` attribute,
    but larger chunks stay attributable too.
    """
    if len(chunk) == 1:
        return {"cell": chunk[0][0]}
    return {"cells": [key for key, _ in chunk]}


class CampaignScheduler:
    """Executes a DAG of :class:`CampaignCell` nodes.

    Parameters
    ----------
    worker_fn:
        Module-level (picklable) callable applied to each pooled cell's
        payload.
    workers / chunk_size / max_retries / initializer / initargs:
        Forwarded to the per-wave :class:`ParallelRunner` (see there);
        ``workers <= 1`` runs every cell in-process.
    local_fn:
        Parent-side callable for ``local=True`` cells, receiving the
        :class:`CampaignCell`; defaults to ``worker_fn(cell.payload)``.
    """

    def __init__(
        self,
        worker_fn: Callable[[Any], Any],
        workers: int = 1,
        chunk_size: int = 1,
        max_retries: int = 2,
        initializer: Optional[Callable[..., None]] = None,
        initargs: Tuple[Any, ...] = (),
        local_fn: Optional[Callable[[CampaignCell], Any]] = None,
    ) -> None:
        self.worker_fn = worker_fn
        self.workers = workers
        self.chunk_size = chunk_size
        self.max_retries = max_retries
        self.initializer = initializer
        self.initargs = initargs
        self.local_fn = local_fn
        #: pool rebuilds performed across all waves of the last :meth:`run`
        self.pool_rebuilds = 0
        self._initialized = False

    # ------------------------------------------------------------------
    def _validate(self, cells: Sequence[CampaignCell]) -> None:
        keys = [cell.key for cell in cells]
        if len(set(keys)) != len(keys):
            dupes = sorted({k for k in keys if keys.count(k) > 1})
            raise ConfigurationError(f"duplicate cell keys: {dupes}")
        known = set(keys)
        for cell in cells:
            missing = [d for d in cell.deps if d not in known]
            if missing:
                raise ConfigurationError(
                    f"cell {cell.key!r} depends on unknown cell(s) "
                    f"{missing}"
                )

    def _run_local(self, cell: CampaignCell) -> Any:
        if self.local_fn is not None:
            return self.local_fn(cell)
        # Local cells reuse the worker function in-process; give it the
        # same initialized module state a serial ParallelRunner would.
        if self.initializer is not None and not self._initialized:
            self.initializer(*self.initargs)
            self._initialized = True
        return self.worker_fn(cell.payload)

    # ------------------------------------------------------------------
    def run(
        self,
        cells: Sequence[CampaignCell],
        on_result: Optional[Callable[[CampaignCell, Any], None]] = None,
        completed: Optional[Callable[[CampaignCell], Any]] = None,
    ) -> Dict[str, Any]:
        """Execute every cell respecting dependencies; returns
        ``{cell.key: result}``.

        ``on_result(cell, result)`` fires in the parent as each *newly
        computed* cell lands (completion order within a wave) — the
        store-merge hook.  ``completed(cell)`` is the resume probe: a
        non-``None`` return is taken as the cell's already-persisted
        result and the cell is skipped (``on_result`` does not fire for
        it).  Unsatisfiable dependencies (a cycle) raise
        :class:`~repro.errors.ExecutionError`.
        """
        cells = list(cells)
        self._validate(cells)
        self.pool_rebuilds = 0
        self._initialized = False
        session = _telemetry.active()

        results: Dict[str, Any] = {}
        remaining: List[CampaignCell] = []
        resumed = 0
        for cell in cells:
            cached = completed(cell) if completed is not None else None
            if cached is not None:
                results[cell.key] = cached
                resumed += 1
            else:
                remaining.append(cell)
        if session is not None and resumed:
            session.count("scheduler.cells.resumed", resumed)

        waves = 0
        while remaining:
            ready = [
                cell for cell in remaining
                if all(dep in results for dep in cell.deps)
            ]
            if not ready:
                cycle = sorted(cell.key for cell in remaining)
                raise ExecutionError(
                    f"campaign cells form a dependency cycle (or depend "
                    f"on failed cells): {cycle}"
                )
            waves += 1
            local = [cell for cell in ready if cell.local]
            pooled = [cell for cell in ready if not cell.local]
            for cell in local:
                with _telemetry.span(
                    "scheduler.cell", cell=cell.key, local=True
                ):
                    result = self._run_local(cell)
                results[cell.key] = result
                if on_result is not None:
                    on_result(cell, result)
            if pooled:
                self._run_pooled_wave(pooled, results, on_result)
            if session is not None:
                session.count("scheduler.cells.completed", len(ready))
            done = {cell.key for cell in ready}
            remaining = [c for c in remaining if c.key not in done]
        if session is not None:
            session.set_gauge("scheduler.waves", waves)
        return results

    def _run_pooled_wave(
        self,
        pooled: List[CampaignCell],
        results: Dict[str, Any],
        on_result: Optional[Callable[[CampaignCell, Any], None]],
    ) -> None:
        """Fan one wave's independent cells out through the pool."""
        by_key = {cell.key: cell for cell in pooled}

        def merge(task: Tuple[str, Any], result: Any) -> None:
            cell = by_key[task[0]]
            results[cell.key] = result
            if on_result is not None:
                on_result(cell, result)

        runner = ParallelRunner(
            functools.partial(_run_keyed, self.worker_fn),
            workers=self.workers,
            chunk_size=self.chunk_size,
            max_retries=self.max_retries,
            initializer=self.initializer,
            initargs=self.initargs,
            span_name="scheduler.cell",
            span_attrs=_cell_span_attrs,
        )
        runner.map(
            [(cell.key, cell.payload) for cell in pooled], on_result=merge
        )
        self.pool_rebuilds += runner.pool_rebuilds
