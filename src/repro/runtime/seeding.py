"""Deterministic seed partitioning for Monte-Carlo campaigns.

Every trial of a sweep gets its own :class:`numpy.random.SeedSequence`,
derived from the master seed and the trial's *identity token* (grid
point + trial index), **not** from its position in any schedule.  The
stream a trial sees is therefore a pure function of
``(master seed, token)`` — independent of worker count, chunk size,
batch grouping or execution order — which is what makes parallel
campaign results byte-identical to serial ones.

The derivation is ``SeedSequence(master_seed + crc32(token))``, the
same entropy the serial campaign loops have always fed
``default_rng``, so records persisted by earlier runs of the same spec
stay valid byte-for-byte.
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["trial_seed_sequence", "trial_rng"]


def trial_seed_sequence(
    master_seed: int, token: str
) -> np.random.SeedSequence:
    """The :class:`~numpy.random.SeedSequence` of one trial.

    ``token`` names the trial (e.g. ``"mlp-1|0.050000|...|3"``); equal
    tokens map to equal streams and distinct tokens to distinct ones
    regardless of who evaluates them.
    """
    return np.random.SeedSequence(
        master_seed + zlib.crc32(token.encode())
    )


def trial_rng(master_seed: int, token: str) -> np.random.Generator:
    """A fresh, deterministic Generator for one trial."""
    return np.random.default_rng(trial_seed_sequence(master_seed, token))
