"""Long-lived inference serving with cross-request micro-batching.

The ``repro serve`` daemon turns :class:`~repro.mapping.executor.
PIMExecutor` into a serving layer: a model registry loads trained
networks from the artifact store, concurrent predict requests coalesce
into single batched forward passes (one stacked trial-tensor pass under
a fault-trial ensemble), bounded queues push back under overload, and
every request carries telemetry spans plus a row-proportional share of
the chip's MVM-launch energy accounting.  See ``docs/serving.md``.
"""

from .batcher import MicroBatcher, PredictResult
from .config import ServingConfig
from .daemon import BackgroundServer, ServingDaemon
from .registry import ModelEntry, ModelRegistry
from .resilience import (
    CircuitBreaker,
    ComputePool,
    RetryPolicy,
    ServiceTimeEstimator,
)

__all__ = [
    "BackgroundServer",
    "CircuitBreaker",
    "ComputePool",
    "MicroBatcher",
    "ModelEntry",
    "ModelRegistry",
    "PredictResult",
    "RetryPolicy",
    "ServiceTimeEstimator",
    "ServingConfig",
    "ServingDaemon",
]
