"""Cross-request micro-batching with bounded queues, backpressure,
deadline-aware admission control and a per-model circuit breaker.

One :class:`MicroBatcher` serves one model.  Concurrent predict
requests land in a bounded deque; a coalescer task waits a short window
after the first arrival, then merges up to ``max_batch`` requests into
a single ``(rows, ...)`` forward pass on the compute pool — under an
ensemble, a single stacked trial-tensor pass — and scatters the label
slices back to each caller's future.  Batch membership is an execution
detail: a request's labels are identical whether it rode with 31
companions or alone.

Backpressure: once ``queue_depth`` requests are pending, further
submits raise :class:`~repro.errors.BackpressureError` immediately
(the HTTP layer answers 429) instead of queueing unbounded work in
front of a saturated chip.

Deadline-aware admission: a request may carry a ``deadline_s`` budget.
At enqueue, an EWMA of recent batch service times
(:class:`~repro.serving.resilience.ServiceTimeEstimator`) predicts how
long the queue ahead plus the request's own batch will take; if the
prediction already misses the deadline the request is *shed* with
:class:`~repro.errors.DeadlineExceededError` (HTTP 503 + a computed
``Retry-After`` — deliberately distinct from the queue-depth 429,
which says "the queue is full", not "you are too late").  Expiry is
re-checked at dequeue so a request that aged out while waiting never
wastes a forward pass.

Compute supervision: every flush runs under ``compute_timeout_s``; a
batch that exceeds it is failed with
:class:`~repro.errors.ExecutionError` — no waiter is ever abandoned —
and the shared :class:`~repro.serving.resilience.ComputePool` is
rebuilt so the hung thread cannot wedge the daemon.  Batch outcomes
feed a per-model :class:`~repro.serving.resilience.CircuitBreaker`:
after ``threshold`` consecutive failures the model fails fast with
:class:`~repro.errors.CircuitOpenError` for a cooldown, then one
half-open probe batch decides whether to close again.

Drain: :meth:`drain` stops intake, lets the coalescer flush every
pending request, then pushes one deliberate *empty* batch through the
full compute path as an end-of-stream barrier — which is why
:meth:`~repro.mapping.executor.PIMExecutor.predict` must be
well-defined on zero-row input.  :meth:`abort` is the impatient
sibling used when the drain grace period expires: it *fails* every
unresolved waiter instead of hanging them.

Energy accounting rides on the executor's existing MVM-launch
counters: the compute thread snapshots ``total_mvm_launches`` around
each flush and each request is billed its row-proportional share — no
second instrumentation path (with ``compute_workers > 1`` flushes may
interleave and the shares become approximate).
"""

from __future__ import annotations

import asyncio
import collections
import dataclasses
from concurrent.futures import ThreadPoolExecutor
from typing import Deque, List, Optional, Tuple, Union

import numpy as np

from ..errors import (
    BackpressureError,
    CircuitOpenError,
    DeadlineExceededError,
    ExecutionError,
)
from ..telemetry import session as _telemetry
from ..telemetry.clock import perf, wall
from ..telemetry.tracer import Span
from .registry import ModelEntry
from .resilience import CircuitBreaker, ComputePool, ServiceTimeEstimator

__all__ = ["MicroBatcher", "PredictResult"]


@dataclasses.dataclass
class PredictResult:
    """What one coalesced request gets back.

    Attributes
    ----------
    predictions:
        Labels for this request's rows only.
    batch_requests / batch_rows:
        Size of the batch this request rode in.
    queue_seconds:
        Enqueue-to-flush wait.
    mvm_launches:
        Row-proportional share of the batch's tile-MVM launches (the
        unit :meth:`~repro.mapping.executor.PIMExecutor.energy_estimate`
        prices).
    ensemble_trials:
        Realizations voted over (0 = plain single-network predict).
    """

    predictions: np.ndarray
    batch_requests: int
    batch_rows: int
    queue_seconds: float
    mvm_launches: float
    ensemble_trials: int


@dataclasses.dataclass
class _Pending:
    x: np.ndarray
    future: "asyncio.Future[PredictResult]"
    enqueued: float
    #: absolute perf() deadline, or None for "no deadline"
    deadline: Optional[float] = None
    #: the request's ``serve.request`` root span (trace identity rides
    #: on it), or None when telemetry is disabled
    span: Optional[Span] = None


class MicroBatcher:
    """Coalesces predict requests for one :class:`ModelEntry`."""

    def __init__(
        self,
        entry: ModelEntry,
        compute: Union[ComputePool, ThreadPoolExecutor],
        max_batch: int = 32,
        window_s: float = 0.0,
        queue_depth: int = 128,
        compute_timeout_s: float = 0.0,
        breaker: Optional[CircuitBreaker] = None,
        ewma_alpha: float = 0.25,
        chaos=None,
    ) -> None:
        self.entry = entry
        if not isinstance(compute, ComputePool):
            compute = ComputePool.adopt(compute)
        self._compute = compute
        self.max_batch = max_batch
        self.window_s = window_s
        self.queue_depth = queue_depth
        self.compute_timeout_s = compute_timeout_s
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.estimator = ServiceTimeEstimator(alpha=ewma_alpha)
        self._chaos = chaos
        self._pending: Deque[_Pending] = collections.deque()
        self._inflight: List[_Pending] = []
        #: end of the previous flush while the queue stayed busy, or
        #: None after idle/failure — lets the estimator sample the full
        #: batch *cycle* (compute + event-loop gap), which is what
        #: queue-wait prediction needs (see _flush).
        self._cycle_anchor: Optional[float] = None
        self._arrival = asyncio.Event()
        self._draining = False
        self._task: Optional["asyncio.Task[None]"] = None
        #: lifetime counters, cheap enough to keep unconditionally
        self.requests_total = 0
        self.rejected_total = 0
        self.batches_total = 0
        self.coalesced_total = 0
        self.shed_deadline_total = 0
        self.shed_expired_total = 0
        self.breaker_rejected_total = 0
        self.compute_failures_total = 0
        self.compute_timeouts_total = 0
        #: largest admitted relative deadline (the SLO budget clients
        #: actually asked for); 0.0 until a deadline request is admitted
        self.deadline_budget_max_s = 0.0
        #: fixed-size (wall, queue_depth) ring sampled at every flush —
        #: kept unconditionally (cheap) so the /metrics trend is
        #: identical whether telemetry is on or off
        self._depth_samples: Deque[Tuple[float, int]] = collections.deque(
            maxlen=64
        )

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Launch the coalescer task on the running loop."""
        self._task = asyncio.get_running_loop().create_task(self._run())

    @property
    def depth(self) -> int:
        """Requests currently queued (the backpressure measure)."""
        return len(self._pending)

    def _estimated_wait(self) -> Optional[float]:
        """Predicted seconds until a request enqueued *now* is answered
        (``None`` until the EWMA has its first sample).

        With requests queued ahead, the prediction uses the tail-aware
        service budget (mean + 2 deviations), so admission holds the
        deadline even when a batch lands in the service-time tail.  With
        an *empty* queue it deliberately falls back to the mean: there
        is no congestion to protect against, and an admitted request is
        also the probe that keeps the estimator fresh — a pessimistic
        deviation spike must not be able to shed every future request
        and freeze the estimate forever."""
        value = self.estimator.value
        if value is None:
            return None
        batches_ahead = len(self._pending) // self.max_batch + 1
        if self._inflight:
            # A batch on the compute pool right now must finish before
            # anything queued behind it is flushed.
            batches_ahead += 1
        busy = self._pending or self._inflight
        service = self.estimator.budget() if busy else value
        return self.window_s + batches_ahead * service

    def depth_trend(self) -> dict:
        """Min/mean/max queue depth over the retained flush samples."""
        if not self._depth_samples:
            return {"count": 0, "min": None, "mean": None, "max": None}
        depths = [depth for _, depth in self._depth_samples]
        return {
            "count": len(depths),
            "min": min(depths),
            "mean": sum(depths) / len(depths),
            "max": max(depths),
        }

    async def submit(
        self, x: np.ndarray, deadline_s: Optional[float] = None,
        span: Optional[Span] = None,
    ) -> PredictResult:
        """Queue one request's rows; resolves when its batch flushed.

        ``deadline_s`` is the caller's relative latency budget: the
        request is shed (:class:`~repro.errors.DeadlineExceededError`)
        if the service-time EWMA predicts it cannot be answered in
        time, or if it expires while queued.
        """
        if self._draining:
            self.rejected_total += 1
            raise BackpressureError(
                f"model {self.entry.name!r} is draining for shutdown"
            )
        if not self.breaker.admit():
            self.breaker_rejected_total += 1
            retry_after = self.breaker.retry_after()
            _telemetry.count("serve.breaker.rejected")
            raise CircuitOpenError(
                f"model {self.entry.name!r} circuit breaker is open after "
                "repeated compute failures; retry after cooldown",
                retry_after_s=retry_after,
            )
        if len(self._pending) >= self.queue_depth:
            self.rejected_total += 1
            _telemetry.count("serve.rejected")
            raise BackpressureError(
                f"model {self.entry.name!r} queue is full "
                f"({self.queue_depth} pending requests); retry later"
            )
        if deadline_s is not None:
            wait = self._estimated_wait()
            if wait is not None and wait > deadline_s:
                self.shed_deadline_total += 1
                _telemetry.count("serve.shed.deadline")
                retry_after = max(
                    wait - deadline_s, self.estimator.value or 0.0
                )
                raise DeadlineExceededError(
                    f"model {self.entry.name!r} queue wait is predicted at "
                    f"{wait * 1e3:.1f} ms, beyond the "
                    f"{deadline_s * 1e3:.1f} ms deadline; shed at admission",
                    retry_after_s=retry_after,
                )
        self.requests_total += 1
        _telemetry.count("serve.requests")
        if deadline_s is not None and deadline_s > self.deadline_budget_max_s:
            self.deadline_budget_max_s = deadline_s
        now = perf()
        item = _Pending(
            x=x,
            future=asyncio.get_running_loop().create_future(),
            enqueued=now,
            deadline=None if deadline_s is None else now + deadline_s,
            span=span,
        )
        self._pending.append(item)
        _telemetry.set_gauge("serve.queue_depth", len(self._pending))
        self._arrival.set()
        return await item.future

    async def drain(self) -> None:
        """Stop intake, flush everything pending, stop the coalescer."""
        self._draining = True
        self._arrival.set()
        if self._task is not None:
            await self._task
            self._task = None

    def abort(self, exc: Exception) -> int:
        """Fail every unresolved waiter (queued *and* in-flight) with
        ``exc`` and cancel the coalescer; returns how many were failed.

        Used by the daemon when the drain grace period expires: clients
        get an immediate 503 instead of hanging until their socket
        timeout.  Await :meth:`reap` afterwards to collect the
        cancelled task.
        """
        failed = 0
        for item in list(self._inflight) + list(self._pending):
            if not item.future.done():
                item.future.set_exception(exc)
                failed += 1
        self._pending.clear()
        if self._task is not None:
            self._task.cancel()
        return failed

    async def reap(self) -> None:
        """Await an aborted coalescer task (idempotent)."""
        if self._task is not None:
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None

    # ------------------------------------------------------------------
    def _shed_expired(self, item: _Pending, now: float) -> None:
        self.shed_expired_total += 1
        _telemetry.count("serve.shed.expired")
        if item.span is not None:
            item.span.attrs.setdefault("outcome", "shed-expired")
        if not item.future.done():
            item.future.set_exception(DeadlineExceededError(
                f"model {self.entry.name!r} request expired after "
                f"{(now - item.enqueued) * 1e3:.1f} ms in queue; shed at "
                "dequeue",
                retry_after_s=self.estimator.value or 0.0,
            ))

    def _take_batch(self) -> List[_Pending]:
        """Pop up to ``max_batch`` still-viable requests, shedding the
        expired (or predicted-to-miss) ones on the way.

        A request that *aged* in the queue (waited longer than one mean
        service cycle) is held to the tail budget — it must still make
        its deadline even if its batch lands in the service-time tail.
        A request flushing straight from an empty queue is only held to
        the mean: it must survive a transient deviation spike, or a
        pessimistic estimate could shed every future request and never
        be refreshed (see :meth:`_estimated_wait`)."""
        batch: List[_Pending] = []
        now = perf()
        value = self.estimator.value or 0.0
        budget = self.estimator.budget() or 0.0
        while self._pending and len(batch) < self.max_batch:
            item = self._pending.popleft()
            if item.deadline is not None:
                aged = now - item.enqueued > value
                service = budget if aged else value
                if now + service > item.deadline:
                    self._shed_expired(item, now)
                    continue
            batch.append(item)
        return batch

    def _fail_pending(self, exc: Exception) -> None:
        while self._pending:
            item = self._pending.popleft()
            if not item.future.done():
                item.future.set_exception(exc)

    async def _run(self) -> None:
        while True:
            if not self._pending:
                self._cycle_anchor = None
                if self._draining:
                    # End-of-stream barrier: a zero-row batch through
                    # the same compute path, so drain returns only
                    # after the pool has executed everything queued
                    # before it.
                    await self._flush([])
                    return
                await self._arrival.wait()
                self._arrival.clear()
                continue
            if (
                self.window_s > 0
                and len(self._pending) < self.max_batch
                and not self._draining
            ):
                await asyncio.sleep(self.window_s)
            batch = self._take_batch()
            _telemetry.set_gauge("serve.queue_depth", len(self._pending))
            if not batch:
                continue
            await self._flush(batch)
            if self._pending and not self.breaker.admit():
                # The flush tripped the breaker: answer everything
                # already queued behind the broken model now instead of
                # burning more forward passes on it.
                self._fail_pending(CircuitOpenError(
                    f"model {self.entry.name!r} circuit breaker opened "
                    "while this request was queued",
                    retry_after_s=self.breaker.retry_after(),
                ))
                _telemetry.set_gauge("serve.queue_depth", 0)

    def _predict_counted(
        self, x: np.ndarray
    ) -> Tuple[np.ndarray, int, float, float]:
        """Runs on the compute pool: forward + MVM-launch delta, plus
        the perf() bounds of the forward pass itself (so the flush can
        record a ``serve.compute`` span distinct from pool queueing)."""
        if self._chaos is not None and int(x.shape[0]) > 0:
            self._chaos.before_compute(self.entry.name)
        before = self.entry.executor.total_mvm_launches()
        compute_start = perf()
        labels = self.entry.predict(x)
        compute_end = perf()
        launches = self.entry.executor.total_mvm_launches() - before
        return labels, launches, compute_start, compute_end

    def _fail_batch(self, batch: List[_Pending], exc: Exception,
                    outcome: str = "compute-failed") -> None:
        for item in batch:
            if item.span is not None:
                item.span.attrs.setdefault("outcome", outcome)
            if not item.future.done():
                item.future.set_exception(exc)

    async def _flush(self, batch: List[_Pending]) -> None:
        rows = [int(np.asarray(item.x).shape[0]) for item in batch]
        total_rows = sum(rows)
        if batch:
            x = np.concatenate([item.x for item in batch], axis=0)
        else:
            x = np.zeros((0,) + self.entry.input_shape)
        self._inflight = batch
        start = perf()
        timeout = self.compute_timeout_s if self.compute_timeout_s > 0 else None
        try:
            future = asyncio.get_running_loop().run_in_executor(
                self._compute.executor, self._predict_counted, x
            )
            labels, launches, compute_start, compute_end = (
                await asyncio.wait_for(future, timeout)
            )
        except asyncio.TimeoutError:
            # The thread may be hung: abandon the whole executor so the
            # next batch gets a healthy pool, and answer every waiter.
            self.breaker.record_failure()
            self.compute_timeouts_total += 1
            _telemetry.count("serve.compute.timeouts")
            self._compute.rebuild()
            _telemetry.count("serve.compute.rebuilds")
            self._fail_batch(batch, ExecutionError(
                f"model {self.entry.name!r} forward pass exceeded the "
                f"{self.compute_timeout_s:g} s compute timeout; the "
                "compute executor was rebuilt — retry"
            ), outcome="compute-timeout")
            self._inflight = []
            self._cycle_anchor = None
            return
        except Exception as exc:  # deterministic model failure, not ours
            self.breaker.record_failure()
            self.compute_failures_total += 1
            _telemetry.count("serve.compute.failures")
            self._fail_batch(batch, exc)
            self._inflight = []
            self._cycle_anchor = None
            return
        end = perf()
        self.breaker.record_success()
        self.batches_total += 1
        self._depth_samples.append((wall(), len(self._pending)))
        if total_rows:
            # Back-to-back batches sample the full departure interval
            # (previous flush end → this flush end): under load the
            # event-loop gap between flushes — response writes, new
            # arrivals — is part of every queued request's wait, and an
            # estimator blind to it under-predicts queue time.
            anchor = start if self._cycle_anchor is None else \
                self._cycle_anchor
            self.estimator.observe(end - anchor)
        self._cycle_anchor = end
        if len(batch) > 1:
            self.coalesced_total += len(batch)
            _telemetry.count("serve.coalesced_requests", len(batch))
        session = _telemetry.active()
        if session is not None:
            session.observe("serve.batch_size", len(batch))
            # One batch span linking the member requests' traces; its
            # own trace identity is the first member's (a batch exists
            # because that request arrived).
            member_traces = [
                item.span.trace_id for item in batch
                if item.span is not None and item.span.trace_id is not None
            ]
            batch_span = session.tracer.record_span(
                "serve.batch", start, end,
                trace_id=member_traces[0] if member_traces else None,
                model=self.entry.name, requests=len(batch), rows=total_rows,
                traces=member_traces,
            )
            session.tracer.record_span(
                "serve.compute", compute_start, compute_end,
                parent=batch_span, trace_id=batch_span.trace_id,
                rows=total_rows,
            )
            for item in batch:
                if item.span is not None:
                    session.tracer.record_span(
                        "serve.queue", item.enqueued, start,
                        parent=item.span, trace_id=item.span.trace_id,
                        batch_span=batch_span.span_id,
                    )
        offset = 0
        for item, n in zip(batch, rows):
            share = launches * (n / total_rows) if total_rows else 0.0
            result = PredictResult(
                predictions=labels[offset : offset + n],
                batch_requests=len(batch),
                batch_rows=total_rows,
                queue_seconds=start - item.enqueued,
                mvm_launches=share,
                ensemble_trials=self.entry.ensemble_trials,
            )
            offset += n
            if not item.future.done():
                item.future.set_result(result)
            if session is not None:
                session.observe("serve.queue_wait_seconds",
                                start - item.enqueued)
                session.observe("serve.latency_seconds", end - item.enqueued)
        self._inflight = []
