"""Cross-request micro-batching with bounded queues and backpressure.

One :class:`MicroBatcher` serves one model.  Concurrent predict
requests land in a bounded deque; a coalescer task waits a short window
after the first arrival, then merges up to ``max_batch`` requests into
a single ``(rows, ...)`` forward pass on the compute pool — under an
ensemble, a single stacked trial-tensor pass — and scatters the label
slices back to each caller's future.  Batch membership is an execution
detail: a request's labels are identical whether it rode with 31
companions or alone.

Backpressure: once ``queue_depth`` requests are pending, further
submits raise :class:`~repro.errors.BackpressureError` immediately
(the HTTP layer answers 429) instead of queueing unbounded work in
front of a saturated chip.

Drain: :meth:`drain` stops intake, lets the coalescer flush every
pending request, then pushes one deliberate *empty* batch through the
full compute path as an end-of-stream barrier — which is why
:meth:`~repro.mapping.executor.PIMExecutor.predict` must be
well-defined on zero-row input.

Energy accounting rides on the executor's existing MVM-launch
counters: the compute thread snapshots ``total_mvm_launches`` around
each flush and each request is billed its row-proportional share — no
second instrumentation path (with ``compute_workers > 1`` flushes may
interleave and the shares become approximate).
"""

from __future__ import annotations

import asyncio
import collections
import dataclasses
from concurrent.futures import ThreadPoolExecutor
from typing import Deque, List, Optional, Tuple

import numpy as np

from ..errors import BackpressureError
from ..telemetry import session as _telemetry
from ..telemetry.clock import perf
from .registry import ModelEntry

__all__ = ["MicroBatcher", "PredictResult"]


@dataclasses.dataclass
class PredictResult:
    """What one coalesced request gets back.

    Attributes
    ----------
    predictions:
        Labels for this request's rows only.
    batch_requests / batch_rows:
        Size of the batch this request rode in.
    queue_seconds:
        Enqueue-to-flush wait.
    mvm_launches:
        Row-proportional share of the batch's tile-MVM launches (the
        unit :meth:`~repro.mapping.executor.PIMExecutor.energy_estimate`
        prices).
    ensemble_trials:
        Realizations voted over (0 = plain single-network predict).
    """

    predictions: np.ndarray
    batch_requests: int
    batch_rows: int
    queue_seconds: float
    mvm_launches: float
    ensemble_trials: int


@dataclasses.dataclass
class _Pending:
    x: np.ndarray
    future: "asyncio.Future[PredictResult]"
    enqueued: float


class MicroBatcher:
    """Coalesces predict requests for one :class:`ModelEntry`."""

    def __init__(
        self,
        entry: ModelEntry,
        compute: ThreadPoolExecutor,
        max_batch: int = 32,
        window_s: float = 0.0,
        queue_depth: int = 128,
    ) -> None:
        self.entry = entry
        self._compute = compute
        self.max_batch = max_batch
        self.window_s = window_s
        self.queue_depth = queue_depth
        self._pending: Deque[_Pending] = collections.deque()
        self._arrival = asyncio.Event()
        self._draining = False
        self._task: Optional["asyncio.Task[None]"] = None
        #: lifetime counters, cheap enough to keep unconditionally
        self.requests_total = 0
        self.rejected_total = 0
        self.batches_total = 0
        self.coalesced_total = 0

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Launch the coalescer task on the running loop."""
        self._task = asyncio.get_running_loop().create_task(self._run())

    @property
    def depth(self) -> int:
        """Requests currently queued (the backpressure measure)."""
        return len(self._pending)

    async def submit(self, x: np.ndarray) -> PredictResult:
        """Queue one request's rows; resolves when its batch flushed."""
        if self._draining:
            self.rejected_total += 1
            raise BackpressureError(
                f"model {self.entry.name!r} is draining for shutdown"
            )
        if len(self._pending) >= self.queue_depth:
            self.rejected_total += 1
            _telemetry.count("serve.rejected")
            raise BackpressureError(
                f"model {self.entry.name!r} queue is full "
                f"({self.queue_depth} pending requests); retry later"
            )
        self.requests_total += 1
        _telemetry.count("serve.requests")
        item = _Pending(
            x=x,
            future=asyncio.get_running_loop().create_future(),
            enqueued=perf(),
        )
        self._pending.append(item)
        _telemetry.set_gauge("serve.queue_depth", len(self._pending))
        self._arrival.set()
        return await item.future

    async def drain(self) -> None:
        """Stop intake, flush everything pending, stop the coalescer."""
        self._draining = True
        self._arrival.set()
        if self._task is not None:
            await self._task
            self._task = None

    # ------------------------------------------------------------------
    async def _run(self) -> None:
        while True:
            if not self._pending:
                if self._draining:
                    # End-of-stream barrier: a zero-row batch through
                    # the same compute path, so drain returns only
                    # after the pool has executed everything queued
                    # before it.
                    await self._flush([])
                    return
                await self._arrival.wait()
                self._arrival.clear()
                continue
            if (
                self.window_s > 0
                and len(self._pending) < self.max_batch
                and not self._draining
            ):
                await asyncio.sleep(self.window_s)
            batch = [
                self._pending.popleft()
                for _ in range(min(len(self._pending), self.max_batch))
            ]
            _telemetry.set_gauge("serve.queue_depth", len(self._pending))
            await self._flush(batch)

    def _predict_counted(self, x: np.ndarray) -> Tuple[np.ndarray, int]:
        """Runs on the compute pool: forward + MVM-launch delta."""
        before = self.entry.executor.total_mvm_launches()
        labels = self.entry.predict(x)
        return labels, self.entry.executor.total_mvm_launches() - before

    async def _flush(self, batch: List[_Pending]) -> None:
        rows = [int(np.asarray(item.x).shape[0]) for item in batch]
        total_rows = sum(rows)
        if batch:
            x = np.concatenate([item.x for item in batch], axis=0)
        else:
            x = np.zeros((0,) + self.entry.input_shape)
        start = perf()
        try:
            labels, launches = await asyncio.get_running_loop().run_in_executor(
                self._compute, self._predict_counted, x
            )
        except Exception as exc:  # deterministic model failure, not ours
            for item in batch:
                if not item.future.done():
                    item.future.set_exception(exc)
            return
        end = perf()
        self.batches_total += 1
        if len(batch) > 1:
            self.coalesced_total += len(batch)
            _telemetry.count("serve.coalesced_requests", len(batch))
        session = _telemetry.active()
        if session is not None:
            session.observe("serve.batch_size", len(batch))
            session.tracer.record_span(
                "serve.batch", start, end,
                model=self.entry.name, requests=len(batch), rows=total_rows,
            )
        offset = 0
        for item, n in zip(batch, rows):
            share = launches * (n / total_rows) if total_rows else 0.0
            result = PredictResult(
                predictions=labels[offset : offset + n],
                batch_requests=len(batch),
                batch_rows=total_rows,
                queue_seconds=start - item.enqueued,
                mvm_launches=share,
                ensemble_trials=self.entry.ensemble_trials,
            )
            offset += n
            if not item.future.done():
                item.future.set_result(result)
            if session is not None:
                session.observe("serve.latency_seconds", end - item.enqueued)
