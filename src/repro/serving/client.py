"""Stdlib HTTP client + closed-loop load generator.

The client half is what tests and CI use to talk to a daemon; the load
generator is the measurement engine behind
``benchmarks/bench_serving.py`` — ``concurrency`` threads each fire
sequential predict requests (closed loop: a worker's next request
starts only after its previous answer), which is the standard way to
sweep offered concurrency without modelling arrival processes.
"""

from __future__ import annotations

import dataclasses
import http.client
import json
import threading
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ExecutionError
from ..telemetry.clock import perf
from ..units import KILO

__all__ = ["request", "predict", "LoadReport", "run_load"]


def request(
    host: str,
    port: int,
    method: str,
    path: str,
    payload: Optional[dict] = None,
    timeout: float = 30.0,
) -> Tuple[int, Dict[str, Any]]:
    """One HTTP exchange; returns ``(status, parsed JSON body)``."""
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        body = json.dumps(payload).encode() if payload is not None else None
        headers = {"Content-Type": "application/json"} if body else {}
        conn.request(method, path, body=body, headers=headers)
        response = conn.getresponse()
        raw = response.read()
        try:
            doc = json.loads(raw.decode()) if raw else {}
        except ValueError:
            doc = {"error": raw.decode(errors="replace")}
        return response.status, doc
    finally:
        conn.close()


def predict(
    host: str,
    port: int,
    model: str,
    inputs: np.ndarray,
    timeout: float = 30.0,
) -> Tuple[int, Dict[str, Any]]:
    """POST one predict request (``inputs`` is ``(rows, ...)``)."""
    return request(
        host, port, "POST", "/predict",
        payload={"model": model, "inputs": np.asarray(inputs).tolist()},
        timeout=timeout,
    )


# ----------------------------------------------------------------------
@dataclasses.dataclass
class LoadReport:
    """One load-generation run.

    Attributes
    ----------
    concurrency / requests:
        Worker threads and completed-OK request count.
    errors:
        Non-200 responses (429s land here) and transport failures.
    elapsed_s / throughput_rps:
        Wall time of the whole run and requests per second over it.
    latency_p50_ms / latency_p99_ms / latency_mean_ms:
        Client-observed per-request latency percentiles.
    mean_batch_requests:
        Server-reported mean coalesced batch size over OK responses —
        ~1 means batching never kicked in.
    """

    concurrency: int
    requests: int
    errors: int
    elapsed_s: float
    throughput_rps: float
    latency_p50_ms: float
    latency_p99_ms: float
    latency_mean_ms: float
    mean_batch_requests: float

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


def run_load(
    host: str,
    port: int,
    model: str,
    inputs: Sequence[np.ndarray],
    concurrency: int,
    requests_per_worker: int,
    timeout: float = 30.0,
) -> LoadReport:
    """Closed-loop load: ``concurrency`` workers, each firing
    ``requests_per_worker`` sequential single-sample requests drawn
    round-robin from ``inputs``."""
    if not inputs:
        raise ExecutionError("load generator needs at least one input row")
    latencies: List[List[float]] = [[] for _ in range(concurrency)]
    batch_sizes: List[List[int]] = [[] for _ in range(concurrency)]
    errors = [0] * concurrency
    barrier = threading.Barrier(concurrency + 1)

    def worker(wid: int) -> None:
        barrier.wait()
        for i in range(requests_per_worker):
            x = inputs[(wid + i * concurrency) % len(inputs)]
            start = perf()
            try:
                status, doc = predict(host, port, model, x, timeout=timeout)
            except OSError:
                errors[wid] += 1
                continue
            if status != 200:
                errors[wid] += 1
                continue
            latencies[wid].append(perf() - start)
            batch_sizes[wid].append(int(doc.get("batch_requests", 1)))

    threads = [
        threading.Thread(target=worker, args=(w,), daemon=True)
        for w in range(concurrency)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    start = perf()
    for thread in threads:
        thread.join()
    elapsed = perf() - start

    flat = sorted(sample for per in latencies for sample in per)
    merged_batches = [b for per in batch_sizes for b in per]
    ok = len(flat)
    if not flat:
        raise ExecutionError(
            f"load run completed 0 requests ({sum(errors)} errors) — "
            "is the daemon up?"
        )
    return LoadReport(
        concurrency=concurrency,
        requests=ok,
        errors=sum(errors),
        elapsed_s=elapsed,
        throughput_rps=ok / elapsed if elapsed > 0 else 0.0,
        latency_p50_ms=1 * KILO * flat[ok // 2],
        latency_p99_ms=1 * KILO * flat[min(ok - 1, (ok * 99) // 100)],
        latency_mean_ms=1 * KILO * float(np.mean(flat)),
        mean_batch_requests=float(np.mean(merged_batches)),
    )
