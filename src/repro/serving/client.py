"""Stdlib HTTP client + closed-loop load generator.

The client half is what tests and CI use to talk to a daemon; the load
generator is the measurement engine behind
``benchmarks/bench_serving.py`` — ``concurrency`` threads each fire
sequential predict requests (closed loop: a worker's next request
starts only after its previous answer), which is the standard way to
sweep offered concurrency without modelling arrival processes.

Retrying: :func:`predict` accepts a
:class:`~repro.serving.resilience.RetryPolicy`.  Predict is idempotent
(a pure function of its inputs), so transient refusals — 429
backpressure, 503 shed/breaker/drain answers, dropped connections —
are retried with seeded-jitter capped exponential backoff, honoring
the server's ``Retry-After`` hint and bounded by both an attempt count
and a total backoff budget.  Non-idempotent requests must not reuse
this machinery.

This module is **sync-only by declaration** — it is listed in
``repro.analysis.lint.config.SYNC_ONLY_MODULES``, so the ASYNC001
analyzer neither roots in it nor traverses into it.  The blocking
``time.sleep`` retry backoff in :func:`predict` is therefore in scope
explicitly: this client runs in plain threads (tests, CI, the load
generator), never on an asyncio event loop.  Do not call it from
``async def`` code; use the daemon's in-process API instead.
"""

from __future__ import annotations

import dataclasses
import http.client
import json
import threading
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ExecutionError
from ..telemetry.clock import perf
from ..units import KILO
from .resilience import RetryPolicy

__all__ = ["request", "predict", "LoadReport", "run_load", "RetryPolicy"]

#: transport failures one HTTP exchange can raise: a refused/reset
#: socket (OSError) or a connection dropped mid-response
#: (http.client.HTTPException, e.g. BadStatusLine from an empty reply).
TRANSPORT_ERRORS = (OSError, http.client.HTTPException)


def request(
    host: str,
    port: int,
    method: str,
    path: str,
    payload: Optional[dict] = None,
    timeout: float = 30.0,
) -> Tuple[int, Dict[str, Any]]:
    """One HTTP exchange; returns ``(status, parsed JSON body)``.

    A ``Retry-After`` response header is surfaced as a
    ``retry_after_hint_s`` key on the body (the serving daemon also
    puts the precise float in the JSON itself as ``retry_after_s``).
    """
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        body = json.dumps(payload).encode() if payload is not None else None
        headers = {"Content-Type": "application/json"} if body else {}
        conn.request(method, path, body=body, headers=headers)
        response = conn.getresponse()
        raw = response.read()
        try:
            doc = json.loads(raw.decode()) if raw else {}
        except ValueError:
            doc = {"error": raw.decode(errors="replace")}
        retry_after = response.getheader("Retry-After")
        if retry_after is not None and isinstance(doc, dict):
            try:
                doc.setdefault("retry_after_hint_s", float(retry_after))
            except ValueError:
                pass
        return response.status, doc
    finally:
        conn.close()


def _retry_after_from(doc: Dict[str, Any]) -> Optional[float]:
    value = doc.get("retry_after_s", doc.get("retry_after_hint_s"))
    return float(value) if isinstance(value, (int, float)) else None


def predict(
    host: str,
    port: int,
    model: str,
    inputs: np.ndarray,
    timeout: float = 30.0,
    deadline_ms: Optional[float] = None,
    retry: Optional[RetryPolicy] = None,
) -> Tuple[int, Dict[str, Any]]:
    """POST one predict request (``inputs`` is ``(rows, ...)``).

    With ``retry``, transient outcomes (429/503 and transport
    failures) are retried under the policy; the returned pair is the
    final attempt's.  The response carries ``attempts`` (total tries)
    when a policy was supplied, plus ``retried_trace_ids`` — the
    server-assigned trace ids of the *earlier*, retried attempts — so
    a shed-then-served request stays attributable to every server-side
    trace it produced.
    """
    payload = {"model": model, "inputs": np.asarray(inputs).tolist()}
    if deadline_ms is not None:
        payload["deadline_ms"] = deadline_ms
    if retry is None:
        return request(host, port, "POST", "/predict",
                       payload=payload, timeout=timeout)
    rng = retry.rng()
    slept = 0.0
    attempt = 0
    retried_trace_ids: List[str] = []

    def _finish(doc: Dict[str, Any]) -> Dict[str, Any]:
        if isinstance(doc, dict):
            doc.setdefault("attempts", attempt + 1)
            if retried_trace_ids:
                doc.setdefault("retried_trace_ids", retried_trace_ids)
        return doc

    while True:
        try:
            status, doc = request(host, port, "POST", "/predict",
                                  payload=payload, timeout=timeout)
        except TRANSPORT_ERRORS:
            if attempt + 1 >= retry.max_attempts:
                raise
            delay = retry.backoff_s(attempt, rng)
            if slept + delay > retry.total_budget_s:
                raise
            time.sleep(delay)
            slept += delay
            attempt += 1
            continue
        if (not retry.should_retry_status(status)
                or attempt + 1 >= retry.max_attempts):
            return status, _finish(doc)
        delay = retry.backoff_s(attempt, rng,
                                retry_after_s=_retry_after_from(doc))
        if slept + delay > retry.total_budget_s:
            return status, _finish(doc)
        # This attempt's answer is about to be discarded for a retry:
        # keep its server-side trace id before it goes.
        if isinstance(doc, dict) and isinstance(doc.get("trace_id"), str):
            retried_trace_ids.append(doc["trace_id"])
        time.sleep(delay)
        slept += delay
        attempt += 1


# ----------------------------------------------------------------------
@dataclasses.dataclass
class LoadReport:
    """One load-generation run.

    Attributes
    ----------
    concurrency / requests:
        Worker threads and completed-OK request count.
    errors:
        Non-200 final responses (429s land here) and transport
        failures.
    shed:
        Of those errors, final 503 answers that carried a
        ``Retry-After`` — deadline sheds, breaker opens and other
        deliberate load-control refusals.
    retries:
        Extra attempts spent by the retry policy across all requests
        (0 without a policy).
    elapsed_s / throughput_rps:
        Wall time of the whole run and *goodput*: OK requests per
        second over it.
    latency_p50_ms / latency_p99_ms / latency_mean_ms:
        Client-observed per-request latency percentiles over admitted
        (OK) requests.
    server_latency_p99_ms:
        p99 of the *server-reported* ``latency_ms`` over OK requests —
        parse-to-answer time, the window deadline admission control
        actually governs (client numbers additionally carry connection
        setup and response transfer).
    mean_batch_requests:
        Server-reported mean coalesced batch size over OK responses —
        ~1 means batching never kicked in.
    failed_trace_ids / retried_trace_ids:
        Server-assigned trace ids of final non-200 answers and of
        attempts a retry policy discarded, capped at
        ``TRACE_ID_CAP`` each — with a telemetry-enabled daemon this is
        what makes a chaos-run failure attributable to its exact
        server-side trace.  Empty when the daemon ran without
        telemetry.
    """

    TRACE_ID_CAP = 64

    concurrency: int
    requests: int
    errors: int
    elapsed_s: float
    throughput_rps: float
    latency_p50_ms: float
    latency_p99_ms: float
    latency_mean_ms: float
    mean_batch_requests: float
    shed: int = 0
    retries: int = 0
    server_latency_p99_ms: float = 0.0
    failed_trace_ids: List[str] = dataclasses.field(default_factory=list)
    retried_trace_ids: List[str] = dataclasses.field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


def run_load(
    host: str,
    port: int,
    model: str,
    inputs: Sequence[np.ndarray],
    concurrency: int,
    requests_per_worker: int,
    timeout: float = 30.0,
    deadline_ms: Optional[float] = None,
    retry: Optional[RetryPolicy] = None,
) -> LoadReport:
    """Closed-loop load: ``concurrency`` workers, each firing
    ``requests_per_worker`` sequential single-sample requests drawn
    round-robin from ``inputs``.

    With ``deadline_ms`` every request carries that latency budget (so
    the daemon's admission control may shed it with 503 +
    ``Retry-After``); with ``retry`` each worker retries transient
    refusals under a per-worker-seeded copy of the policy, which is
    how the benchmark measures *goodput* under shedding.
    """
    if not inputs:
        raise ExecutionError("load generator needs at least one input row")
    latencies: List[List[float]] = [[] for _ in range(concurrency)]
    server_ms: List[List[float]] = [[] for _ in range(concurrency)]
    batch_sizes: List[List[int]] = [[] for _ in range(concurrency)]
    errors = [0] * concurrency
    sheds = [0] * concurrency
    retries = [0] * concurrency
    failed_ids: List[List[str]] = [[] for _ in range(concurrency)]
    retried_ids: List[List[str]] = [[] for _ in range(concurrency)]
    barrier = threading.Barrier(concurrency + 1)

    def worker(wid: int) -> None:
        policy = (None if retry is None
                  else dataclasses.replace(retry, seed=retry.seed + wid))
        barrier.wait()
        for i in range(requests_per_worker):
            x = inputs[(wid + i * concurrency) % len(inputs)]
            start = perf()
            try:
                status, doc = predict(
                    host, port, model, x, timeout=timeout,
                    deadline_ms=deadline_ms, retry=policy,
                )
            except TRANSPORT_ERRORS:
                errors[wid] += 1
                continue
            retries[wid] += max(0, int(doc.get("attempts", 1)) - 1)
            for trace_id in doc.get("retried_trace_ids", ()):
                if isinstance(trace_id, str):
                    retried_ids[wid].append(trace_id)
            if status != 200:
                errors[wid] += 1
                if status == 503 and _retry_after_from(doc) is not None:
                    sheds[wid] += 1
                if isinstance(doc.get("trace_id"), str):
                    failed_ids[wid].append(doc["trace_id"])
                continue
            latencies[wid].append(perf() - start)
            server_ms[wid].append(float(doc.get("latency_ms", 0.0)))
            batch_sizes[wid].append(int(doc.get("batch_requests", 1)))

    threads = [
        threading.Thread(target=worker, args=(w,), daemon=True)
        for w in range(concurrency)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    start = perf()
    for thread in threads:
        thread.join()
    elapsed = perf() - start

    flat = sorted(sample for per in latencies for sample in per)
    flat_server = sorted(sample for per in server_ms for sample in per)
    merged_batches = [b for per in batch_sizes for b in per]
    ok = len(flat)
    if not flat:
        raise ExecutionError(
            f"load run completed 0 requests ({sum(errors)} errors) — "
            "is the daemon up?"
        )
    return LoadReport(
        concurrency=concurrency,
        requests=ok,
        errors=sum(errors),
        elapsed_s=elapsed,
        throughput_rps=ok / elapsed if elapsed > 0 else 0.0,
        latency_p50_ms=1 * KILO * flat[ok // 2],
        latency_p99_ms=1 * KILO * flat[min(ok - 1, (ok * 99) // 100)],
        latency_mean_ms=1 * KILO * float(np.mean(flat)),
        mean_batch_requests=float(np.mean(merged_batches)),
        shed=sum(sheds),
        retries=sum(retries),
        server_latency_p99_ms=flat_server[min(ok - 1, (ok * 99) // 100)],
        failed_trace_ids=[
            t for per in failed_ids for t in per
        ][: LoadReport.TRACE_ID_CAP],
        retried_trace_ids=[
            t for per in retried_ids for t in per
        ][: LoadReport.TRACE_ID_CAP],
    )
