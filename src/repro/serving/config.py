"""Configuration of the ``repro serve`` daemon.

All knobs are *execution* knobs: they shape latency, throughput and
memory, never the predictions themselves — a request's labels are
byte-identical whether it was coalesced into a 32-row batch or served
alone (the contract ``tests/serving/`` pins down).
"""

from __future__ import annotations

import dataclasses
from typing import Tuple

from ..errors import ConfigurationError
from ..units import MILLI

__all__ = ["ServingConfig"]


@dataclasses.dataclass(frozen=True)
class ServingConfig:
    """Knobs of one serving daemon.

    Attributes
    ----------
    host / port:
        Bind address; port 0 picks an ephemeral port (the bound port is
        exposed on :attr:`~repro.serving.daemon.ServingDaemon.port`).
    models:
        Benchmark network keys the registry loads (artifact-store
        cached; a cold start trains them first).
    max_batch:
        Coalescing bound — at most this many queued requests merge into
        one forward pass.  ``1`` disables cross-request batching.
    batch_window_s:
        Coalescing window in seconds: after the first request of a
        batch arrives, the coalescer waits this long for companions
        before flushing (0 flushes immediately; latency floor vs
        batching opportunity).
    queue_depth:
        Backpressure bound — pending requests beyond this are rejected
        with :class:`~repro.errors.BackpressureError` (HTTP 429)
        instead of growing the queue without limit.
    compute_workers:
        Threads running the numpy forward passes.  The default of 1
        serialises compute, which keeps the executor's MVM-launch
        counters exact for per-request energy accounting; raise it only
        if per-request energy may be approximate.
    drain_timeout_s:
        Grace period for in-flight requests on shutdown.  Requests
        still unanswered when it expires are *failed* (503 /
        :class:`~repro.errors.ExecutionError`, counted as
        ``serve.drain.abandoned``) rather than left hanging.
    compute_timeout_s:
        Per-batch forward-pass timeout.  A batch that exceeds it is
        failed with :class:`~repro.errors.ExecutionError` (HTTP 503)
        and the compute pool is rebuilt so the hung thread cannot
        wedge the daemon.  ``0`` disables the timeout.
    breaker_threshold / breaker_cooldown_s:
        Per-model circuit breaker: after ``breaker_threshold``
        consecutive batch failures the model answers
        :class:`~repro.errors.CircuitOpenError` (503 + ``Retry-After``)
        for ``breaker_cooldown_s``, then lets one probe batch through.
    ewma_alpha:
        Smoothing factor of the batch-service-time EWMA behind
        deadline-aware admission control (larger tracks load shifts
        faster; see :class:`~repro.serving.resilience.
        ServiceTimeEstimator`).
    n_samples / seed:
        Training-set size and master seed used to key the model cache
        (must match a previous run to reuse its artifacts).
    ensemble_sigma / ensemble_trials:
        When both are non-zero, each model also carries an ensemble of
        ``ensemble_trials`` variation-perturbed network clones; predict
        requests then run one :class:`~repro.reram.crossbar.
        StackedCrossbar` trial-tensor batch and answer with the
        majority vote across realizations.
    """

    host: str = "127.0.0.1"
    port: int = 0
    models: Tuple[str, ...] = ("mlp-1",)
    max_batch: int = 32
    batch_window_s: float = 2 * MILLI
    queue_depth: int = 128
    compute_workers: int = 1
    drain_timeout_s: float = 10.0
    compute_timeout_s: float = 30.0
    breaker_threshold: int = 5
    breaker_cooldown_s: float = 1.0
    ewma_alpha: float = 0.25
    n_samples: int = 600
    seed: int = 0
    ensemble_sigma: float = 0.0
    ensemble_trials: int = 0

    def __post_init__(self) -> None:
        if not self.models:
            raise ConfigurationError("need at least one model to serve")
        if self.max_batch < 1:
            raise ConfigurationError(
                f"max_batch must be >= 1, got {self.max_batch!r}"
            )
        if self.batch_window_s < 0:
            raise ConfigurationError(
                f"batch window must be >= 0, got {self.batch_window_s!r}"
            )
        if self.queue_depth < 1:
            raise ConfigurationError(
                f"queue_depth must be >= 1, got {self.queue_depth!r}"
            )
        if self.compute_workers < 1:
            raise ConfigurationError(
                f"compute_workers must be >= 1, got {self.compute_workers!r}"
            )
        if self.compute_timeout_s < 0:
            raise ConfigurationError(
                f"compute_timeout_s must be >= 0 (0 disables), got "
                f"{self.compute_timeout_s!r}"
            )
        if self.breaker_threshold < 1:
            raise ConfigurationError(
                f"breaker_threshold must be >= 1, got "
                f"{self.breaker_threshold!r}"
            )
        if self.breaker_cooldown_s < 0:
            raise ConfigurationError(
                f"breaker_cooldown_s must be >= 0, got "
                f"{self.breaker_cooldown_s!r}"
            )
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ConfigurationError(
                f"ewma_alpha must be in (0, 1], got {self.ewma_alpha!r}"
            )
        if self.seed < 0:
            raise ConfigurationError(
                f"seed must be >= 0, got {self.seed!r}: model-cache keys "
                "and ensemble trial streams derive from it"
            )
        if self.ensemble_trials < 0 or self.ensemble_sigma < 0:
            raise ConfigurationError("ensemble knobs must be >= 0")
        if bool(self.ensemble_trials) != bool(self.ensemble_sigma > 0):
            raise ConfigurationError(
                "ensemble_sigma and ensemble_trials must be set together"
            )
