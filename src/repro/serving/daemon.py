"""The long-lived serving process: registry + batchers + HTTP front.

Lifecycle::

    daemon = ServingDaemon(registry, config)
    await daemon.start()        # binds the socket, launches coalescers
    ...                         # serve
    await daemon.shutdown()     # stop intake, drain in-flight, close

``run_forever`` wraps that in ``asyncio.run`` with SIGINT/SIGTERM
handlers for the CLI; :class:`BackgroundServer` runs the same lifecycle
on a dedicated thread for tests and the load-generator benchmark.

Graceful drain: shutdown first stops accepting connections, then drains
every model's batcher — queued requests are flushed and answered, new
submits are refused — and only then tears the compute pool down.  If
the drain grace period (``drain_timeout_s``) expires with stragglers
still unanswered, they are *failed* with
:class:`~repro.errors.ExecutionError` (HTTP 503) and counted as
``serve.drain.abandoned`` — an in-flight request is answered or failed
by a clean shutdown, never left hanging until its socket timeout.

Resilience wiring: the daemon owns one rebuildable
:class:`~repro.serving.resilience.ComputePool` shared by all batchers,
gives each model its own
:class:`~repro.serving.resilience.CircuitBreaker`, and threads an
optional chaos plan (see :mod:`repro.chaos`) into the compute and
connection paths so infrastructure faults are injectable under test.
"""

from __future__ import annotations

import asyncio
import signal
import threading
from typing import Any, Dict, List, Optional

from ..errors import ExecutionError
from ..telemetry import session as _telemetry
from .batcher import MicroBatcher
from .config import ServingConfig
from .registry import ModelRegistry
from .resilience import CircuitBreaker, ComputePool
from .server import HTTPFrontend

__all__ = ["ServingDaemon", "BackgroundServer"]


class ServingDaemon:
    """Owns the sockets, batchers and compute pool of one server."""

    def __init__(
        self,
        registry: ModelRegistry,
        config: ServingConfig,
        chaos=None,
    ) -> None:
        self.registry = registry
        self.config = config
        self.chaos = chaos
        self.draining = False
        self.port: Optional[int] = None
        self.drain_abandoned_total = 0
        self._batchers: Dict[str, MicroBatcher] = {}
        self._compute: Optional[ComputePool] = None
        self._server: Optional[asyncio.AbstractServer] = None

    # ------------------------------------------------------------------
    def batcher_for(self, name: str) -> MicroBatcher:
        """The model's coalescer (:class:`~repro.errors.
        ConfigurationError` for unknown names,
        :class:`~repro.errors.ModelUnavailableError` for load-failed
        ones, via the registry)."""
        entry = self.registry.get(name)
        return self._batchers[entry.name]

    def describe_models(self) -> List[Dict[str, Any]]:
        out = []
        for name in self.registry.names():
            entry = self.registry.get(name)
            batcher = self._batchers[name]
            out.append({
                "name": name,
                "input_shape": list(entry.input_shape),
                "ensemble_trials": entry.ensemble_trials,
                "queue_depth": batcher.depth,
                "breaker_state": batcher.breaker.state,
                "total_mvm_launches": entry.executor.total_mvm_launches(),
            })
        return out

    def metrics_snapshot(self) -> Dict[str, Any]:
        """Lifetime serve.* counters, aggregated over models."""
        totals = {
            "requests": 0, "rejected": 0, "batches": 0, "coalesced": 0,
            "shed_deadline": 0, "shed_expired": 0, "breaker_rejected": 0,
            "compute_failures": 0, "compute_timeouts": 0,
        }
        per_model = {}
        for name, batcher in self._batchers.items():
            counters = {
                "requests": batcher.requests_total,
                "rejected": batcher.rejected_total,
                "batches": batcher.batches_total,
                "coalesced": batcher.coalesced_total,
                "shed_deadline": batcher.shed_deadline_total,
                "shed_expired": batcher.shed_expired_total,
                "breaker_rejected": batcher.breaker_rejected_total,
                "compute_failures": batcher.compute_failures_total,
                "compute_timeouts": batcher.compute_timeouts_total,
                "breaker_state": batcher.breaker.state,
                "breaker_opens": batcher.breaker.opens_total,
                "queue_depth": batcher.depth,
                # Admission-control view: the service-time EWMA and the
                # tail budget enqueue decisions are made against (0
                # until the first batch calibrates them).
                "service_ewma_ms": (batcher.estimator.value or 0.0) * 1e3,
                "service_budget_ms": (batcher.estimator.budget() or 0.0)
                * 1e3,
            }
            per_model[name] = counters
            for key in totals:
                totals[key] += counters[key]
        return {
            "totals": totals,
            "models": per_model,
            "compute_rebuilds": (
                self._compute.rebuilds if self._compute is not None else 0
            ),
            "drain_abandoned": self.drain_abandoned_total,
            "failed_models": dict(self.registry.failed),
        }

    def metrics_openmetrics(self) -> str:
        """OpenMetrics text rendering of the same lifetime counters the
        JSON snapshot reports, labelled per model.

        Built from the batchers' unconditional counters only — never
        the telemetry session registry — so the exposition, like the
        JSON form, is byte-identical whether telemetry is on or off.
        """
        from ..telemetry.openmetrics import OpenMetricsBuilder
        from ..units import MILLI

        snap = self.metrics_snapshot()
        builder = OpenMetricsBuilder()
        counter_keys = (
            "requests", "rejected", "batches", "coalesced",
            "shed_deadline", "shed_expired", "breaker_rejected",
            "compute_failures", "compute_timeouts", "breaker_opens",
        )
        for name in sorted(snap["models"]):
            counters = snap["models"][name]
            labels = {"model": name}
            for key in counter_keys:
                builder.counter(
                    f"repro_serve_{key}", counters[key], labels=labels
                )
            builder.gauge(
                "repro_serve_queue_depth", counters["queue_depth"],
                labels=labels,
            )
            builder.gauge(
                "repro_serve_breaker_open",
                1.0 if counters["breaker_state"] == "open" else 0.0,
                labels=labels,
            )
            builder.gauge(
                "repro_serve_service_ewma_seconds",
                counters["service_ewma_ms"] * MILLI, labels=labels,
            )
            builder.gauge(
                "repro_serve_service_budget_seconds",
                counters["service_budget_ms"] * MILLI, labels=labels,
            )
            trend = self._batchers[name].depth_trend()
            if trend["count"]:
                for stat in ("min", "mean", "max"):
                    builder.gauge(
                        "repro_serve_queue_depth_trend", trend[stat],
                        labels={"model": name, "stat": stat},
                    )
        builder.counter(
            "repro_serve_compute_rebuilds", snap["compute_rebuilds"]
        )
        builder.counter(
            "repro_serve_drain_abandoned", snap["drain_abandoned"]
        )
        for name in sorted(snap["failed_models"]):
            builder.gauge(
                "repro_serve_model_failed", 1.0,
                labels={"model": name,
                        "reason": str(snap["failed_models"][name])},
            )
        return builder.render()

    # ------------------------------------------------------------------
    async def start(self) -> None:
        if self._server is not None:
            raise ExecutionError("daemon already started")
        config = self.config
        self._compute = ComputePool(workers=config.compute_workers)
        for name in self.registry.names():
            batcher = MicroBatcher(
                self.registry.get(name),
                self._compute,
                max_batch=config.max_batch,
                window_s=config.batch_window_s,
                queue_depth=config.queue_depth,
                compute_timeout_s=config.compute_timeout_s,
                breaker=CircuitBreaker(
                    threshold=config.breaker_threshold,
                    cooldown_s=config.breaker_cooldown_s,
                    name=name,
                ),
                ewma_alpha=config.ewma_alpha,
                chaos=self.chaos,
            )
            batcher.start()
            self._batchers[name] = batcher
        frontend = HTTPFrontend(self)
        self._server = await asyncio.start_server(
            frontend.handle, host=config.host, port=config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def shutdown(self) -> None:
        """Stop intake, drain every batcher, release the pool."""
        if self._server is None:
            return
        self.draining = True
        self._server.close()
        forced = False
        try:
            await asyncio.wait_for(
                asyncio.gather(*(b.drain() for b in self._batchers.values())),
                timeout=self.config.drain_timeout_s,
            )
        except asyncio.TimeoutError:
            # The grace period is over: answer every straggler with a
            # 503 instead of leaving its client to hang until the
            # socket timeout, and abandon the (possibly hung) pool.
            forced = True
            error = ExecutionError(
                "serving daemon drain timed out after "
                f"{self.config.drain_timeout_s:g} s; request abandoned at "
                "shutdown — retry against the next instance"
            )
            abandoned = sum(
                batcher.abort(error) for batcher in self._batchers.values()
            )
            await asyncio.gather(
                *(b.reap() for b in self._batchers.values()),
                return_exceptions=True,
            )
            self.drain_abandoned_total += abandoned
            if abandoned:
                _telemetry.count("serve.drain.abandoned", abandoned)
        # Only now wait for the listener: every batcher future is
        # resolved or failed, so connection handlers can flush their
        # responses and detach.  (On 3.12+ wait_closed blocks until all
        # handlers finish — calling it before the drain/abort above
        # would deadlock on a hung compute thread.)  Bounded anyway so
        # one wedged socket cannot stall shutdown.
        try:
            await asyncio.wait_for(self._server.wait_closed(), timeout=5.0)
        except asyncio.TimeoutError:  # pragma: no cover - wedged socket
            pass
        self._server = None
        if self._compute is not None:
            self._compute.shutdown(wait=not forced)
            self._compute = None
        session = _telemetry.active()
        if session is not None:
            session.manifest.slo = self._slo_summary(session)

    def _slo_summary(self, session) -> Dict[str, Any]:
        """Admitted-latency p99 vs the largest client deadline budget,
        recorded into the run manifest at drain for ``repro report
        --format trace``."""
        from ..units import MILLI

        hist = session.registry.histogram("serve.latency_seconds")
        budget_s = max(
            (b.deadline_budget_max_s for b in self._batchers.values()),
            default=0.0,
        )
        admitted = hist.count
        p99_ms = hist.quantile(0.99) / MILLI if admitted else None
        budget_ms = budget_s / MILLI if budget_s > 0 else None
        return {
            "admitted": admitted,
            "admitted_p99_ms": p99_ms,
            "deadline_budget_ms": budget_ms,
            "within_budget": (
                None if p99_ms is None or budget_ms is None
                else bool(p99_ms <= budget_ms)
            ),
        }

    # ------------------------------------------------------------------
    async def _main(self, stop: asyncio.Event) -> None:
        await self.start()
        try:
            await stop.wait()
        finally:
            await self.shutdown()

    def run_forever(self, announce=None) -> None:
        """Blocking entry point for the CLI (SIGINT/SIGTERM drain)."""

        async def body() -> None:
            stop = asyncio.Event()
            loop = asyncio.get_running_loop()
            for sig in (signal.SIGINT, signal.SIGTERM):
                try:
                    loop.add_signal_handler(sig, stop.set)
                except NotImplementedError:  # pragma: no cover - non-POSIX
                    pass
            started = asyncio.get_running_loop().create_task(
                self._main(stop)
            )
            while self.port is None and not started.done():
                await asyncio.sleep(0.01)
            if announce is not None and self.port is not None:
                announce(self)
            await started

        asyncio.run(body())


class BackgroundServer:
    """A :class:`ServingDaemon` on its own event-loop thread.

    Context-manager used by tests and ``benchmarks/bench_serving.py``::

        with BackgroundServer(registry, config) as server:
            client.predict(server.host, server.port, "mlp-1", rows)
    """

    def __init__(
        self,
        registry: ModelRegistry,
        config: ServingConfig,
        chaos=None,
    ) -> None:
        self.daemon = ServingDaemon(registry, config, chaos=chaos)
        self.host = config.host
        self._ready = threading.Event()
        self._stop: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._error: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._thread_main, name="repro-serve-loop", daemon=True
        )

    @property
    def port(self) -> int:
        port = self.daemon.port
        if port is None:
            raise ExecutionError("server is not running")
        return port

    def _thread_main(self) -> None:
        async def body() -> None:
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            await self.daemon.start()
            self._ready.set()
            try:
                await self._stop.wait()
            finally:
                await self.daemon.shutdown()

        try:
            asyncio.run(body())
        except BaseException as exc:  # surfaced by start() or stop()
            self._error = exc
        finally:
            self._ready.set()

    def start(self) -> "BackgroundServer":
        self._thread.start()
        self._ready.wait(timeout=60.0)
        if self._error is not None:
            raise ExecutionError(
                f"serving daemon failed to start: {self._error}"
            ) from self._error
        if self.daemon.port is None:
            raise ExecutionError("serving daemon did not bind a port")
        return self

    def stop(self) -> None:
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:
                pass  # loop already dead; the join + error check below
        self._thread.join(timeout=60.0)
        if self._error is not None:
            # The loop died mid-run (not at startup — start() would
            # have raised): a crashed daemon must not look like a
            # clean stop.
            raise ExecutionError(
                f"serving daemon died while running: {self._error}"
            ) from self._error

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()
