"""The long-lived serving process: registry + batchers + HTTP front.

Lifecycle::

    daemon = ServingDaemon(registry, config)
    await daemon.start()        # binds the socket, launches coalescers
    ...                         # serve
    await daemon.shutdown()     # stop intake, drain in-flight, close

``run_forever`` wraps that in ``asyncio.run`` with SIGINT/SIGTERM
handlers for the CLI; :class:`BackgroundServer` runs the same lifecycle
on a dedicated thread for tests and the load-generator benchmark.

Graceful drain: shutdown first stops accepting connections, then drains
every model's batcher — queued requests are flushed and answered, new
submits are refused — and only then tears the compute pool down.  An
in-flight request is therefore never dropped by a clean shutdown.
"""

from __future__ import annotations

import asyncio
import signal
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional

from ..errors import ExecutionError
from .batcher import MicroBatcher
from .config import ServingConfig
from .registry import ModelRegistry
from .server import HTTPFrontend

__all__ = ["ServingDaemon", "BackgroundServer"]


class ServingDaemon:
    """Owns the sockets, batchers and compute pool of one server."""

    def __init__(self, registry: ModelRegistry, config: ServingConfig) -> None:
        self.registry = registry
        self.config = config
        self.draining = False
        self.port: Optional[int] = None
        self._batchers: Dict[str, MicroBatcher] = {}
        self._compute: Optional[ThreadPoolExecutor] = None
        self._server: Optional[asyncio.AbstractServer] = None

    # ------------------------------------------------------------------
    def batcher_for(self, name: str) -> MicroBatcher:
        """The model's coalescer (:class:`~repro.errors.ConfigurationError`
        for unknown names, via the registry)."""
        entry = self.registry.get(name)
        return self._batchers[entry.name]

    def describe_models(self) -> List[Dict[str, Any]]:
        out = []
        for name in self.registry.names():
            entry = self.registry.get(name)
            batcher = self._batchers[name]
            out.append({
                "name": name,
                "input_shape": list(entry.input_shape),
                "ensemble_trials": entry.ensemble_trials,
                "queue_depth": batcher.depth,
                "total_mvm_launches": entry.executor.total_mvm_launches(),
            })
        return out

    def metrics_snapshot(self) -> Dict[str, Any]:
        """Lifetime serve.* counters, aggregated over models."""
        totals = {"requests": 0, "rejected": 0, "batches": 0, "coalesced": 0}
        per_model = {}
        for name, batcher in self._batchers.items():
            counters = {
                "requests": batcher.requests_total,
                "rejected": batcher.rejected_total,
                "batches": batcher.batches_total,
                "coalesced": batcher.coalesced_total,
                "queue_depth": batcher.depth,
            }
            per_model[name] = counters
            for key in totals:
                totals[key] += counters[key]
        return {"totals": totals, "models": per_model}

    # ------------------------------------------------------------------
    async def start(self) -> None:
        if self._server is not None:
            raise ExecutionError("daemon already started")
        config = self.config
        self._compute = ThreadPoolExecutor(
            max_workers=config.compute_workers,
            thread_name_prefix="repro-serve",
        )
        for name in self.registry.names():
            batcher = MicroBatcher(
                self.registry.get(name),
                self._compute,
                max_batch=config.max_batch,
                window_s=config.batch_window_s,
                queue_depth=config.queue_depth,
            )
            batcher.start()
            self._batchers[name] = batcher
        frontend = HTTPFrontend(self)
        self._server = await asyncio.start_server(
            frontend.handle, host=config.host, port=config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def shutdown(self) -> None:
        """Stop intake, drain every batcher, release the pool."""
        if self._server is None:
            return
        self.draining = True
        self._server.close()
        await self._server.wait_closed()
        self._server = None
        try:
            await asyncio.wait_for(
                asyncio.gather(*(b.drain() for b in self._batchers.values())),
                timeout=self.config.drain_timeout_s,
            )
        except asyncio.TimeoutError:
            pass  # give up on stragglers; the pool shutdown below waits
        if self._compute is not None:
            self._compute.shutdown(wait=True)
            self._compute = None

    # ------------------------------------------------------------------
    async def _main(self, stop: asyncio.Event) -> None:
        await self.start()
        try:
            await stop.wait()
        finally:
            await self.shutdown()

    def run_forever(self, announce=None) -> None:
        """Blocking entry point for the CLI (SIGINT/SIGTERM drain)."""

        async def body() -> None:
            stop = asyncio.Event()
            loop = asyncio.get_running_loop()
            for sig in (signal.SIGINT, signal.SIGTERM):
                try:
                    loop.add_signal_handler(sig, stop.set)
                except NotImplementedError:  # pragma: no cover - non-POSIX
                    pass
            started = asyncio.get_running_loop().create_task(
                self._main(stop)
            )
            while self.port is None and not started.done():
                await asyncio.sleep(0.01)
            if announce is not None and self.port is not None:
                announce(self)
            await started

        asyncio.run(body())


class BackgroundServer:
    """A :class:`ServingDaemon` on its own event-loop thread.

    Context-manager used by tests and ``benchmarks/bench_serving.py``::

        with BackgroundServer(registry, config) as server:
            client.predict(server.host, server.port, "mlp-1", rows)
    """

    def __init__(self, registry: ModelRegistry, config: ServingConfig) -> None:
        self.daemon = ServingDaemon(registry, config)
        self.host = config.host
        self._ready = threading.Event()
        self._stop: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._error: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._thread_main, name="repro-serve-loop", daemon=True
        )

    @property
    def port(self) -> int:
        port = self.daemon.port
        if port is None:
            raise ExecutionError("server is not running")
        return port

    def _thread_main(self) -> None:
        async def body() -> None:
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            await self.daemon.start()
            self._ready.set()
            try:
                await self._stop.wait()
            finally:
                await self.daemon.shutdown()

        try:
            asyncio.run(body())
        except BaseException as exc:  # surface startup failures in start()
            self._error = exc
        finally:
            self._ready.set()

    def start(self) -> "BackgroundServer":
        self._thread.start()
        self._ready.wait(timeout=60.0)
        if self._error is not None:
            raise ExecutionError(
                f"serving daemon failed to start: {self._error}"
            ) from self._error
        if self.daemon.port is None:
            raise ExecutionError("serving daemon did not bind a port")
        return self

    def stop(self) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=60.0)

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()
