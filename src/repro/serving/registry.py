"""The model registry: named, calibrated executors ready to serve.

Each entry wraps a trained :class:`~repro.nn.model.Sequential` (loaded
through the artifact store — a warm cache makes startup instant, a cold
one trains and persists first), compiled onto ReSiPE crossbars and
calibrated once at load time.  Optionally an entry carries a
*fault-trial ensemble*: ``T`` variation-perturbed clones of the mapped
network whose predictions are evaluated in a single
:class:`~repro.reram.crossbar.StackedCrossbar` trial-tensor pass and
reduced by majority vote — robustness-aware serving at nearly the cost
of a single forward.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..config import CircuitParameters
from ..core.mvm import MVMMode
from ..errors import ConfigurationError, ModelUnavailableError, ShapeError
from ..mapping import PIMExecutor, ReSiPEBackend, compile_network
from ..mapping.compiler import MappedNetwork
from ..runtime import trial_rng

__all__ = ["ModelEntry", "ModelRegistry"]


@dataclasses.dataclass
class ModelEntry:
    """One servable model: calibrated executor + request metadata.

    Attributes
    ----------
    name:
        Registry key (the ``model`` field of predict requests).
    executor:
        Calibrated :class:`~repro.mapping.executor.PIMExecutor`.
    input_shape:
        Per-sample input shape requests must match (e.g. ``(784,)``).
    ensemble:
        Optional Monte-Carlo network clones; when present, predictions
        run all clones in one stacked pass and majority-vote.
    """

    name: str
    executor: PIMExecutor
    input_shape: Tuple[int, ...]
    ensemble: Optional[List[MappedNetwork]] = None

    @property
    def ensemble_trials(self) -> int:
        return len(self.ensemble) if self.ensemble else 0

    def validate_batch(self, x: np.ndarray) -> np.ndarray:
        """Check a ``(rows,) + input_shape`` batch, casting to float."""
        x = np.asarray(x, dtype=float)
        if x.shape[1:] != self.input_shape:
            raise ShapeError(
                f"model {self.name!r} expects per-sample shape "
                f"{self.input_shape}, got batch {x.shape}"
            )
        return x

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Labels for a ``(rows, ...)`` batch (rows may be zero).

        With an ensemble, every realization is evaluated through the
        stacked trial kernels and each sample answers with the
        majority label (ties break to the smallest label, so the
        reduction is deterministic).
        """
        if not self.ensemble:
            return self.executor.predict(x)
        trials = self.executor.predict_trials(x, self.ensemble)
        votes = np.empty(trials.shape[1], dtype=np.intp)
        for j in range(trials.shape[1]):
            values, counts = np.unique(trials[:, j], return_counts=True)
            votes[j] = values[np.argmax(counts)]
        return votes


class ModelRegistry:
    """Named :class:`ModelEntry` lookup for the daemon and tests.

    A registry distinguishes three kinds of name: *loaded* (servable
    entry), *failed* (configured but its load raised — the daemon keeps
    running and answers 503 for it), and *unknown* (never configured —
    HTTP 404).
    """

    def __init__(
        self,
        entries: Sequence[ModelEntry],
        failed: Optional[Dict[str, str]] = None,
    ) -> None:
        self._entries: Dict[str, ModelEntry] = {}
        self.failed: Dict[str, str] = dict(failed or {})
        for entry in entries:
            if entry.name in self._entries:
                raise ConfigurationError(
                    f"duplicate model name {entry.name!r} in registry"
                )
            self._entries[entry.name] = entry
        if not self._entries:
            raise ConfigurationError("registry needs at least one model")

    def names(self) -> List[str]:
        return sorted(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def get(self, name: str) -> ModelEntry:
        try:
            return self._entries[name]
        except KeyError:
            if name in self.failed:
                raise ModelUnavailableError(
                    f"model {name!r} failed to load: {self.failed[name]}"
                ) from None
            raise ConfigurationError(
                f"unknown model {name!r}; serving {self.names()}"
            ) from None

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        keys: Sequence[str],
        loader: Callable[[str], ModelEntry],
        load_hook: Optional[Callable[[str], None]] = None,
        verbose: bool = False,
    ) -> "ModelRegistry":
        """Build a registry one model at a time, isolating failures.

        ``loader(key)`` returns the :class:`ModelEntry` for one key; any
        exception it raises marks that key *failed* (served as 503)
        instead of killing the whole daemon.  ``load_hook(key)`` runs
        first and may itself raise — it is the seam the chaos harness
        uses to inject registry corruption and load failures.  Only
        when *every* key fails is the startup itself an error.
        """
        entries: List[ModelEntry] = []
        failed: Dict[str, str] = {}
        for key in keys:
            try:
                if load_hook is not None:
                    load_hook(key)
                entries.append(loader(key))
            # lint: exempt EXC002 load isolation: broken model -> 503
            except Exception as exc:
                failed[key] = f"{type(exc).__name__}: {exc}"
                if verbose:
                    import sys

                    print(f"[registry] model {key!r} failed to load: "
                          f"{failed[key]}", file=sys.stderr)
        if not entries:
            raise ConfigurationError(
                f"every configured model failed to load: {failed}"
            )
        return cls(entries, failed=failed)

    @classmethod
    def from_benchmarks(
        cls,
        keys: Sequence[str],
        n_samples: int = 600,
        seed: int = 0,
        ensemble_sigma: float = 0.0,
        ensemble_trials: int = 0,
        verbose: bool = False,
        load_hook: Optional[Callable[[str], None]] = None,
    ) -> "ModelRegistry":
        """Load benchmark networks (store-cached) and calibrate them.

        Ensemble clones are seeded by identity —
        ``trial_rng(seed, "serve|<key>|<sigma>|<t>")`` — so a restarted
        daemon serves byte-identical ensemble predictions.  A model
        whose load fails (corrupt artifact the store cannot recover,
        training failure, unknown benchmark key) is recorded in
        :attr:`failed` and answered with 503 instead of crashing the
        daemon — unless *all* of them fail.
        """
        from ..experiments.networks import get_benchmark_networks

        backend = ReSiPEBackend(
            params=CircuitParameters.calibrated(), mode=MVMMode.LINEAR
        )

        def load_one(key: str) -> ModelEntry:
            (net,) = get_benchmark_networks(
                keys=[key], n_samples=n_samples, seed=seed, verbose=verbose
            )
            mapped = compile_network(net.model, backend)
            calibration = net.train.images[: min(64, len(net.train))]
            executor = PIMExecutor(mapped, calibration)
            ensemble = None
            if ensemble_trials > 0 and ensemble_sigma > 0:
                ensemble = [
                    executor.perturbed(
                        trial_rng(
                            seed,
                            f"serve|{net.spec.key}|{ensemble_sigma:.6f}|{t}",
                        ),
                        ensemble_sigma,
                    ).network
                    for t in range(ensemble_trials)
                ]
            return ModelEntry(
                name=net.spec.key,
                executor=executor,
                input_shape=tuple(net.test.images.shape[1:]),
                ensemble=ensemble,
            )

        return cls.build(
            keys, load_one, load_hook=load_hook, verbose=verbose
        )
