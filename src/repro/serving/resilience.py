"""Resilience primitives shared by the serving stack.

Four small, independently-testable pieces:

:class:`ServiceTimeEstimator`
    An EWMA of recent batch service times.  The batcher feeds it every
    flush and reads it back at enqueue to decide whether a request with
    a ``deadline_ms`` can plausibly be answered in time (deadline-aware
    admission control), and again at dequeue to drop requests that can
    no longer make it.

:class:`CircuitBreaker`
    The classic three-state breaker around one model's forward path:
    *closed* (normal), *open* after ``threshold`` consecutive compute
    failures (submits fail fast with
    :class:`~repro.errors.CircuitOpenError` for ``cooldown_s``), then
    *half-open* — one probe batch is allowed through; success closes
    the breaker, failure re-opens it for another cooldown.

:class:`ComputePool`
    A rebuildable wrapper around the serving daemon's
    :class:`~concurrent.futures.ThreadPoolExecutor`.  When a forward
    pass exceeds the compute timeout the pool is *rebuilt*: the old
    executor (with its possibly-hung thread) is abandoned with
    ``shutdown(wait=False)`` and a fresh one takes over, so one stuck
    batch cannot wedge the daemon.

:class:`RetryPolicy`
    Client-side seeded-jitter capped exponential backoff.  Honors
    server ``Retry-After`` hints, retries only transient outcomes
    (429/503 and transport failures — predict is idempotent, a pure
    function of its inputs), and is bounded by both an attempt count
    and a total wall-clock budget.

Everything here reads clocks through :mod:`repro.telemetry.clock` so
timings stay comparable with the rest of the instrumentation (and the
``TEL001`` lint rule holds).
"""

from __future__ import annotations

import dataclasses
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Optional

import numpy as np

from ..errors import ConfigurationError
from ..telemetry.clock import monotonic as _monotonic
from ..telemetry.logging import get_logger

_logger = get_logger("repro.serving.resilience")

__all__ = [
    "ServiceTimeEstimator",
    "CircuitBreaker",
    "ComputePool",
    "RetryPolicy",
]


class ServiceTimeEstimator:
    """EWMA of batch service seconds; ``None`` until the first sample.

    ``value = alpha * sample + (1 - alpha) * value`` — a small ``alpha``
    smooths over noisy batches, a large one tracks load shifts faster.
    Alongside the mean it tracks an EWMA of the absolute deviation
    (``dev``) and a decayed recent ``peak``, and admission decisions
    use the *pessimistic* :meth:`budget` — the larger of mean + ``k``
    deviations and the peak — so that a request is admitted only if it
    would make its deadline even when its batch lands in the
    service-time tail, not just on an average day.

    Admission control deliberately starts *optimistic*: with no sample
    yet every deadline is admitted, and the first flush calibrates it.
    """

    def __init__(self, alpha: float = 0.25) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ConfigurationError(
                f"EWMA alpha must be in (0, 1], got {alpha!r}"
            )
        self.alpha = alpha
        self.value: Optional[float] = None
        self.dev = 0.0
        self.peak = 0.0
        self.samples = 0

    def observe(self, service_s: float) -> float:
        """Fold one batch service time in; returns the new estimate."""
        sample = float(service_s)
        if self.value is None:
            self.value = sample
            self.peak = sample
        else:
            self.dev += self.alpha * (abs(sample - self.value) - self.dev)
            self.value += self.alpha * (sample - self.value)
            # Decayed peak: jumps to any new maximum instantly, then
            # relaxes toward the mean at the EWMA rate.  Service-time
            # stalls are heavy-tailed (scheduler/GC pauses, cache-cold
            # batches), and mean + k*MAD alone badly under-covers them.
            self.peak = max(
                sample, self.peak + self.alpha * (self.value - self.peak)
            )
        self.samples += 1
        return self.value

    def budget(self, k: float = 2.0) -> Optional[float]:
        """Tail-aware service estimate (``None`` until the first
        sample): the larger of mean + ``k`` mean absolute deviations
        and the decayed recent peak."""
        if self.value is None:
            return None
        return max(self.value + k * self.dev, self.peak)


class CircuitBreaker:
    """Closed → open after ``threshold`` consecutive failures →
    half-open probe after ``cooldown_s`` → closed on probe success.

    The clock is injectable (monotonic seconds) so state transitions
    are testable without sleeping.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(
        self,
        threshold: int = 5,
        cooldown_s: float = 1.0,
        clock: Callable[[], float] = _monotonic,
        name: str = "",
    ) -> None:
        if threshold < 1:
            raise ConfigurationError(
                f"breaker threshold must be >= 1, got {threshold!r}"
            )
        if cooldown_s < 0:
            raise ConfigurationError(
                f"breaker cooldown must be >= 0, got {cooldown_s!r}"
            )
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self.name = name
        self._clock = clock
        self._state = self.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        #: lifetime transition counters (metrics snapshot)
        self.opens_total = 0
        self.probes_total = 0

    @property
    def state(self) -> str:
        """Current state, promoting open → half-open once cooled down."""
        if (
            self._state == self.OPEN
            and self._clock() - self._opened_at >= self.cooldown_s
        ):
            self._state = self.HALF_OPEN
            self.probes_total += 1
        return self._state

    def retry_after(self) -> float:
        """Seconds until an open breaker half-opens (0 when not open)."""
        if self._state != self.OPEN:
            return 0.0
        return max(0.0, self.cooldown_s - (self._clock() - self._opened_at))

    def admit(self) -> bool:
        """May a new request enter the queue right now?

        Closed and half-open admit (half-open requests become the probe
        batch); open rejects until the cooldown elapses.
        """
        return self.state != self.OPEN

    def record_failure(self) -> None:
        """One compute failure (a failed or timed-out batch)."""
        state = self.state
        self._consecutive_failures += 1
        if state == self.HALF_OPEN or (
            state == self.CLOSED
            and self._consecutive_failures >= self.threshold
        ):
            self._state = self.OPEN
            self._opened_at = self._clock()
            self.opens_total += 1
            _logger.warning(
                "circuit breaker opened",
                breaker=self.name,
                consecutive_failures=self._consecutive_failures,
                cooldown_s=self.cooldown_s,
            )

    def record_success(self) -> None:
        """One successful batch: closes from any state."""
        self._consecutive_failures = 0
        if self._state != self.CLOSED:
            _logger.warning(
                "circuit breaker closed", breaker=self.name,
                probes_total=self.probes_total,
            )
        self._state = self.CLOSED


class ComputePool:
    """A rebuildable thread-pool handle shared by a daemon's batchers.

    ``rebuild()`` abandons the current executor without waiting — a
    hung forward pass keeps its thread, but the daemon gets a fresh
    pool and keeps serving.  Call it only from the event-loop thread
    (the batchers' coalescers), which serialises rebuilds.
    """

    def __init__(self, workers: int = 1) -> None:
        if workers < 1:
            raise ConfigurationError(
                f"compute pool needs >= 1 worker, got {workers!r}"
            )
        self._workers = workers
        self.rebuilds = 0
        self._executor = self._make()

    @classmethod
    def adopt(cls, executor: ThreadPoolExecutor) -> "ComputePool":
        """Wrap an externally-created executor (tests, benchmarks)."""
        pool = cls.__new__(cls)
        pool._workers = getattr(executor, "_max_workers", 1)
        pool.rebuilds = 0
        pool._executor = executor
        return pool

    def _make(self) -> ThreadPoolExecutor:
        return ThreadPoolExecutor(
            max_workers=self._workers, thread_name_prefix="repro-serve"
        )

    @property
    def executor(self) -> ThreadPoolExecutor:
        return self._executor

    def rebuild(self) -> None:
        """Abandon the current executor (hung threads and all)."""
        old, self._executor = self._executor, self._make()
        self.rebuilds += 1
        old.shutdown(wait=False, cancel_futures=True)

    def shutdown(self, wait: bool = True) -> None:
        self._executor.shutdown(wait=wait)


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """Seeded-jitter capped exponential backoff for idempotent predicts.

    Attributes
    ----------
    max_attempts:
        Total tries including the first (1 disables retrying).
    base_backoff_s / max_backoff_s:
        Attempt ``k`` (0-based retry index) backs off
        ``base * 2**k``, capped at ``max_backoff_s``, then jittered.
    jitter:
        Uniform multiplicative jitter in ``[1, 1 + jitter]`` drawn from
        a Generator seeded with ``seed`` — two clients with different
        seeds desynchronise, one client replays its exact schedule.
    total_budget_s:
        Hard wall-clock bound on cumulative backoff *sleep*: retrying
        stops once the next sleep would exceed it.
    seed:
        Jitter stream seed.
    retry_statuses:
        HTTP statuses worth retrying — transient server-side refusals
        (429 backpressure, 503 shed/breaker/drain).  4xx client errors
        and 500 model bugs are never retried.
    """

    max_attempts: int = 4
    base_backoff_s: float = 0.05
    max_backoff_s: float = 2.0
    jitter: float = 0.5
    total_budget_s: float = 10.0
    seed: int = 0
    retry_statuses: frozenset = frozenset({429, 503})

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts!r}"
            )
        if self.base_backoff_s < 0 or self.max_backoff_s < self.base_backoff_s:
            raise ConfigurationError(
                "need 0 <= base_backoff_s <= max_backoff_s, got "
                f"{self.base_backoff_s!r}/{self.max_backoff_s!r}"
            )
        if self.jitter < 0:
            raise ConfigurationError(
                f"jitter must be >= 0, got {self.jitter!r}"
            )
        if self.total_budget_s < 0:
            raise ConfigurationError(
                f"total_budget_s must be >= 0, got {self.total_budget_s!r}"
            )
        if self.seed < 0:
            raise ConfigurationError(
                f"seed must be >= 0, got {self.seed!r}"
            )

    def rng(self) -> np.random.Generator:
        """A fresh jitter stream (one per logical request)."""
        return np.random.default_rng(self.seed)

    def should_retry_status(self, status: int) -> bool:
        return status in self.retry_statuses

    def backoff_s(
        self,
        attempt: int,
        rng: np.random.Generator,
        retry_after_s: Optional[float] = None,
    ) -> float:
        """Sleep before retry ``attempt`` (0-based), honoring a server
        ``Retry-After`` hint when it asks for *more* patience than the
        schedule would have used."""
        delay = min(
            self.base_backoff_s * (2.0 ** attempt), self.max_backoff_s
        )
        delay *= 1.0 + self.jitter * float(rng.random())
        if retry_after_s is not None:
            delay = max(delay, float(retry_after_s))
        return delay
