"""Minimal asyncio HTTP/1.1 front end for the serving daemon.

Hand-rolled on :func:`asyncio.start_server` — the stdlib's
``http.server`` is synchronous and this repo ships zero third-party
dependencies.  One connection carries one request (``Connection:
close``), which keeps the parser ~40 lines and is plenty for a
benchmark fleet; the expensive work is coalesced behind the batcher
anyway.

Routes
------
``GET /healthz``
    Liveness + models (including load-failed ones) + drain state.
``GET /models``
    Per-model metadata (input shape, ensemble size, queue depth).
``GET /metrics``
    Counter snapshot (requests, batches, coalesced, rejected, shed,
    breaker state, compute rebuilds).  JSON by default; clients whose
    ``Accept`` header asks for ``application/openmetrics-text`` get
    the Prometheus-scrapeable exposition instead (see
    :mod:`repro.telemetry.openmetrics`).
``POST /predict``
    ``{"model": "mlp-1", "inputs": [[...], ...],
    "deadline_ms": 50}`` → ``{"predictions": [...],
    "batch_requests": N, ...}``.

Error taxonomy (the contract the chaos suite pins down):

========  ==========================================================
status    meaning
========  ==========================================================
400       malformed body / wrong input shape
404       model name never configured
405       wrong method
413       oversized body
429       queue full (:class:`~repro.errors.BackpressureError`) —
          the queue-depth bound, *not* a deadline decision
500       the model's own forward pass raised (a model bug)
503       transient server-side refusal, with ``Retry-After`` where
          one can be computed: deadline shed
          (:class:`~repro.errors.DeadlineExceededError`), breaker
          open (:class:`~repro.errors.CircuitOpenError`), compute
          timeout / drain abandon (:class:`~repro.errors.
          ExecutionError`), model failed to load
          (:class:`~repro.errors.ModelUnavailableError`), draining
========  ==========================================================
"""

from __future__ import annotations

import asyncio
import json
import math
from typing import Any, Dict, Optional, Tuple

import numpy as np

from .. import __version__
from ..errors import (
    BackpressureError,
    CircuitOpenError,
    ConfigurationError,
    DeadlineExceededError,
    ExecutionError,
    ModelUnavailableError,
    ShapeError,
)
from ..telemetry import session as _telemetry
from ..telemetry.clock import perf
from ..units import MILLI

__all__ = ["HTTPFrontend"]

_MAX_BODY = 32 * 1024 * 1024
_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable",
}

#: route result: status, JSON payload, optional extra headers
_Reply = Tuple[int, Dict[str, Any], Dict[str, str]]


def _unavailable(message: str, retry_after_s: Optional[float]) -> _Reply:
    """A 503 with a ``Retry-After`` header (integer seconds, rounded
    up per RFC 9110) plus the precise float in the JSON body."""
    payload: Dict[str, Any] = {"error": message}
    headers: Dict[str, str] = {}
    if retry_after_s is not None:
        payload["retry_after_s"] = float(retry_after_s)
        headers["Retry-After"] = str(max(0, math.ceil(retry_after_s)))
    return 503, payload, headers


class HTTPFrontend:
    """Parses requests and routes them onto a ``ServingDaemon``."""

    def __init__(self, daemon) -> None:
        self.daemon = daemon
        self._connections = 0

    # ------------------------------------------------------------------
    async def handle(self, reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        chaos = getattr(self.daemon, "chaos", None)
        if chaos is not None:
            self._connections += 1
            if chaos.drop_connection(self._connections - 1):
                # Simulated network fault: kill the socket before any
                # response bytes, so clients see a dropped connection
                # (BadStatusLine / ConnectionReset), never a hang.
                _telemetry.count("serve.chaos.dropped_connections")
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass
                return
        status, payload, extra = 500, {"error": "internal error"}, {}
        try:
            request = await self._parse(reader)
            if request is None:
                return  # client closed before sending a request line
            method, path, headers, body = request
            status, payload, extra = await self._route(
                method, path, headers, body
            )
        except (asyncio.IncompleteReadError, ConnectionError):
            return
        except _BadRequest as exc:
            status, payload, extra = exc.status, {"error": str(exc)}, {}
        # lint: exempt EXC002 one request must not kill the server:
        except Exception as exc:  # failure becomes this client's HTTP 500
            status, payload, extra = (
                500, {"error": f"{type(exc).__name__}: {exc}"}, {}
            )
        finally:
            try:
                # Text payloads (the OpenMetrics exposition) ship verbatim
                # with the content type the route put in ``extra``.
                if isinstance(payload, str):
                    data = payload.encode()
                    content_type = extra.pop(
                        "Content-Type", "text/plain; charset=utf-8"
                    )
                else:
                    data = json.dumps(payload).encode()
                    content_type = "application/json"
                lines = [
                    f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
                    f"Content-Type: {content_type}",
                    f"Content-Length: {len(data)}",
                    f"Server: repro-serve/{__version__}",
                ]
                lines += [f"{key}: {value}" for key, value in extra.items()]
                lines.append("Connection: close")
                head = ("\r\n".join(lines) + "\r\n\r\n").encode()
                writer.write(head + data)
                await writer.drain()
            except (ConnectionError, RuntimeError):
                pass
            finally:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass

    async def _parse(self, reader: asyncio.StreamReader):
        line = await reader.readline()
        if not line.strip():
            return None
        parts = line.decode("latin-1").split()
        if len(parts) != 3:
            raise _BadRequest("malformed request line")
        method, path = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            key, _, value = raw.decode("latin-1").partition(":")
            headers[key.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > _MAX_BODY:
            raise _BadRequest("request body too large", status=413)
        body = await reader.readexactly(length) if length else b""
        return method, path, headers, body

    # ------------------------------------------------------------------
    async def _route(self, method: str, path: str,
                     headers: Dict[str, str], body: bytes) -> _Reply:
        if path == "/predict":
            if method != "POST":
                return 405, {"error": "POST /predict"}, {}
            return await self._predict(body)
        if method != "GET":
            return 405, {"error": f"GET {path}"}, {}
        if path == "/healthz":
            return 200, {
                "status": "draining" if self.daemon.draining else "ok",
                "models": self.daemon.registry.names(),
                "failed_models": dict(self.daemon.registry.failed),
                "version": __version__,
            }, {}
        if path == "/models":
            return 200, {"models": self.daemon.describe_models()}, {}
        if path == "/metrics":
            # Content negotiation: OpenMetrics text on request, the
            # legacy JSON snapshot (byte-identical to before) otherwise.
            accept = headers.get("accept", "")
            if "application/openmetrics-text" in accept:
                from ..telemetry.openmetrics import CONTENT_TYPE

                return (200, self.daemon.metrics_openmetrics(),
                        {"Content-Type": CONTENT_TYPE})
            return 200, self.daemon.metrics_snapshot(), {}
        return 404, {"error": f"no route {path!r}"}, {}

    async def _predict(self, body: bytes) -> _Reply:
        """Trace-aware wrapper: mints the request's trace id at ingress,
        opens the ``serve.request`` root span, and stamps the id into
        the response body (success and error alike) so clients can
        report which server-side trace a failure belongs to."""
        start = perf()
        session = _telemetry.active()
        root = None
        if session is not None:
            root = session.tracer.start_span(
                "serve.request", trace_id=session.new_trace_id()
            )
        status = 500
        try:
            try:
                status, payload, extra = await self._predict_inner(
                    body, start, session, root
                )
            # lint: exempt EXC002 model bug becomes this request's HTTP 500
            except Exception as exc:  # traced like any other outcome
                status, payload, extra = (
                    500, {"error": f"{type(exc).__name__}: {exc}"}, {}
                )
                if root is not None:
                    root.attrs.setdefault("outcome", "internal-error")
        finally:
            if root is not None:
                session.tracer.end_span(
                    root, status="ok" if status == 200 else "error"
                )
                root.attrs["status"] = status
        if root is not None and isinstance(payload, dict):
            payload["trace_id"] = root.trace_id
        return status, payload, extra

    async def _predict_inner(self, body: bytes, start: float,
                             session, root) -> _Reply:
        try:
            doc = json.loads(body.decode())
        except (ValueError, UnicodeDecodeError):
            return 400, {"error": "body must be a JSON object"}, {}
        if not isinstance(doc, dict) or "inputs" not in doc:
            return (400,
                    {"error": 'expected {"model": ..., "inputs": [...]}'},
                    {})
        name = doc.get("model", self.daemon.registry.names()[0])
        deadline_ms = doc.get("deadline_ms")
        if deadline_ms is not None:
            if not isinstance(deadline_ms, (int, float)) or deadline_ms <= 0:
                return (400,
                        {"error": "deadline_ms must be a positive number"},
                        {})
        try:
            batcher = self.daemon.batcher_for(name)
            x = batcher.entry.validate_batch(np.asarray(doc["inputs"]))
        except ModelUnavailableError as exc:
            return _unavailable(str(exc), None)
        except ConfigurationError as exc:
            return 404, {"error": str(exc)}, {}
        except (ShapeError, ValueError) as exc:
            return 400, {"error": str(exc)}, {}
        if root is not None:
            root.attrs["model"] = name
            root.attrs["rows"] = int(x.shape[0])
            session.tracer.record_span(
                "serve.parse", start, perf(),
                parent=root, trace_id=root.trace_id,
            )
        # Charge the time already spent parsing/validating against the
        # budget, so the enforced window matches what the client (and
        # the reported latency_ms) actually measures end to end.
        if deadline_ms is None:
            deadline_s = None
        else:
            deadline_s = max(deadline_ms * MILLI - (perf() - start), 1e-9)
        try:
            result = await batcher.submit(
                x, deadline_s=deadline_s, span=root
            )
        except DeadlineExceededError as exc:
            if root is not None:
                root.attrs.setdefault("outcome", "shed-deadline")
            return _unavailable(str(exc), exc.retry_after_s)
        except CircuitOpenError as exc:
            if root is not None:
                root.attrs.setdefault("outcome", "breaker-open")
            return _unavailable(str(exc), exc.retry_after_s)
        except BackpressureError as exc:
            if root is not None:
                root.attrs.setdefault(
                    "outcome",
                    "draining" if self.daemon.draining else "queue-full",
                )
            if self.daemon.draining:
                return _unavailable(str(exc), None)
            return 429, {"error": str(exc)}, {}
        except ExecutionError as exc:
            # Compute timeout or drain abandon: transient, retryable.
            if root is not None:
                root.attrs.setdefault("outcome", "compute-failed")
            return _unavailable(str(exc), None)
        end = perf()
        if root is not None:
            root.attrs["batch_requests"] = result.batch_requests
        return 200, {
            "model": name,
            "predictions": [int(p) for p in result.predictions],
            "batch_requests": result.batch_requests,
            "batch_rows": result.batch_rows,
            "queue_ms": result.queue_seconds * 1e3,
            "latency_ms": (end - start) * 1e3,
            "mvm_launches": result.mvm_launches,
            "ensemble_trials": result.ensemble_trials,
        }, {}


class _BadRequest(Exception):
    """Internal parse failure → 4xx (not part of the repro taxonomy:
    it never crosses the library boundary)."""

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status
