"""Minimal asyncio HTTP/1.1 front end for the serving daemon.

Hand-rolled on :func:`asyncio.start_server` — the stdlib's
``http.server`` is synchronous and this repo ships zero third-party
dependencies.  One connection carries one request (``Connection:
close``), which keeps the parser ~40 lines and is plenty for a
benchmark fleet; the expensive work is coalesced behind the batcher
anyway.

Routes
------
``GET /healthz``
    Liveness + models + drain state.
``GET /models``
    Per-model metadata (input shape, ensemble size, queue depth).
``GET /metrics``
    Counter snapshot (requests, batches, coalesced, rejected).
``POST /predict``
    ``{"model": "mlp-1", "inputs": [[...], ...]}`` →
    ``{"predictions": [...], "batch_requests": N, ...}``.
    429 when the queue bound rejects, 503 while draining, 404 for an
    unknown model, 400 for malformed bodies.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Tuple

import numpy as np

from .. import __version__
from ..errors import BackpressureError, ConfigurationError, ShapeError
from ..telemetry import session as _telemetry
from ..telemetry.clock import perf

__all__ = ["HTTPFrontend"]

_MAX_BODY = 32 * 1024 * 1024
_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable",
}


class HTTPFrontend:
    """Parses requests and routes them onto a ``ServingDaemon``."""

    def __init__(self, daemon) -> None:
        self.daemon = daemon

    # ------------------------------------------------------------------
    async def handle(self, reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        status, payload = 500, {"error": "internal error"}
        try:
            request = await self._parse(reader)
            if request is None:
                return  # client closed before sending a request line
            method, path, body = request
            status, payload = await self._route(method, path, body)
        except (asyncio.IncompleteReadError, ConnectionError):
            return
        except _BadRequest as exc:
            status, payload = exc.status, {"error": str(exc)}
        except Exception as exc:  # never let one request kill the server
            status, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
        finally:
            try:
                data = json.dumps(payload).encode()
                head = (
                    f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
                    f"Content-Type: application/json\r\n"
                    f"Content-Length: {len(data)}\r\n"
                    f"Server: repro-serve/{__version__}\r\n"
                    f"Connection: close\r\n\r\n"
                ).encode()
                writer.write(head + data)
                await writer.drain()
            except (ConnectionError, RuntimeError):
                pass
            finally:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass

    async def _parse(self, reader: asyncio.StreamReader):
        line = await reader.readline()
        if not line.strip():
            return None
        parts = line.decode("latin-1").split()
        if len(parts) != 3:
            raise _BadRequest("malformed request line")
        method, path = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            key, _, value = raw.decode("latin-1").partition(":")
            headers[key.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > _MAX_BODY:
            raise _BadRequest("request body too large", status=413)
        body = await reader.readexactly(length) if length else b""
        return method, path, body

    # ------------------------------------------------------------------
    async def _route(self, method: str, path: str,
                     body: bytes) -> Tuple[int, Dict[str, Any]]:
        if path == "/predict":
            if method != "POST":
                return 405, {"error": "POST /predict"}
            return await self._predict(body)
        if method != "GET":
            return 405, {"error": f"GET {path}"}
        if path == "/healthz":
            return 200, {
                "status": "draining" if self.daemon.draining else "ok",
                "models": self.daemon.registry.names(),
                "version": __version__,
            }
        if path == "/models":
            return 200, {"models": self.daemon.describe_models()}
        if path == "/metrics":
            return 200, self.daemon.metrics_snapshot()
        return 404, {"error": f"no route {path!r}"}

    async def _predict(self, body: bytes) -> Tuple[int, Dict[str, Any]]:
        start = perf()
        try:
            doc = json.loads(body.decode())
        except (ValueError, UnicodeDecodeError):
            return 400, {"error": "body must be a JSON object"}
        if not isinstance(doc, dict) or "inputs" not in doc:
            return 400, {"error": 'expected {"model": ..., "inputs": [...]}'}
        name = doc.get("model", self.daemon.registry.names()[0])
        try:
            batcher = self.daemon.batcher_for(name)
            x = batcher.entry.validate_batch(np.asarray(doc["inputs"]))
        except ConfigurationError as exc:
            return 404, {"error": str(exc)}
        except (ShapeError, ValueError) as exc:
            return 400, {"error": str(exc)}
        try:
            result = await batcher.submit(x)
        except BackpressureError as exc:
            return (503 if self.daemon.draining else 429), {"error": str(exc)}
        end = perf()
        session = _telemetry.active()
        if session is not None:
            session.tracer.record_span(
                "serve.request", start, end,
                model=name, rows=int(x.shape[0]),
                batch_requests=result.batch_requests,
            )
        return 200, {
            "model": name,
            "predictions": [int(p) for p in result.predictions],
            "batch_requests": result.batch_requests,
            "batch_rows": result.batch_rows,
            "queue_ms": result.queue_seconds * 1e3,
            "latency_ms": (end - start) * 1e3,
            "mvm_launches": result.mvm_launches,
            "ensemble_trials": result.ensemble_trials,
        }


class _BadRequest(Exception):
    """Internal parse failure → 4xx (not part of the repro taxonomy:
    it never crosses the library boundary)."""

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status
