"""Resilient artifact persistence for the ReSiPE reproduction.

The store is the single gateway for everything the project persists —
trained model weights, accuracy sidecars, datasets, deployment
reports.  See :mod:`repro.store.artifacts` for the guarantees (atomic
writes, SHA-256 manifests, quarantine-on-corruption, LRU, locking,
counters) and ``docs/artifact_store.md`` for the on-disk layout.

:func:`get_store` memoises one :class:`ArtifactStore` per root so the
in-memory LRU and the hit/miss counters survive across calls within a
process — a benchmark sweep re-reading a trained model hits memory,
and a test can assert that its second run was served from cache.
"""

from __future__ import annotations

import os
from typing import Dict, Optional

from .artifacts import (
    ArtifactStore,
    StoreEntry,
    CORRUPT_SUFFIX,
    MANIFEST_SUFFIX,
    STORE_VERSION,
)
from .atomic import (
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_npz,
    encode_npz,
    sha256_bytes,
    sha256_file,
)
from .keys import canonical_json, spec_hash
from .locking import FileLock
from .lru import MemoryLRU
from .stats import StoreStats

__all__ = [
    "ArtifactStore",
    "StoreEntry",
    "StoreStats",
    "FileLock",
    "MemoryLRU",
    "STORE_VERSION",
    "MANIFEST_SUFFIX",
    "CORRUPT_SUFFIX",
    "atomic_write_bytes",
    "atomic_write_json",
    "atomic_write_npz",
    "encode_npz",
    "sha256_bytes",
    "sha256_file",
    "canonical_json",
    "spec_hash",
    "default_model_cache_dir",
    "get_store",
]

_STORES: Dict[str, ArtifactStore] = {}


def default_model_cache_dir() -> str:
    """The model cache root: ``$REPRO_CACHE`` or ``<repo>/.cache/models``.

    Always returns a normalised absolute path (the historical bug: a
    raw ``.../__file__/../../../.cache/models`` string leaked into
    logs and made identical caches look distinct to the memoiser).
    """
    env = os.environ.get("REPRO_CACHE")
    if env:
        return os.path.abspath(env)
    here = os.path.dirname(os.path.abspath(__file__))
    return os.path.normpath(
        os.path.join(here, "..", "..", "..", ".cache", "models")
    )


def get_store(root: Optional[str] = None) -> ArtifactStore:
    """The process-wide :class:`ArtifactStore` for ``root``.

    ``root`` defaults to :func:`default_model_cache_dir`; one store is
    kept per normalised root so counters and the LRU are shared by all
    users of that directory.
    """
    resolved = os.path.abspath(root) if root else default_model_cache_dir()
    store = _STORES.get(resolved)
    if store is None:
        store = _STORES[resolved] = ArtifactStore(resolved)
    return store
